//! Offline drop-in subset of the `bytes` crate.
//!
//! `Bytes` is a consumable byte view and `BytesMut` a growable buffer, both
//! backed by plain `Vec<u8>` (no refcounted zero-copy slicing — this
//! workspace only reads/writes small trace files with them).

use std::ops::{Deref, RangeBounds};

/// Read-side cursor over immutable bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a little-endian `u64`, consuming 8 bytes.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a big-endian `u64`, consuming 8 bytes.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Reads a little-endian `u32`, consuming 4 bytes.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side sink for growable buffers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// Immutable bytes with a consume cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    at: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.at
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the unconsumed bytes.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.chunk()[start..end].to_vec(),
            at: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.at..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.at += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, at: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            at: 0,
        }
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            at: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64_le() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64_le(7);
        b.put_u64_le(u64::MAX);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 16);
        assert_eq!(frozen.get_u64_le(), 7);
        assert_eq!(frozen.get_u64_le(), u64::MAX);
        assert!(!frozen.has_remaining());
    }

    #[test]
    fn slice_views_unconsumed_bytes() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
    }
}
