//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the small slice of `rand` it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`, `partial_shuffle`,
//! `choose`). The generator core is xoshiro256++ seeded via SplitMix64 —
//! not bit-compatible with upstream `StdRng` (ChaCha12), but every consumer
//! in this workspace asserts statistical properties, not exact streams.

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Seed type (kept for API compatibility; unused by `seed_from_u64`).
    type Seed;

    /// Creates a generator from a 32-byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Core random source: uniformly distributed `u64`s.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the full range for integers, `[0, 1)` for floats,
    /// fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: IntoUniformRange<T>,
    {
        let (low, high_incl) = range.bounds();
        T::sample_uniform(self, low, high_incl)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// Forwarding impl so `rng.gen()` works on `&mut R` receivers with
// `R: Rng + ?Sized` generics (method resolution reborrows `&mut *rng`).
impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable by [`Rng::gen_range`].
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform sample from `[low, high_inclusive]`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_inclusive: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_inclusive: Self) -> Self {
                assert!(low <= high_inclusive, "empty range in gen_range");
                let span = (high_inclusive as i128) - (low as i128) + 1;
                // Lemire-style widening reduction; the O(2^-64) modulo bias
                // is irrelevant for the statistical tests in this workspace.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_inclusive: Self) -> Self {
        low + f64::sample_standard(rng) * (high_inclusive - low)
    }
}

impl UniformSample for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_inclusive: Self) -> Self {
        low + f32::sample_standard(rng) * (high_inclusive - low)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait IntoUniformRange<T> {
    /// Returns `(low, high_inclusive)` bounds.
    fn bounds(self) -> (T, T);
}

impl<T: UniformSample + RangeStep> IntoUniformRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, self.end.step_down())
    }
}

impl<T: UniformSample> IntoUniformRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Converts an exclusive upper bound into an inclusive one.
pub trait RangeStep {
    /// The largest value strictly below `self` (for floats, `self` itself —
    /// matching `rand`'s half-open float ranges closely enough).
    fn step_down(self) -> Self;
}

macro_rules! impl_range_step_int {
    ($($t:ty),*) => {$(
        impl RangeStep for $t {
            fn step_down(self) -> Self {
                self.checked_sub(1).expect("empty range in gen_range")
            }
        }
    )*};
}
impl_range_step_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeStep for f64 {
    fn step_down(self) -> Self {
        self
    }
}

impl RangeStep for f32 {
    fn step_down(self) -> Self {
        self
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Statistically strong and fast; seeded deterministically via
    /// SplitMix64 like the xoshiro reference implementation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion (Vigna's reference).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut words = [0u64; 4];
            for (i, w) in words.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if words.iter().all(|&w| w == 0) {
                return StdRng::from_u64(0);
            }
            StdRng { s: words }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_u64(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the "small" generator shares the standard core here.
    pub type SmallRng = StdRng;
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::{Rng, RngCore, UniformSample};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Shuffles the first `amount` elements into place (the rest is the
        /// unshuffled remainder, in unspecified order), returning the two
        /// regions.
        fn partial_shuffle<R: RngCore>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_uniform(rng, 0, i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = usize::sample_uniform(rng, i, self.len() - 1);
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-export of the `rand::prelude` names the workspace uses.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_distinct_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn floats_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_keeps_all_elements() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        let (head, tail) = v.partial_shuffle(&mut r, 10);
        assert_eq!(head.len(), 10);
        assert_eq!(tail.len(), 40);
        let mut all: Vec<u32> = head.iter().chain(tail.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }
}
