//! Offline drop-in subset of the `proptest` crate.
//!
//! Implements just enough of the API surface this workspace uses: the
//! [`strategy::Strategy`] trait (ranges, tuples, `Just`, `prop_map`,
//! `prop_flat_map`, `collection::vec`) and the `proptest!` test macro.
//! Cases are generated from per-case deterministic seeds, so failures are
//! reproducible; there is no shrinking — `prop_assert!` failures panic with
//! the formatted message directly.

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value using the given deterministic RNG.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms produced values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Derives a second strategy from each produced value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn sample(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Drives `config.cases` deterministic cases through `case`.
pub fn run_cases<F>(config: &test_runner::Config, mut case: F)
where
    F: FnMut(&mut rand::rngs::StdRng),
{
    use rand::SeedableRng;
    for index in 0..config.cases {
        let seed = 0x5eed_ba5e_u64 ^ u64::from(index).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        case(&mut rng);
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let strategies = ($($strat,)+);
                $crate::run_cases(&config, |case_rng| {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::sample(&strategies, case_rng);
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds and tuples/vec compose.
        #[test]
        fn samples_stay_in_bounds(
            x in 3u64..10,
            v in crate::collection::vec((0u8..4, -2i64..3), 1..=5),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() <= 5);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((-2..3).contains(&b));
            }
        }

        #[test]
        fn flat_map_and_map_compose(
            inst in (2usize..=6).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0usize..n, 1..4))
                    .prop_map(|(n, xs)| (n, xs))
            }),
        ) {
            let (n, xs) = inst;
            prop_assert!(xs.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, 0u64..1000);
        let mut first = Vec::new();
        crate::run_cases(&crate::test_runner::Config::with_cases(8), |rng| {
            first.push(strat.sample(rng));
        });
        let mut second = Vec::new();
        crate::run_cases(&crate::test_runner::Config::with_cases(8), |rng| {
            second.push(strat.sample(rng));
        });
        assert_eq!(first, second);
    }
}
