//! Offline drop-in subset of the `serde_json` API.
//!
//! Serializes the vendored serde stub's [`Value`] tree to JSON text and
//! parses it back. Covers what this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_writer`], [`from_reader`], and
//! [`Error`]. Numbers print via Rust's shortest-roundtrip float formatting,
//! so `f32`/`f64` values survive a serialize/parse cycle exactly.

use std::fmt;
use std::io::{Read, Write};

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON serialization/deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.at)));
    }
    Ok(T::from_value(&v)?)
}

/// Reads a value from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut s = String::new();
    reader.read_to_string(&mut s)?;
    from_str(&s)
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; match serde_json's `null`.
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // Keep a float marker so the parser reproduces Value::F64.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.at
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.at
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.at)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| Error("invalid utf8 in number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.at += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| Error("invalid utf8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.at))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.at))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &x in &[0.1f64, 1.0, -2.5e-8, 123456.789, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "roundtrip of {x} via {s}");
        }
        for &x in &[0.1f32, 3.4e38, -1.25] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back, x, "roundtrip of {x} via {s}");
        }
    }

    #[test]
    fn strings_escape() {
        let s = "line\n\"quoted\"\tend\\";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nested_containers() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[],[3]]");
        let back: Vec<Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
