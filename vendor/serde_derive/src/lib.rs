//! Derive macros for the vendored serde stub.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! type shapes this workspace actually uses — non-generic structs (named,
//! tuple, unit) and enums (unit, tuple, and struct variants) — by walking
//! the raw `TokenStream` directly, since `syn`/`quote` are unavailable in
//! the offline build environment. Serde field/container attributes are not
//! supported and will simply be ignored (none are used in this workspace).
//! One piece of real-serde behavior IS reproduced: named fields whose type
//! is `Option<...>` deserialize a *missing* key as `None`, so adding an
//! optional field to a struct stays backward compatible with old payloads.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree serialization).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize` (value-tree deserialization).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---- item model ----

/// A named field: its identifier plus whether its declared type is
/// `Option<...>` (such fields treat a missing key as `None`).
struct NamedField {
    name: String,
    is_option: bool,
}

enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---- token-stream parsing ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut at = 0usize;
    skip_attrs_and_vis(&tokens, &mut at);

    let kind = match &tokens[at] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    at += 1;
    let name = match &tokens[at] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    at += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(at) {
        if p.as_char() == '<' {
            panic!("serde stub derive does not support generic type `{name}`");
        }
    }

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_fields(tokens.get(at))),
        "enum" => {
            let body = match tokens.get(at) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("expected enum body for `{name}`"),
            };
            Shape::Enum(parse_variants(body))
        }
        other => panic!("cannot derive serde impls for `{other}` items"),
    };
    Item { name, shape }
}

/// Skips outer attributes (`#[...]`, doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], at: &mut usize) {
    loop {
        match tokens.get(*at) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *at += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *at += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*at) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *at += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_fields(body: Option<&TokenTree>) -> Fields {
    match body {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        _ => Fields::Unit,
    }
}

/// Parses `attr* vis? name: Type,`* bodies into field names, noting which
/// fields have an `Option<...>` type.
fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields: Vec<NamedField> = Vec::new();
    let mut at = 0usize;
    while at < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut at);
        let Some(TokenTree::Ident(name)) = tokens.get(at) else {
            break;
        };
        let name = name.to_string();
        at += 1;
        // Expect ':', then skip the type up to the next top-level comma.
        match tokens.get(at) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => at += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        let is_option = matches!(
            tokens.get(at),
            Some(TokenTree::Ident(i)) if i.to_string() == "Option"
        );
        fields.push(NamedField { name, is_option });
        skip_type(&tokens, &mut at);
        if let Some(TokenTree::Punct(p)) = tokens.get(at) {
            if p.as_char() == ',' {
                at += 1;
            }
        }
    }
    fields
}

/// Counts fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut at = 0usize;
    while at < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut at);
        if at >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut at);
        if let Some(TokenTree::Punct(p)) = tokens.get(at) {
            if p.as_char() == ',' {
                at += 1;
            }
        }
    }
    count
}

/// Advances past one type, tracking `<...>` nesting so commas inside
/// generic arguments are not mistaken for field separators.
fn skip_type(tokens: &[TokenTree], at: &mut usize) {
    let mut angle = 0i32;
    while let Some(tt) = tokens.get(*at) {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            },
            _ => {}
        }
        *at += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut at = 0usize;
    while at < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut at);
        let Some(TokenTree::Ident(name)) = tokens.get(at) else {
            break;
        };
        let name = name.to_string();
        at += 1;
        let fields = match tokens.get(at) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                at += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                at += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(at) {
            if p.as_char() == '=' {
                at += 1;
                while let Some(tt) = tokens.get(at) {
                    if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    at += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(at) {
            if p.as_char() == ',' {
                at += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- code generation ----

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Tuple(1)) => {
            // Newtype structs serialize transparently, like real serde.
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_variant_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.fields {
        Fields::Unit => format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"),
        Fields::Tuple(1) => format!(
            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
             ::serde::Serialize::to_value(f0))]),"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let vals: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                 ::serde::Value::Seq(vec![{}]))]),",
                binds.join(", "),
                vals.join(", ")
            )
        }
        Fields::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let binds = binds.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                })
                .collect();
            format!(
                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                 ::serde::Value::Map(vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| named_field_init(f, "v", &format!("missing field `{}` in {name}", f.name)))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i})\
                         .ok_or_else(|| ::serde::DeError::msg(\"{name} tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match v {{ ::serde::Value::Seq(items) => Ok({name}({})), \
                 _ => Err(::serde::DeError::msg(\"expected array for {name}\")) }}",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for v in variants {
                match &v.fields {
                    Fields::Unit => {
                        let vn = &v.name;
                        unit_arms.push(format!("\"{vn}\" => return Ok({name}::{vn}),"));
                    }
                    _ => payload_arms.push(deserialize_variant_check(name, v)),
                }
            }
            format!(
                "if let ::serde::Value::Str(s) = v {{\n\
                 match s.as_str() {{ {} _ => {{}} }}\n\
                 }}\n\
                 {}\n\
                 Err(::serde::DeError::msg(\"unknown {name} variant\"))",
                unit_arms.join(" "),
                payload_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn deserialize_variant_check(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.fields {
        Fields::Unit => unreachable!("unit variants handled separately"),
        Fields::Tuple(1) => format!(
            "if let Some(inner) = v.get(\"{vn}\") {{\n\
             return Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?));\n\
             }}"
        ),
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i})\
                         .ok_or_else(|| ::serde::DeError::msg(\"{name}::{vn} tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "if let Some(inner) = v.get(\"{vn}\") {{\n\
                 return match inner {{\n\
                 ::serde::Value::Seq(items) => Ok({name}::{vn}({})),\n\
                 _ => Err(::serde::DeError::msg(\"expected array for {name}::{vn}\")),\n\
                 }};\n\
                 }}",
                inits.join(", ")
            )
        }
        Fields::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    named_field_init(
                        f,
                        "inner",
                        &format!("missing field `{}` in {name}::{vn}", f.name),
                    )
                })
                .collect();
            format!(
                "if let Some(inner) = v.get(\"{vn}\") {{\n\
                 return Ok({name}::{vn} {{ {} }});\n\
                 }}",
                inits.join(", ")
            )
        }
    }
}

/// One `field: <expr>` initializer reading the key `field.name` from the
/// map expression `src`. `Option` fields fall back to `None` when the key
/// is absent (real serde's implicit behavior); all other fields error.
fn named_field_init(field: &NamedField, src: &str, missing_msg: &str) -> String {
    let f = &field.name;
    if field.is_option {
        format!(
            "{f}: match {src}.get(\"{f}\") {{\
             Some(x) => ::serde::Deserialize::from_value(x)?, \
             None => ::core::option::Option::None }}"
        )
    } else {
        format!(
            "{f}: ::serde::Deserialize::from_value({src}.get(\"{f}\")\
             .ok_or_else(|| ::serde::DeError::msg(\"{missing_msg}\"))?)?"
        )
    }
}
