//! Offline drop-in subset of the `serde` API.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serde: a JSON-shaped [`Value`] tree, [`Serialize`]/[`Deserialize`]
//! traits that convert to/from it, and derive macros (re-exported from the
//! companion `serde_derive` proc-macro crate) for plain structs and enums.
//! The `serde_json` stub provides the text format over the same [`Value`].
//!
//! Deliberately unsupported (unused by this workspace): serde attributes,
//! generics on derived types, borrowed deserialization, non-string map keys.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped data tree: the interchange model between [`Serialize`],
/// [`Deserialize`] and the `serde_json` stub.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (serialized without a decimal point).
    U64(u64),
    /// Signed integer (serialized without a decimal point).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered so output is deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Convenience constructor.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::U64(x) => <$t>::try_from(x)
                        .map_err(|_| DeError::msg(format!("{x} out of range"))),
                    Value::I64(x) => <$t>::try_from(x)
                        .map_err(|_| DeError::msg(format!("{x} out of range"))),
                    _ => Err(DeError::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::I64(x) => <$t>::try_from(x)
                        .map_err(|_| DeError::msg(format!("{x} out of range"))),
                    Value::U64(x) => <$t>::try_from(x)
                        .map_err(|_| DeError::msg(format!("{x} out of range"))),
                    _ => Err(DeError::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            _ => Err(DeError::msg("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(DeError::msg(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = $idx;
                                $name::from_value(
                                    it.next().ok_or_else(|| DeError::msg("tuple too short"))?,
                                )?
                            },
                        )+))
                    }
                    _ => Err(DeError::msg("expected tuple array")),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: fmt::Display + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: std::str::FromStr + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key = k.parse().map_err(|_| DeError::msg("bad map key"))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            _ => Err(DeError::msg("expected object")),
        }
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: std::str::FromStr + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key = k.parse().map_err(|_| DeError::msg("bad map key"))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            _ => Err(DeError::msg("expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn map_lookup() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), None);
    }
}
