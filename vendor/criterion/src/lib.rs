//! Offline drop-in subset of the `criterion` crate.
//!
//! Provides the macro + builder surface this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`). Without the `--bench`
//! CLI flag (i.e. under `cargo test`) each routine runs once as a smoke test;
//! with it, each routine is timed over a handful of iterations and the mean
//! wall-clock time is printed. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for parity with criterion's `black_box`.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iterations` times, recording total wall-clock.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    timed: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--bench`; under `cargo test`
        // the flag is absent and we only smoke-run each routine once.
        let timed = std::env::args().any(|a| a == "--bench");
        Criterion { timed }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        run_one(self.timed, &id.id, &mut routine);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub picks its own iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the stub ignores target times.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_one(self.criterion.timed, &label, &mut routine);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_one(self.criterion.timed, &label, &mut |b: &mut Bencher| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<R: FnMut(&mut Bencher)>(timed: bool, label: &str, routine: &mut R) {
    let iterations = if timed { 5 } else { 1 };
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    if timed {
        let mean = bencher.elapsed / u32::try_from(iterations).unwrap();
        println!("{label}: {mean:?} mean over {iterations} iterations");
    } else {
        println!("{label}: ok (smoke run)");
    }
}

/// Declares a function that runs each listed bench target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_routines() {
        let mut criterion = Criterion { timed: false };
        let mut calls = 0;
        {
            let mut group = criterion.benchmark_group("g");
            group.sample_size(10);
            group.bench_function("plain", |b| b.iter(|| calls += 1));
            group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| {
                b.iter(|| calls += n)
            });
            group.finish();
        }
        criterion.bench_function("top", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 5);
    }

    #[test]
    fn timed_mode_runs_multiple_iterations() {
        let mut criterion = Criterion { timed: true };
        let mut calls = 0u64;
        criterion.bench_function("t", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 5);
    }
}
