//! Property tests for the artifact format: any model the trainer can
//! produce must survive save → load with *bit-equal* predictions — through
//! an in-memory buffer and through the on-disk [`ArtifactStore`], for both
//! the recursive [`Model`] walker and the flattened [`FlatModel`] scorer.
//!
//! Bit-equality (not approximate equality) is the contract: a restored
//! model replayed over the same trace must reproduce the original run's
//! admission decisions exactly, or the restart experiment's ±0 window
//! comparisons turn to sand.

use cdn_trace::Request;
use gbdt::{train, Dataset, FlatModel};
use proptest::prelude::*;

use lfo::{ArtifactStore, LfoArtifact, LfoConfig, Provenance, StoredValidation};

/// Shape of one randomized round-trip case.
#[derive(Debug, Clone)]
struct Case {
    seed: u64,
    num_gaps: usize,
    num_iterations: usize,
    num_leaves: usize,
    learning_rate: f64,
    rows: usize,
    cutoff: f64,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        (0u64..u64::MAX, 2usize..=10, 1usize..=8),
        (2usize..=16, 0.05f64..0.5, 60usize..=220, 0.1f64..0.9),
    )
        .prop_map(
            |((seed, num_gaps, num_iterations), (num_leaves, learning_rate, rows, cutoff))| Case {
                seed,
                num_gaps,
                num_iterations,
                num_leaves,
                learning_rate,
                rows,
                cutoff,
            },
        )
}

/// Tiny deterministic generator (splitmix64) so each case's data is a pure
/// function of its seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f32(&mut self) -> f32 {
        (self.next() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Random feature rows + labels over the case's feature layout, with the
/// odd missing-gap sentinel mixed in (the feature space real trackers emit).
fn random_data(case: &Case, rng: &mut Rng) -> Dataset {
    let width = 3 + case.num_gaps;
    let rows: Vec<Vec<f32>> = (0..case.rows)
        .map(|_| {
            (0..width)
                .map(|_| {
                    if rng.next().is_multiple_of(13) {
                        1.0e12
                    } else {
                        rng.f32() * 4096.0
                    }
                })
                .collect()
        })
        .collect();
    let labels: Vec<f32> = rows
        .iter()
        .map(|r| (r[0] + r[1] < 4096.0) as u8 as f32)
        .collect();
    Dataset::from_rows(rows, labels).unwrap()
}

/// A trained artifact for the case, with non-trivial provenance,
/// validation, and tracker-snapshot blocks so every field round-trips.
fn build_artifact(case: &Case) -> (LfoArtifact, LfoConfig) {
    let mut config = LfoConfig {
        num_gaps: case.num_gaps,
        cutoff: case.cutoff,
        ..LfoConfig::default()
    };
    config.gbdt.num_iterations = case.num_iterations;
    config.gbdt.num_leaves = case.num_leaves;
    config.gbdt.learning_rate = case.learning_rate;
    config.gbdt.seed = case.seed;

    let mut rng = Rng(case.seed);
    let data = random_data(case, &mut rng);
    let model = train(&data, &config.gbdt);

    let mut tracker = config.tracker();
    for t in 0..200u64 {
        tracker.record(&Request::new(t, rng.next() % 64, 1 + rng.next() % 4096));
    }
    let sample: Vec<Vec<f32>> = (0..8).map(|r| data.row(r)).collect();
    let validation = StoredValidation {
        train_sample: sample.clone(),
        holdout_rows: sample,
        holdout_labels: vec![1.0; 8],
        holdout_accuracy: 0.875,
    };
    let artifact = LfoArtifact::new(
        config.clone(),
        model,
        case.cutoff,
        Provenance {
            trace_id: format!("roundtrip-{:016x}", case.seed),
            window: (case.seed % 97) as usize,
            slot_version: case.seed % 31,
            note: "artifact_roundtrip property test".into(),
            lineage: None,
            pop: None,
        },
    )
    .with_validation(validation)
    .with_tracker(tracker.snapshot(32));
    (artifact, config)
}

/// Probe rows the saved and loaded models are compared on.
fn probe_rows(case: &Case) -> Vec<Vec<f32>> {
    let mut rng = Rng(case.seed ^ 0xdead_beef);
    let width = 3 + case.num_gaps;
    (0..64)
        .map(|_| (0..width).map(|_| rng.f32() * 8192.0).collect())
        .collect()
}

/// Asserts both scorers of `loaded` are bit-equal to `original` on `rows`.
fn assert_bit_equal(original: &LfoArtifact, loaded: &LfoArtifact, rows: &[Vec<f32>]) {
    let flat_original = FlatModel::from(&original.model);
    let flat_loaded = FlatModel::from(&loaded.model);
    for row in rows {
        let want = original.model.predict_proba(row);
        let got = loaded.model.predict_proba(row);
        assert_eq!(
            want.to_bits(),
            got.to_bits(),
            "recursive prediction drifted across save/load: {want} vs {got}"
        );
        let want_flat = flat_original.predict_proba(row);
        let got_flat = flat_loaded.predict_proba(row);
        assert_eq!(
            want_flat.to_bits(),
            got_flat.to_bits(),
            "flat prediction drifted across save/load: {want_flat} vs {got_flat}"
        );
        assert_eq!(
            want.to_bits(),
            want_flat.to_bits(),
            "flat scorer disagrees with recursive walker pre-save"
        );
    }
}

proptest! {
    // 24 cases ≥ the issue's 16-seed floor; each trains a real (small)
    // GBDT, so the budget is deliberately modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn save_load_is_bit_exact_through_a_buffer(case in case_strategy()) {
        let (artifact, config) = build_artifact(&case);

        let mut buffer = Vec::new();
        artifact.save(&mut buffer).expect("serialize artifact");
        let loaded = LfoArtifact::load(buffer.as_slice()).expect("parse artifact");

        prop_assert_eq!(&loaded.model, &artifact.model, "model tree structure changed");
        prop_assert_eq!(loaded.deployed_cutoff.to_bits(), artifact.deployed_cutoff.to_bits());
        prop_assert_eq!(&loaded.provenance, &artifact.provenance);
        prop_assert_eq!(&loaded.tracker, &artifact.tracker);
        prop_assert_eq!(loaded.config.num_features(), config.num_features());
        prop_assert_eq!(
            loaded.validation.holdout_accuracy.to_bits(),
            artifact.validation.holdout_accuracy.to_bits()
        );
        prop_assert_eq!(
            loaded.validation.train_sample.len(),
            artifact.validation.train_sample.len()
        );
        assert_bit_equal(&artifact, &loaded, &probe_rows(&case));
    }

    #[test]
    fn save_load_is_bit_exact_through_the_store(case in case_strategy()) {
        let (artifact, _) = build_artifact(&case);
        let dir = std::env::temp_dir().join(format!(
            "lfo-roundtrip-{}-{:016x}",
            std::process::id(),
            case.seed
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let store = ArtifactStore::open(&dir).expect("open store");
        store.save(&artifact).expect("store save");
        let loaded = store.load_latest().expect("store load_latest");
        std::fs::remove_dir_all(&dir).ok();

        prop_assert_eq!(&loaded.model, &artifact.model);
        prop_assert_eq!(&loaded.tracker, &artifact.tracker);
        assert_bit_equal(&artifact, &loaded, &probe_rows(&case));
    }
}
