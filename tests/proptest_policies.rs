//! Cross-cutting property tests over the whole policy zoo and OPT.
//!
//! For arbitrary small traces and cache sizes:
//! - every policy respects its byte capacity after every request;
//! - hit reporting is consistent with residency;
//! - the flow-based OPT upper-bounds every online policy's hit bytes.

use std::collections::HashMap;

use lfo_suite::prelude::*;

use cdn_cache::policies::by_name;
use proptest::prelude::*;

const POLICIES: [&str; 14] = [
    "RND",
    "FIFO",
    "LRU",
    "LRU-K",
    "LFU",
    "LFUDA",
    "GDSF",
    "GD-Wheel",
    "S4LRU",
    "AdaptSize",
    "Hyperbolic",
    "LHD",
    "TinyLFU",
    "RLC",
];

fn arb_trace() -> impl Strategy<Value = Vec<Request>> {
    proptest::collection::vec((0u64..20, 1u64..200), 1..300).prop_map(|spec| {
        // Sizes must be stable per object: first size seen wins.
        let mut canonical: HashMap<u64, u64> = HashMap::new();
        spec.into_iter()
            .enumerate()
            .map(|(i, (id, size))| {
                let s = *canonical.entry(id).or_insert(size);
                Request::new(i as u64, id + 1, s)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn policies_respect_capacity_and_report_hits_consistently(
        reqs in arb_trace(),
        cache in 1u64..500,
        seed in 0u64..8,
    ) {
        for name in POLICIES {
            let mut policy = by_name(name, cache, seed).expect("known policy");
            for r in &reqs {
                let resident_before = policy.contains(r.object);
                let outcome = policy.handle(r);
                prop_assert_eq!(
                    outcome.is_hit(), resident_before,
                    "{}: hit/contains mismatch", name
                );
                prop_assert!(
                    policy.used() <= policy.capacity(),
                    "{}: {} used > {} capacity", name, policy.used(), policy.capacity()
                );
            }
        }
    }

    #[test]
    fn opt_upper_bounds_every_policy(
        reqs in arb_trace(),
        cache in 50u64..800,
    ) {
        let opt = compute_opt(&reqs, &OptConfig::bhr(cache)).unwrap();
        for name in ["LRU", "GDSF", "S4LRU", "LHD"] {
            let mut policy = by_name(name, cache, 1).expect("known policy");
            let r = simulate(policy.as_mut(), &reqs, &SimConfig::default());
            prop_assert!(
                opt.hit_bytes >= r.measured.hit_bytes,
                "{} beat OPT: {} > {}",
                name, r.measured.hit_bytes, opt.hit_bytes
            );
        }
    }

    #[test]
    fn opt_decisions_never_admit_final_requests(
        reqs in arb_trace(),
        cache in 1u64..500,
    ) {
        let opt = compute_opt(&reqs, &OptConfig::bhr(cache)).unwrap();
        // The last request to each object can never produce a future hit,
        // so OPT never admits it (no bypass arc leaves it).
        let mut last: HashMap<ObjectId, usize> = HashMap::new();
        for (k, r) in reqs.iter().enumerate() {
            last.insert(r.object, k);
        }
        for &k in last.values() {
            prop_assert!(!opt.admit[k], "admitted final request {k}");
        }
    }
}
