//! Fault-injection integration tests: injected stage failures degrade a
//! single window — the run completes, the incumbent model (or the LRU
//! fallback) keeps serving, and every decision is visible in the report.
//!
//! The `slot_version` assertions are the load-bearing ones: the serving
//! cache's [`ModelSlot`] bumps its version on every install, so a frozen
//! version across a window boundary *proves* a skipped or gated-out model
//! was never published to the serving path.
//!
//! The second half of the file turns the same fault plan on the *artifact*
//! path: every corruption a restart can meet — torn writes, silent bit
//! flips, a crash between temp-file write and rename, format version
//! skew, an empty store — must degrade the warm start to the cold LRU
//! path with a typed [`PersistError`] and a recorded decision, and the
//! pipeline must keep serving without a panic in every case.

use std::path::{Path, PathBuf};
use std::time::Duration;

use cdn_trace::{GeneratorConfig, Trace, TraceGenerator, TraceStats};
use lfo::{
    run_pipeline, AccuracyGate, DriftGate, FaultKind, FaultPlan, GateConfig, GuardrailConfig,
    PersistConfig, PersistError, PipelineConfig, PipelineReport, RetrainConfig, RolloutDecision,
    TrainKind,
};

fn production_config(
    window: usize,
    trace_seed: u64,
    n: u64,
) -> (Vec<cdn_trace::Request>, PipelineConfig) {
    let trace = TraceGenerator::new(GeneratorConfig::production(trace_seed, n)).generate();
    let cache_size = TraceStats::from_trace(&trace).cache_size_for_fraction(0.10);
    let config = PipelineConfig {
        window,
        cache_size,
        ..Default::default()
    };
    (trace.requests().to_vec(), config)
}

/// Silences the default panic hook (backtrace splat) around a closure that
/// is expected to *catch* injected panics.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

#[test]
fn labeler_fault_exhausting_retries_skips_the_window_not_the_run() {
    let (requests, mut config) = production_config(2_000, 71, 8_000);
    let attempts = 1 + config.supervision.max_retries as usize;
    config.faults = FaultPlan::new().inject_n(1, FaultKind::LabelError, attempts);

    let report = run_pipeline(&requests, &config).unwrap();

    assert_eq!(report.windows.len(), 4, "the run must complete all windows");
    let skipped = &report.windows[1];
    assert_eq!(skipped.rollout, RolloutDecision::SkippedFault);
    assert_eq!(skipped.retries, config.supervision.max_retries);
    assert!(skipped.opt_bhr.is_none(), "no labels for a skipped window");
    assert!(skipped.deployed_cutoff.is_none());
    // The skipped window still served every request (on window 0's model).
    assert_eq!(skipped.live.requests, 2_000);
    assert!(skipped.had_model);
    // Labeling resumes cleanly afterwards: the tracker was advanced over
    // the skipped window, so later windows label, train, and deploy.
    for w in &report.windows[2..] {
        assert_eq!(w.rollout, RolloutDecision::Deployed, "window {}", w.index);
        assert!(w.opt_bhr.is_some());
    }
    assert_eq!(report.degraded_windows(), 1);
    assert_eq!(report.total_retries(), config.supervision.max_retries);
}

#[test]
fn transient_fault_is_retried_and_the_run_matches_fault_free() {
    let (requests, config) = production_config(2_000, 72, 6_000);
    let clean = run_pipeline(&requests, &config).unwrap();

    // One injected labeler error: the first attempt fails, the retry
    // succeeds, and — because OPT and training are deterministic — the
    // recovered run is bit-identical to the fault-free one.
    let mut faulted_cfg = config.clone();
    faulted_cfg.faults = FaultPlan::new().inject(1, FaultKind::LabelError);
    let faulted = run_pipeline(&requests, &faulted_cfg).unwrap();

    assert_eq!(faulted.windows[1].retries, 1);
    assert_eq!(faulted.windows[1].rollout, RolloutDecision::Deployed);
    assert_eq!(faulted.degraded_windows(), 0);
    for (c, f) in clean.windows.iter().zip(&faulted.windows) {
        assert_eq!(c.live.hit_bytes, f.live.hit_bytes, "window {}", c.index);
        assert_eq!(c.slot_version, f.slot_version, "window {}", c.index);
        assert_eq!(
            c.prediction_error.map(f64::to_bits),
            f.prediction_error.map(f64::to_bits),
            "window {}",
            c.index
        );
        assert_eq!(
            c.deployed_cutoff.map(f64::to_bits),
            f.deployed_cutoff.map(f64::to_bits)
        );
    }
}

#[test]
fn trainer_panic_is_contained_and_the_incumbent_keeps_serving() {
    let (requests, mut config) = production_config(2_000, 73, 8_000);
    let attempts = 1 + config.supervision.max_retries as usize;
    config.faults = FaultPlan::new().inject_n(2, FaultKind::TrainerPanic, attempts);

    let report = with_quiet_panics(|| run_pipeline(&requests, &config).unwrap());

    assert_eq!(report.windows.len(), 4);
    assert_eq!(report.windows[2].rollout, RolloutDecision::SkippedFault);
    // Labeling succeeded before the trainer blew up, so OPT metrics exist.
    assert!(report.windows[2].opt_bhr.is_some());
    assert!(report.windows[2].deployed_cutoff.is_none());
    // Nothing was installed at the 2→3 boundary: the slot version is
    // frozen, and window 3 serves on window 1's (incumbent) model.
    assert_eq!(
        report.windows[3].slot_version,
        report.windows[2].slot_version
    );
    assert!(report.windows[3].had_model);
    assert_eq!(report.windows[3].rollout, RolloutDecision::Deployed);
    // Only window 0 (before any model existed) ran on the LRU fallback.
    assert_eq!(report.fallback_time(), report.windows[0].timing.serve);
}

#[test]
fn training_deadline_overrun_discards_the_model() {
    let (requests, mut config) = production_config(1_500, 74, 6_000);
    // The injected stall must dwarf the deadline, and the deadline must
    // dwarf real (debug-build) training time, so the test is not flaky.
    config.faults =
        FaultPlan::new().inject(1, FaultKind::SlowTraining(Duration::from_millis(3_000)));
    config.supervision.train_deadline = Some(Duration::from_millis(1_000));

    let report = run_pipeline(&requests, &config).unwrap();

    assert_eq!(report.windows[1].rollout, RolloutDecision::SkippedDeadline);
    assert!(report.windows[1].deployed_cutoff.is_none());
    // The late model was discarded, never installed.
    assert_eq!(
        report.windows[2].slot_version,
        report.windows[1].slot_version
    );
    // Un-faulted windows train well inside the deadline and deploy.
    assert_eq!(report.windows[2].rollout, RolloutDecision::Deployed);
    assert!(report.windows[3].slot_version > report.windows[2].slot_version);
    assert_eq!(report.degraded_windows(), 1);
}

#[test]
fn drift_gate_rejects_a_poisoned_model_and_never_installs_it() {
    let (requests, mut config) = production_config(2_000, 75, 8_000);
    config.gates.drift = Some(DriftGate::default());
    config.faults = FaultPlan::with_seed(9).inject(1, FaultKind::CorruptRows { fraction: 0.7 });

    let report = run_pipeline(&requests, &config).unwrap();

    let rejected = &report.windows[1];
    assert_eq!(rejected.rollout, RolloutDecision::RejectedDrift);
    let psi = rejected
        .drift_psi
        .expect("gate records the PSI it measured");
    assert!(
        psi > DriftGate::default().max_psi,
        "corrupt rows must score as shifted, got PSI {psi}"
    );
    assert!(rejected.deployed_cutoff.is_none());
    // The poisoned model never reached the serving slot; window 2 still
    // serves on window 0's model.
    assert_eq!(
        report.windows[2].slot_version,
        report.windows[1].slot_version
    );
    assert!(report.windows[2].had_model);
    // Healthy windows pass the same gate.
    for w in [&report.windows[0], &report.windows[2]] {
        assert_eq!(w.rollout, RolloutDecision::Deployed, "window {}", w.index);
        assert!(w.drift_psi.unwrap_or(f64::INFINITY) <= DriftGate::default().max_psi);
    }
    assert_eq!(report.degraded_windows(), 1);
}

#[test]
fn accuracy_gate_rejection_keeps_the_incumbent_installed() {
    let (requests, mut config) = production_config(2_000, 76, 8_000);
    // A margin of -1.0 turns the gate into "reject any candidate once an
    // incumbent exists" (candidate + margin < reference always holds),
    // making the rejection path deterministic without relying on a
    // genuinely bad model.
    config.gates.accuracy = Some(AccuracyGate {
        holdout_fraction: 0.2,
        margin: -1.0,
    });

    let report = run_pipeline(&requests, &config).unwrap();

    // Window 0's model faces no incumbent and deploys; every later
    // candidate is rejected and the first model serves the whole run.
    assert_eq!(report.windows[0].rollout, RolloutDecision::Deployed);
    let frozen = report.windows[1].slot_version;
    for w in &report.windows[1..] {
        assert_eq!(
            w.rollout,
            RolloutDecision::RejectedAccuracy,
            "window {}",
            w.index
        );
        assert!(w.holdout_accuracy.is_some());
        assert!(w.incumbent_accuracy.is_some());
        assert!(w.deployed_cutoff.is_none());
        assert_eq!(w.slot_version, frozen, "window {}", w.index);
        assert!(w.had_model, "the incumbent keeps serving");
    }
    assert_eq!(report.degraded_windows(), report.windows.len() - 1);
    assert!(
        report.final_model.is_some(),
        "the incumbent is the final model"
    );
}

#[test]
fn model_poisoning_slips_past_the_gates_and_the_guardrail_catches_it() {
    let (requests, mut config) = production_config(2_000, 77, 8_000);
    // Both deploy-time gates armed — and blind to this fault by
    // construction: flipped labels leave the feature rows byte-identical
    // (PSI gate sees no shift) and window 0 has no incumbent for the
    // accuracy gate to compare against.
    config.gates.drift = Some(DriftGate::default());
    config.gates.accuracy = Some(AccuracyGate::default());
    config.faults = FaultPlan::with_seed(11).inject(0, FaultKind::ModelPoisoning { fraction: 1.0 });
    // Full sampling + a short evaluation window + trip_after 1 so the
    // poisoned model is caught within window 1.
    config.guardrail = Some(GuardrailConfig {
        window: 500,
        trip_after: 1,
        sample_shift: 0,
        trip_forces_scratch: true,
        ..GuardrailConfig::default()
    });
    // Incremental retraining on, so the trip's forced-scratch veto is
    // observable as a ScratchFallback where deltas would have been used.
    config.retrain = RetrainConfig {
        delta_trees: 10,
        full_refresh: 8,
        max_trees: 0,
    };

    let report = run_pipeline(&requests, &config).unwrap();

    // The poisoned model sailed through the gates and served window 1.
    assert_eq!(report.windows[0].rollout, RolloutDecision::Deployed);
    assert!(report.windows[1].had_model);
    // ...and the runtime guardrail is what caught it.
    assert!(
        report.windows[1].guardrail_trips >= 1,
        "the poisoned model must trip the guardrail in window 1, got {:?}",
        report
            .windows
            .iter()
            .map(|w| w.guardrail_trips)
            .collect::<Vec<_>>()
    );
    assert!(report.windows[1].guardrail_forced_requests > 0);
    // Accounting: a tripped window counts as degraded and its serve time
    // as fallback time even though its rollout deployed.
    assert!(report.degraded_windows() >= 1);
    assert!(report.fallback_time() > report.windows[0].timing.serve);
    // The trip vetoed the incremental shortcut: the next candidate the
    // trainer picked up after the trip — window 1's if labeling was still
    // in flight when the trip fired, window 2's otherwise — was forced
    // down the full-rebuild ScratchFallback path instead of warm-starting
    // from the poisoned incumbent.
    assert!(
        report.windows[1..=2]
            .iter()
            .any(|w| w.train_kind == TrainKind::ScratchFallback),
        "a trip must force a scratch rebuild, got {:?}",
        report
            .windows
            .iter()
            .map(|w| w.train_kind)
            .collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------------------
// Artifact corruption: the warm-start integrity ladder.
// ---------------------------------------------------------------------------

const WINDOW: usize = 2_000;
const REQUESTS: u64 = 8_000;

fn artifact_trace(seed: u64) -> Trace {
    TraceGenerator::new(GeneratorConfig::small(seed, REQUESTS)).generate()
}

fn artifact_config(trace: &Trace) -> PipelineConfig {
    PipelineConfig {
        window: WINDOW,
        cache_size: TraceStats::from_trace(trace).cache_size_for_fraction(0.1),
        opt_segment: WINDOW / 10,
        // Gates off: these tests isolate the *integrity* ladder; the gated
        // restore path is covered by `warm_restart_serves_window_zero...`
        // and the `repro restart` experiment.
        gates: GateConfig::default(),
        ..PipelineConfig::default()
    }
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lfo-faults-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the persisting "first deployment" over the trace, with `faults`
/// scripted into the persistence stage.
fn seeding_run(trace: &Trace, dir: &Path, faults: FaultPlan) -> PipelineReport {
    let mut config = artifact_config(trace);
    config.persist = Some(PersistConfig::new(dir).with_trace_id("faults-test"));
    config.faults = faults;
    run_pipeline(trace.requests(), &config).expect("seeding run")
}

/// Runs the "restarted process": same trace shape, warm start from `dir`.
fn warm_run(trace: &Trace, dir: &Path) -> PipelineReport {
    let mut config = artifact_config(trace);
    config.warm_start = Some(dir.to_path_buf());
    run_pipeline(trace.requests(), &config).expect("warm run")
}

/// Every window of the seeding run persists, so whatever survives last in
/// the store is the artifact the fault targeted.
fn fault_every_window(kind: FaultKind) -> FaultPlan {
    let windows = (REQUESTS as usize).div_ceil(WINDOW);
    let mut plan = FaultPlan::with_seed(7);
    for w in 0..windows {
        plan = plan.inject(w, kind.clone());
    }
    plan
}

/// Asserts the warm start fell back to the cold path: decision recorded,
/// no model at window 0, and the run still served the whole trace.
fn assert_cold_fallback(report: &PipelineReport) -> &PersistError {
    let restore = report.restore.as_ref().expect("restore attempt recorded");
    assert_eq!(
        restore.decision,
        RolloutDecision::SkippedFault,
        "{restore:?}"
    );
    assert!(!restore.restored());
    assert!(
        !report.windows[0].had_model,
        "cold fallback must serve window 0 from the LRU path"
    );
    // The learner still recovers on its own: later windows train fresh
    // models exactly as a cold start would.
    assert!(report.windows.last().unwrap().had_model);
    assert!(report.live_total.bhr() > 0.0, "pipeline stopped serving");
    restore.error.as_ref().expect("typed PersistError recorded")
}

#[test]
fn torn_artifact_write_degrades_to_cold_start() {
    let trace = artifact_trace(21);
    let dir = store_dir("torn");
    let seeded = seeding_run(
        &trace,
        &dir,
        fault_every_window(FaultKind::TornArtifactWrite),
    );
    assert!(seeded.persisted_windows() > 0, "nothing persisted");

    let warm = warm_run(&trace, &dir);
    let error = assert_cold_fallback(&warm);
    assert!(
        matches!(error, PersistError::Truncated { expected, found } if found < expected),
        "torn write must surface as Truncated, got {error:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_artifact_degrades_to_cold_start() {
    let trace = artifact_trace(22);
    let dir = store_dir("bitflip");
    let seeded = seeding_run(&trace, &dir, fault_every_window(FaultKind::ArtifactBitFlip));
    assert!(seeded.persisted_windows() > 0, "nothing persisted");

    let warm = warm_run(&trace, &dir);
    let error = assert_cold_fallback(&warm);
    assert!(
        matches!(
            error,
            PersistError::ChecksumMismatch { .. } | PersistError::Format(_)
        ),
        "bit flip must surface as checksum (or, if it lands in the header, \
         format) damage, got {error:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_before_rename_restores_the_previous_artifact() {
    let trace = artifact_trace(23);
    let dir = store_dir("crash");
    let windows = (REQUESTS as usize).div_ceil(WINDOW);
    // Only the *last* persisting window crashes mid-save: the store must
    // keep resolving the previous window's artifact, never a partial file.
    let last = windows - 1;
    let seeded = seeding_run(
        &trace,
        &dir,
        FaultPlan::with_seed(7).inject(last, FaultKind::ArtifactCrash),
    );
    assert_eq!(
        seeded.persisted_windows(),
        windows - 1,
        "every window but the crashed one persists"
    );

    let warm = warm_run(&trace, &dir);
    let restore = warm.restore.as_ref().expect("restore attempt recorded");
    assert!(restore.restored(), "{restore:?}");
    let provenance = restore.provenance.as_ref().expect("provenance recorded");
    assert_eq!(
        provenance.window,
        last - 1,
        "latest usable artifact is the window before the crash"
    );
    assert!(warm.windows[0].had_model, "restored model serves window 0");
    // No temp file leaks into `latest` resolution.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        assert!(
            name.starts_with("artifact-") || name.starts_with(".tmp-"),
            "unexpected store entry {name}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_skewed_artifact_degrades_to_cold_start() {
    let trace = artifact_trace(24);
    let dir = store_dir("version");
    seeding_run(&trace, &dir, FaultPlan::default());

    // Rewrite the newest artifact's header as a future format version —
    // the restore must refuse it before touching the payload.
    let store = lfo::ArtifactStore::open(&dir).unwrap();
    let latest = store.latest_path().unwrap().expect("an artifact on disk");
    let bytes = std::fs::read(&latest).unwrap();
    let skewed = String::from_utf8(bytes).unwrap().replacen(
        &format!("\"version\":{}", lfo::ARTIFACT_VERSION),
        &format!("\"version\":{}", lfo::ARTIFACT_VERSION + 9),
        1,
    );
    std::fs::write(&latest, skewed).unwrap();

    let warm = warm_run(&trace, &dir);
    let error = assert_cold_fallback(&warm);
    assert!(
        matches!(
            error,
            PersistError::VersionMismatch { found, expected }
                if *found == lfo::ARTIFACT_VERSION + 9 && *expected == lfo::ARTIFACT_VERSION
        ),
        "version skew must surface as VersionMismatch, got {error:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_store_degrades_to_cold_start() {
    let trace = artifact_trace(25);
    let dir = store_dir("empty");

    let warm = warm_run(&trace, &dir);
    let error = assert_cold_fallback(&warm);
    assert!(
        matches!(error, PersistError::Missing(_)),
        "empty store must surface as Missing, got {error:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_restart_serves_window_zero_with_the_restored_model() {
    let trace = artifact_trace(26);
    let dir = store_dir("happy");
    let seeded = seeding_run(&trace, &dir, FaultPlan::default());
    let windows = (REQUESTS as usize).div_ceil(WINDOW);
    assert_eq!(seeded.persisted_windows(), windows);
    // Cold reference: window 0 has no model by construction.
    assert!(!seeded.windows[0].had_model);

    let warm = warm_run(&trace, &dir);
    let restore = warm.restore.as_ref().expect("restore attempt recorded");
    assert!(restore.restored(), "{restore:?}");
    assert!(restore.error.is_none());
    assert_eq!(
        restore.provenance.as_ref().unwrap().window,
        windows - 1,
        "newest artifact wins"
    );
    assert!(
        warm.windows[0].had_model,
        "warm start must publish before the first request"
    );
    assert!(warm.windows[0].slot_version > 0);
    std::fs::remove_dir_all(&dir).ok();
}
