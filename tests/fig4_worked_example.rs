//! Integration test for the paper's Figure 3/4 worked example (see
//! DESIGN.md, experiment `fig3-4`).

use lfo_suite::prelude::*;

use cdn_trace::example;
use mincostflow::{check_feasible, check_optimal};
use opt::flow_model::FlowModel;

#[test]
fn figure4_graph_solves_to_a_certified_optimum() {
    let trace = example::figure3_trace();
    let config = OptConfig::bhr(example::FIGURE4_CACHE_SIZE);
    let mut model = FlowModel::build(trace.requests(), &config);
    model.graph.solve_in_place().expect("figure 4 is feasible");
    check_feasible(&model.graph).expect("flow feasible");
    check_optimal(&model.graph).expect("flow optimal");
}

#[test]
fn figure4_opt_achieves_the_hand_computed_optimum() {
    // With capacity 3, the integral optimum is to keep `a` (size 3) across
    // all three of its reuse intervals: 9 hit bytes. The LP may realize the
    // same 9 bytes with fractional splits, but never fewer (it relaxes the
    // integral problem) and never more than 11 (caching `a` and `b` at once
    // exceeds the capacity; 9 + b's 3 one-byte hits would need 4 bytes).
    let trace = example::figure3_trace();
    let result = compute_opt(
        trace.requests(),
        &OptConfig::bhr(example::FIGURE4_CACHE_SIZE),
    )
    .unwrap();
    assert!(result.hit_bytes >= 9, "hit_bytes = {}", result.hit_bytes);
    assert!(result.hit_bytes <= 12, "hit_bytes = {}", result.hit_bytes);
}

#[test]
fn figure4_infinite_cache_matches_paper_annotations() {
    // With ample capacity every reuse is a hit: a 3×3 + b 3×1 + c 1 + d 2
    // re-requested bytes = 15 hit bytes, 8 full hits.
    let trace = example::figure3_trace();
    let result = compute_opt(trace.requests(), &OptConfig::bhr(100)).unwrap();
    assert_eq!(result.hit_bytes, 15);
    assert_eq!(result.hits, 8);
    // First/last request structure of Figure 4 (supplies) implies the last
    // request of each object is never admitted.
    assert!(!result.admit[6] && !result.admit[7] && !result.admit[10] && !result.admit[11]);
}

#[test]
fn figure4_decisions_replay_consistently() {
    use cdn_cache::policies::opt_replay::OptReplay;
    let trace = example::figure3_trace();
    let config = OptConfig::bhr(example::FIGURE4_CACHE_SIZE);
    let result = compute_opt(trace.requests(), &config).unwrap();
    let mut replay = OptReplay::new(example::FIGURE4_CACHE_SIZE, result.admit.clone());
    let sim = simulate(&mut replay, trace.requests(), &SimConfig::default());
    // Replayed full-object hits equal the flow solution's full hits.
    assert_eq!(sim.measured.hits, result.hits as u64);
}
