//! Integration tests for incremental warm-start retraining (DESIGN.md §11):
//! the refresh cadence, the ensemble cap, the gate-rejection scratch
//! fallback, bit-identity of the disabled path, and incremental resume
//! across a warm restart.
//!
//! As in `pipeline_faults.rs`, the `slot_version` assertions are the
//! load-bearing ones: a frozen version across a window boundary proves a
//! rejected candidate was never published to the serving path.

use std::path::PathBuf;

use cdn_trace::{GeneratorConfig, TraceGenerator, TraceStats};
use lfo::{
    run_pipeline, run_pipeline_serial, AccuracyGate, GateConfig, PersistConfig, PipelineConfig,
    RetrainConfig, RolloutDecision, TrainKind,
};

fn production_config(
    window: usize,
    trace_seed: u64,
    n: u64,
) -> (Vec<cdn_trace::Request>, PipelineConfig) {
    let trace = TraceGenerator::new(GeneratorConfig::production(trace_seed, n)).generate();
    let cache_size = TraceStats::from_trace(&trace).cache_size_for_fraction(0.10);
    let config = PipelineConfig {
        window,
        cache_size,
        ..Default::default()
    };
    (trace.requests().to_vec(), config)
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lfo-retrain-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn disabled_retrain_is_bit_identical_to_the_serial_reference() {
    // `full_refresh == 1` means every window is a full rebuild, regardless
    // of the other knobs — the staged pipeline must reproduce the serial
    // scratch reference bit for bit at any thread count.
    let (requests, mut config) = production_config(3_000, 101, 12_000);
    config.threads = 3;
    config.opt_segment = 700;
    config.retrain = RetrainConfig {
        delta_trees: 7, // ignored: full_refresh == 1 forces scratch
        full_refresh: 1,
        max_trees: 40,
    };
    let serial = run_pipeline_serial(&requests, &config).unwrap();
    let staged = run_pipeline(&requests, &config).unwrap();

    assert_eq!(serial.windows.len(), staged.windows.len());
    for (s, p) in serial.windows.iter().zip(&staged.windows) {
        assert_eq!(s.live.hits, p.live.hits, "window {}", s.index);
        assert_eq!(s.live.hit_bytes, p.live.hit_bytes, "window {}", s.index);
        assert_eq!(
            s.prediction_error.map(f64::to_bits),
            p.prediction_error.map(f64::to_bits),
            "window {}",
            s.index
        );
        assert_eq!(
            s.train_accuracy.map(f64::to_bits),
            p.train_accuracy.map(f64::to_bits)
        );
        assert_eq!(p.train_kind, TrainKind::Scratch, "window {}", p.index);
        assert_eq!(s.model_trees, p.model_trees);
    }
    assert_eq!(serial.live_total.hit_bytes, staged.live_total.hit_bytes);
}

#[test]
fn incremental_schedule_follows_the_refresh_cadence_and_cap() {
    // delta 5 on a 30-tree full rebuild, refresh every 4th deploy, capped
    // at 40 trees: 30 → 35 → 40 → 40 → full refresh (30) → 35.
    let (requests, mut config) = production_config(2_000, 102, 12_000);
    config.retrain = RetrainConfig {
        delta_trees: 5,
        full_refresh: 4,
        max_trees: 40,
    };
    let report = run_pipeline(&requests, &config).unwrap();

    assert_eq!(report.windows.len(), 6);
    let kinds: Vec<TrainKind> = report.windows.iter().map(|w| w.train_kind).collect();
    assert_eq!(
        kinds,
        vec![
            TrainKind::Scratch,
            TrainKind::Incremental,
            TrainKind::Incremental,
            TrainKind::Incremental,
            TrainKind::Scratch,
            TrainKind::Incremental,
        ]
    );
    let trees: Vec<Option<usize>> = report.windows.iter().map(|w| w.model_trees).collect();
    assert_eq!(
        trees,
        vec![Some(30), Some(35), Some(40), Some(40), Some(30), Some(35)]
    );
    // Gates are off and no faults are injected: every window deploys, so
    // incremental windows are real rollouts, not silent skips.
    for w in &report.windows {
        assert_eq!(w.rollout, RolloutDecision::Deployed, "window {}", w.index);
        assert!(w.train_accuracy.unwrap() > 0.5, "window {}", w.index);
    }
    assert!(report.final_model.is_some());
}

#[test]
fn gate_rejected_incremental_falls_back_to_scratch_not_a_stale_slot() {
    // An accuracy gate with margin -2.0 rejects every gated candidate
    // (accuracy - 2 < reference always holds). Window 0 deploys (no
    // incumbent to gate against); from window 1 on, the incremental
    // candidate is rejected, the pipeline retrains from scratch on the
    // same window (the fallback), the fallback is gated head-to-head and
    // rejected too — and the slot provably never moves.
    let (requests, mut config) = production_config(2_000, 103, 8_000);
    config.gates = GateConfig {
        accuracy: Some(AccuracyGate {
            margin: -2.0,
            ..AccuracyGate::default()
        }),
        drift: None,
    };
    config.retrain = RetrainConfig {
        delta_trees: 5,
        full_refresh: 8,
        max_trees: 0,
    };
    let report = run_pipeline(&requests, &config).unwrap();

    assert_eq!(report.windows.len(), 4);
    assert_eq!(report.windows[0].train_kind, TrainKind::Scratch);
    assert_eq!(report.windows[0].rollout, RolloutDecision::Deployed);
    let deployed_version = report.windows[1].slot_version;
    for w in &report.windows[1..] {
        assert_eq!(
            w.train_kind,
            TrainKind::ScratchFallback,
            "window {}: the rejected incremental candidate must be retried \
             from scratch, not dropped",
            w.index
        );
        assert_eq!(w.rollout, RolloutDecision::RejectedAccuracy);
        // The fallback is a full rebuild: full iteration count, gated with
        // both sides of the comparison recorded.
        assert_eq!(w.model_trees, Some(30));
        assert!(w.holdout_accuracy.is_some());
        assert!(w.incumbent_accuracy.is_some());
        assert_eq!(
            w.slot_version, deployed_version,
            "window {}: a rejected fallback must leave the slot untouched",
            w.index
        );
    }
    assert_eq!(report.degraded_windows(), 3);
}

#[test]
fn warm_restart_resumes_incrementally_from_the_artifact() {
    // The seeding run persists its frozen bin map and lineage; the
    // restarted run restores the incumbent *and* the grid, so its very
    // first window trains a delta instead of paying a full rebuild.
    let (requests, mut config) = production_config(2_000, 104, 12_000);
    let dir = store_dir("resume");
    let retrain = RetrainConfig {
        delta_trees: 5,
        full_refresh: 4,
        max_trees: 40,
    };
    config.retrain = retrain;
    config.persist = Some(PersistConfig::new(&dir).with_trace_id("retrain-resume"));
    let seeded = run_pipeline(&requests, &config).unwrap();
    // Final seeded window: the post-refresh delta (30 + 5 trees).
    assert_eq!(seeded.windows[5].train_kind, TrainKind::Incremental);
    assert_eq!(seeded.windows[5].model_trees, Some(35));

    let mut warm = production_config(2_000, 104, 12_000).1;
    warm.retrain = retrain;
    warm.warm_start = Some(dir.clone());
    let restarted = run_pipeline(&requests, &warm).unwrap();

    assert!(restarted.restore.as_ref().unwrap().restored());
    assert!(restarted.windows[0].had_model);
    let first = &restarted.windows[0];
    assert_eq!(
        first.train_kind,
        TrainKind::Incremental,
        "a warm restart with a stored bin map must resume incrementally"
    );
    // 35 restored trees + 5 delta trees, within the 40-tree cap.
    assert_eq!(first.model_trees, Some(40));
    assert_eq!(first.rollout, RolloutDecision::Deployed);

    let _ = std::fs::remove_dir_all(&dir);
}
