//! Integration tests for incremental warm-start retraining (DESIGN.md §11):
//! the refresh cadence, the ensemble cap, the gate-rejection scratch
//! fallback, bit-identity of the disabled path, and incremental resume
//! across a warm restart — plus the federated multi-PoP rollout built on
//! the same machinery (DESIGN.md §15): shared-grid delta trees per PoP,
//! and per-PoP scratch fallback that never stalls the rest of the fleet.
//!
//! As in `pipeline_faults.rs`, the `slot_version` assertions are the
//! load-bearing ones: a frozen version across a window boundary proves a
//! rejected candidate was never published to the serving path.

use std::path::PathBuf;

use cdn_trace::{GeneratorConfig, TraceGenerator, TraceStats};
use lfo::{
    run_pipeline, run_pipeline_serial, AccuracyGate, GateConfig, PersistConfig, PipelineConfig,
    RetrainConfig, RolloutDecision, TrainKind,
};

fn production_config(
    window: usize,
    trace_seed: u64,
    n: u64,
) -> (Vec<cdn_trace::Request>, PipelineConfig) {
    let trace = TraceGenerator::new(GeneratorConfig::production(trace_seed, n)).generate();
    let cache_size = TraceStats::from_trace(&trace).cache_size_for_fraction(0.10);
    let config = PipelineConfig {
        window,
        cache_size,
        ..Default::default()
    };
    (trace.requests().to_vec(), config)
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lfo-retrain-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn disabled_retrain_is_bit_identical_to_the_serial_reference() {
    // `full_refresh == 1` means every window is a full rebuild, regardless
    // of the other knobs — the staged pipeline must reproduce the serial
    // scratch reference bit for bit at any thread count.
    let (requests, mut config) = production_config(3_000, 101, 12_000);
    config.threads = 3;
    config.opt_segment = 700;
    config.retrain = RetrainConfig {
        delta_trees: 7, // ignored: full_refresh == 1 forces scratch
        full_refresh: 1,
        max_trees: 40,
    };
    let serial = run_pipeline_serial(&requests, &config).unwrap();
    let staged = run_pipeline(&requests, &config).unwrap();

    assert_eq!(serial.windows.len(), staged.windows.len());
    for (s, p) in serial.windows.iter().zip(&staged.windows) {
        assert_eq!(s.live.hits, p.live.hits, "window {}", s.index);
        assert_eq!(s.live.hit_bytes, p.live.hit_bytes, "window {}", s.index);
        assert_eq!(
            s.prediction_error.map(f64::to_bits),
            p.prediction_error.map(f64::to_bits),
            "window {}",
            s.index
        );
        assert_eq!(
            s.train_accuracy.map(f64::to_bits),
            p.train_accuracy.map(f64::to_bits)
        );
        assert_eq!(p.train_kind, TrainKind::Scratch, "window {}", p.index);
        assert_eq!(s.model_trees, p.model_trees);
    }
    assert_eq!(serial.live_total.hit_bytes, staged.live_total.hit_bytes);
}

#[test]
fn incremental_schedule_follows_the_refresh_cadence_and_cap() {
    // delta 5 on a 30-tree full rebuild, refresh every 4th deploy, capped
    // at 40 trees: 30 → 35 → 40 → 40 → full refresh (30) → 35.
    let (requests, mut config) = production_config(2_000, 102, 12_000);
    config.retrain = RetrainConfig {
        delta_trees: 5,
        full_refresh: 4,
        max_trees: 40,
    };
    let report = run_pipeline(&requests, &config).unwrap();

    assert_eq!(report.windows.len(), 6);
    let kinds: Vec<TrainKind> = report.windows.iter().map(|w| w.train_kind).collect();
    assert_eq!(
        kinds,
        vec![
            TrainKind::Scratch,
            TrainKind::Incremental,
            TrainKind::Incremental,
            TrainKind::Incremental,
            TrainKind::Scratch,
            TrainKind::Incremental,
        ]
    );
    let trees: Vec<Option<usize>> = report.windows.iter().map(|w| w.model_trees).collect();
    assert_eq!(
        trees,
        vec![Some(30), Some(35), Some(40), Some(40), Some(30), Some(35)]
    );
    // Gates are off and no faults are injected: every window deploys, so
    // incremental windows are real rollouts, not silent skips.
    for w in &report.windows {
        assert_eq!(w.rollout, RolloutDecision::Deployed, "window {}", w.index);
        assert!(w.train_accuracy.unwrap() > 0.5, "window {}", w.index);
    }
    assert!(report.final_model.is_some());
}

#[test]
fn gate_rejected_incremental_falls_back_to_scratch_not_a_stale_slot() {
    // An accuracy gate with margin -2.0 rejects every gated candidate
    // (accuracy - 2 < reference always holds). Window 0 deploys (no
    // incumbent to gate against); from window 1 on, the incremental
    // candidate is rejected, the pipeline retrains from scratch on the
    // same window (the fallback), the fallback is gated head-to-head and
    // rejected too — and the slot provably never moves.
    let (requests, mut config) = production_config(2_000, 103, 8_000);
    config.gates = GateConfig {
        accuracy: Some(AccuracyGate {
            margin: -2.0,
            ..AccuracyGate::default()
        }),
        drift: None,
    };
    config.retrain = RetrainConfig {
        delta_trees: 5,
        full_refresh: 8,
        max_trees: 0,
    };
    let report = run_pipeline(&requests, &config).unwrap();

    assert_eq!(report.windows.len(), 4);
    assert_eq!(report.windows[0].train_kind, TrainKind::Scratch);
    assert_eq!(report.windows[0].rollout, RolloutDecision::Deployed);
    let deployed_version = report.windows[1].slot_version;
    for w in &report.windows[1..] {
        assert_eq!(
            w.train_kind,
            TrainKind::ScratchFallback,
            "window {}: the rejected incremental candidate must be retried \
             from scratch, not dropped",
            w.index
        );
        assert_eq!(w.rollout, RolloutDecision::RejectedAccuracy);
        // The fallback is a full rebuild: full iteration count, gated with
        // both sides of the comparison recorded.
        assert_eq!(w.model_trees, Some(30));
        assert!(w.holdout_accuracy.is_some());
        assert!(w.incumbent_accuracy.is_some());
        assert_eq!(
            w.slot_version, deployed_version,
            "window {}: a rejected fallback must leave the slot untouched",
            w.index
        );
    }
    assert_eq!(report.degraded_windows(), 3);
}

#[test]
fn warm_restart_resumes_incrementally_from_the_artifact() {
    // The seeding run persists its frozen bin map and lineage; the
    // restarted run restores the incumbent *and* the grid, so its very
    // first window trains a delta instead of paying a full rebuild.
    let (requests, mut config) = production_config(2_000, 104, 12_000);
    let dir = store_dir("resume");
    let retrain = RetrainConfig {
        delta_trees: 5,
        full_refresh: 4,
        max_trees: 40,
    };
    config.retrain = retrain;
    config.persist = Some(PersistConfig::new(&dir).with_trace_id("retrain-resume"));
    let seeded = run_pipeline(&requests, &config).unwrap();
    // Final seeded window: the post-refresh delta (30 + 5 trees).
    assert_eq!(seeded.windows[5].train_kind, TrainKind::Incremental);
    assert_eq!(seeded.windows[5].model_trees, Some(35));

    let mut warm = production_config(2_000, 104, 12_000).1;
    warm.retrain = retrain;
    warm.warm_start = Some(dir.clone());
    let restarted = run_pipeline(&requests, &warm).unwrap();

    assert!(restarted.restore.as_ref().unwrap().restored());
    assert!(restarted.windows[0].had_model);
    let first = &restarted.windows[0];
    assert_eq!(
        first.train_kind,
        TrainKind::Incremental,
        "a warm restart with a stored bin map must resume incrementally"
    );
    // 35 restored trees + 5 delta trees, within the 40-tree cap.
    assert_eq!(first.model_trees, Some(40));
    assert_eq!(first.rollout, RolloutDecision::Deployed);

    let _ = std::fs::remove_dir_all(&dir);
}

/// One labeled training window per PoP over a skewed multi-PoP trace —
/// the control plane's input, built with the standard OPT-labeling
/// recipe.
fn fleet_windows(num_pops: usize, n: u64, cache: u64) -> Vec<gbdt::Dataset> {
    let mut pops = cdn_trace::PopTraceConfig::production(211, num_pops, n);
    pops.overlap = 0.8;
    pops.skew = 0.3;
    let merged = cdn_trace::PopTraceGenerator::new(pops).generate();
    let per_pop = cdn_trace::split_by_pop(&merged, num_pops);
    let lfo_config = lfo::LfoConfig::default();
    per_pop
        .iter()
        .map(|reqs| {
            let opt = opt::compute_opt(reqs, &opt::OptConfig::bhr(cache)).unwrap();
            let mut tracker = lfo::FeatureTracker::new(lfo_config.num_gaps, lfo_config.cost_model);
            lfo::labels::build_training_set(reqs, &opt, &mut tracker, cache)
        })
        .collect()
}

#[test]
fn federated_delta_rollouts_share_the_base_grid_fingerprint() {
    use lfo::pops::{FederationGate, RolloutPlan};

    let windows = fleet_windows(3, 2_500, 2 * 1024 * 1024);
    let config = lfo::LfoConfig::default();
    let gate = FederationGate {
        min_holdout_accuracy: 0.0, // fingerprint sharing is the subject here
        ..FederationGate::default()
    };
    let fleet = lfo::pops::train_fleet(
        &windows,
        &config,
        &RolloutPlan::Federated {
            retrain: RetrainConfig {
                delta_trees: 6,
                full_refresh: 8,
                max_trees: 60,
            },
        },
        &gate,
    );

    let fingerprint = fleet
        .base_fingerprint
        .as_deref()
        .expect("federated rollout records the shared grid fingerprint");
    for rollout in &fleet.rollouts {
        assert_eq!(rollout.kind, TrainKind::Incremental, "pop {}", rollout.pop);
        assert_eq!(
            rollout.lineage.bin_map_fingerprint.as_deref(),
            Some(fingerprint),
            "pop {}: delta trees must be binned on the base model's grid",
            rollout.pop
        );
        // The fingerprint is load-bearing: it is what authorizes the
        // quantized serving layout at publish time, so a persisted delta
        // artifact must come back quantization-ready.
        let artifact = rollout.artifact(
            config.clone(),
            "retrain-federation",
            0,
            fleet.bin_map.as_ref(),
        );
        assert_eq!(artifact.provenance.pop, Some(rollout.pop));
        let restored = lfo::LfoArtifact::from_bytes(&artifact.to_bytes().unwrap()).unwrap();
        assert!(
            restored.quantization_map().is_some(),
            "pop {}: restored delta artifact must be authorized to quantize",
            rollout.pop
        );
    }
}

#[test]
fn rejected_pop_falls_back_to_scratch_without_stalling_the_fleet() {
    use lfo::pops::{EdgeSpec, FederationGate, PopsTopology, RolloutPlan};

    let windows = fleet_windows(3, 2_000, 2 * 1024 * 1024);
    let config = lfo::LfoConfig::default();
    // The deterministic rejection hook (the `lfo::faults` pattern): PoP 1's
    // delta candidate fails the gate unconditionally.
    let gate = FederationGate {
        min_holdout_accuracy: 0.0,
        force_reject: vec![1],
        ..FederationGate::default()
    };
    let fleet = lfo::pops::train_fleet(
        &windows,
        &config,
        &RolloutPlan::Federated {
            retrain: RetrainConfig {
                delta_trees: 6,
                full_refresh: 8,
                max_trees: 60,
            },
        },
        &gate,
    );

    // The rejected PoP degrades to a scratch model of its own...
    assert_eq!(fleet.rollouts[1].kind, TrainKind::ScratchFallback);
    assert_eq!(fleet.rollouts[1].lineage.bin_map_fingerprint, None);
    // ...while the other PoPs' delta rollouts proceed untouched.
    for pop in [0, 2] {
        assert_eq!(
            fleet.rollouts[pop].kind,
            TrainKind::Incremental,
            "pop {pop}"
        );
        assert_eq!(
            fleet.rollouts[pop].lineage.bin_map_fingerprint.as_deref(),
            fleet.base_fingerprint.as_deref(),
            "pop {pop}"
        );
    }

    // Publication is per-PoP: every edge slot moves exactly once — the
    // rejected PoP rolls out its fallback, nobody is left model-less.
    let spec = EdgeSpec {
        capacity: 512 * 1024,
        config: config.clone(),
    };
    let topology = PopsTopology::new(&[spec.clone(), spec.clone(), spec], 2 * 1024 * 1024, config);
    let before: Vec<u64> = (0..3).map(|p| topology.edge_slot(p).version()).collect();
    fleet.publish_to(&topology);
    for (pop, &prev) in before.iter().enumerate() {
        assert!(topology.edge_slot(pop).has_model(), "pop {pop}");
        assert!(
            topology.edge_slot(pop).version() > prev,
            "pop {pop}: publication must advance the slot"
        );
    }
}
