//! Backward-compatibility contract for the artifact format: a fixture
//! saved by *this* version of the code is committed to the repo, and every
//! future build must keep loading it and reproducing its pinned
//! predictions. Breaking either is an [`ARTIFACT_VERSION`] event — bump
//! the version and regenerate, don't silently re-interpret old bytes.
//!
//! Regenerate (after a deliberate format change) with:
//!
//! ```sh
//! LFO_REGEN_GOLDEN=1 cargo test -p lfo --test artifact_compat
//! ```

use gbdt::{train, Dataset, FlatModel};
use lfo::{LfoArtifact, LfoConfig, Provenance, StoredValidation, ARTIFACT_VERSION};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn artifact_path() -> PathBuf {
    fixture_dir().join(format!("golden-artifact-v{ARTIFACT_VERSION}.json"))
}

fn predictions_path() -> PathBuf {
    fixture_dir().join(format!("golden-predictions-v{ARTIFACT_VERSION}.json"))
}

/// Deterministic probe rows (fixed recurrence, no RNG dependency): the
/// rows the golden predictions are pinned on.
fn probe_rows(num_features: usize) -> Vec<Vec<f32>> {
    (0..32)
        .map(|r| {
            (0..num_features)
                .map(|c| ((r * 31 + c * 17 + 7) % 997) as f32 * 4.25)
                .collect()
        })
        .collect()
}

/// The golden artifact recipe. Everything is pinned — data, seed, single
/// thread — so regeneration on any machine produces the same model.
fn golden_artifact() -> LfoArtifact {
    let mut config = LfoConfig {
        num_gaps: 5,
        cutoff: 0.5,
        ..LfoConfig::default()
    };
    config.gbdt.num_iterations = 6;
    config.gbdt.num_leaves = 8;
    config.gbdt.seed = 42;
    config.gbdt.num_threads = 1;

    let width = config.num_features();
    let rows: Vec<Vec<f32>> = (0..240)
        .map(|r| {
            (0..width)
                .map(|c| ((r * 13 + c * 29 + 3) % 503) as f32 * 8.5)
                .collect()
        })
        .collect();
    let labels: Vec<f32> = rows
        .iter()
        .map(|row| (row[0] < row[1]) as u8 as f32)
        .collect();
    let data = Dataset::from_rows(rows, labels).unwrap();
    let model = train(&data, &config.gbdt);

    let sample: Vec<Vec<f32>> = (0..4).map(|r| data.row(r)).collect();
    LfoArtifact::new(
        config,
        model,
        0.5,
        Provenance {
            trace_id: "golden-fixture".into(),
            window: 3,
            slot_version: 4,
            note: "committed compatibility fixture; see artifact_compat.rs".into(),
            lineage: None,
        },
    )
    .with_validation(StoredValidation {
        train_sample: sample.clone(),
        holdout_rows: sample,
        holdout_labels: vec![0.0, 1.0, 0.0, 1.0],
        holdout_accuracy: 0.75,
    })
}

#[test]
fn golden_artifact_still_loads_with_pinned_predictions() {
    if std::env::var("LFO_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(fixture_dir()).unwrap();
        let artifact = golden_artifact();
        let mut bytes = Vec::new();
        artifact.save(&mut bytes).unwrap();
        std::fs::write(artifact_path(), bytes).unwrap();
        let preds: Vec<f64> = probe_rows(artifact.config.num_features())
            .iter()
            .map(|row| artifact.model.predict_proba(row))
            .collect();
        std::fs::write(
            predictions_path(),
            serde_json::to_string_pretty(&preds).unwrap(),
        )
        .unwrap();
        eprintln!("regenerated {}", artifact_path().display());
        return;
    }

    let artifact = LfoArtifact::load_file(&artifact_path()).unwrap_or_else(|e| {
        panic!(
            "golden v{ARTIFACT_VERSION} artifact no longer parses ({e}). If the \
             format changed on purpose, bump ARTIFACT_VERSION and regenerate \
             with LFO_REGEN_GOLDEN=1."
        )
    });
    assert_eq!(artifact.provenance.trace_id, "golden-fixture");
    assert_eq!(artifact.provenance.window, 3);
    assert_eq!(artifact.deployed_cutoff, 0.5);
    assert_eq!(artifact.validation.holdout_accuracy, 0.75);

    let expected: Vec<f64> =
        serde_json::from_str(&std::fs::read_to_string(predictions_path()).unwrap()).unwrap();
    let rows = probe_rows(artifact.config.num_features());
    assert_eq!(expected.len(), rows.len());
    let flat = FlatModel::from(&artifact.model);
    for (row, want) in rows.iter().zip(&expected) {
        let got = artifact.model.predict_proba(row);
        assert!(
            (got - want).abs() <= 1e-9,
            "pinned prediction drifted: got {got}, fixture says {want}"
        );
        let got_flat = flat.predict_proba(row);
        assert!(
            (got_flat - want).abs() <= 1e-9,
            "flat scorer drifted from pinned prediction: {got_flat} vs {want}"
        );
    }
}

/// The committed fixture must match what today's recipe produces — i.e.
/// the recipe itself is stable, so a prediction drift in the test above
/// points at the *format*, not at the generator.
#[test]
fn golden_recipe_is_deterministic() {
    let a = golden_artifact();
    let b = golden_artifact();
    assert_eq!(a.model, b.model);
}
