//! Backward-compatibility contract for the artifact format: a fixture
//! saved by *this* version of the code is committed to the repo, and every
//! future build must keep loading it and reproducing its pinned
//! predictions. Breaking either is an [`ARTIFACT_VERSION`] event — bump
//! the version and regenerate, don't silently re-interpret old bytes.
//!
//! Regenerate (after a deliberate format change) with:
//!
//! ```sh
//! LFO_REGEN_GOLDEN=1 cargo test -p lfo --test artifact_compat
//! ```

use cdn_trace::Request;
use gbdt::{train, BinMap, Dataset, FlatModel};
use lfo::{
    EvictionStrategy, LfoArtifact, LfoConfig, ModelSlot, Provenance, StoredValidation,
    TrackerBudget, ARTIFACT_VERSION,
};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn artifact_path() -> PathBuf {
    fixture_dir().join(format!("golden-artifact-v{ARTIFACT_VERSION}.json"))
}

fn predictions_path() -> PathBuf {
    fixture_dir().join(format!("golden-predictions-v{ARTIFACT_VERSION}.json"))
}

/// Deterministic probe rows (fixed recurrence, no RNG dependency): the
/// rows the golden predictions are pinned on.
fn probe_rows(num_features: usize) -> Vec<Vec<f32>> {
    (0..32)
        .map(|r| {
            (0..num_features)
                .map(|c| ((r * 31 + c * 17 + 7) % 997) as f32 * 4.25)
                .collect()
        })
        .collect()
}

/// The golden artifact recipe. Everything is pinned — data, seed, single
/// thread — so regeneration on any machine produces the same model.
fn golden_artifact() -> LfoArtifact {
    let mut config = LfoConfig {
        num_gaps: 5,
        cutoff: 0.5,
        ..LfoConfig::default()
    };
    config.gbdt.num_iterations = 6;
    config.gbdt.num_leaves = 8;
    config.gbdt.seed = 42;
    config.gbdt.num_threads = 1;

    let width = config.num_features();
    let rows: Vec<Vec<f32>> = (0..240)
        .map(|r| {
            (0..width)
                .map(|c| ((r * 13 + c * 29 + 3) % 503) as f32 * 8.5)
                .collect()
        })
        .collect();
    let labels: Vec<f32> = rows
        .iter()
        .map(|row| (row[0] < row[1]) as u8 as f32)
        .collect();
    let data = Dataset::from_rows(rows, labels).unwrap();
    let model = train(&data, &config.gbdt);

    let sample: Vec<Vec<f32>> = (0..4).map(|r| data.row(r)).collect();
    LfoArtifact::new(
        config,
        model,
        0.5,
        Provenance {
            trace_id: "golden-fixture".into(),
            window: 3,
            slot_version: 4,
            note: "committed compatibility fixture; see artifact_compat.rs".into(),
            lineage: None,
            pop: None,
        },
    )
    .with_validation(StoredValidation {
        train_sample: sample.clone(),
        holdout_rows: sample,
        holdout_labels: vec![0.0, 1.0, 0.0, 1.0],
        holdout_accuracy: 0.75,
    })
}

#[test]
fn golden_artifact_still_loads_with_pinned_predictions() {
    if std::env::var("LFO_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(fixture_dir()).unwrap();
        let artifact = golden_artifact();
        let mut bytes = Vec::new();
        artifact.save(&mut bytes).unwrap();
        std::fs::write(artifact_path(), bytes).unwrap();
        let preds: Vec<f64> = probe_rows(artifact.config.num_features())
            .iter()
            .map(|row| artifact.model.predict_proba(row))
            .collect();
        std::fs::write(
            predictions_path(),
            serde_json::to_string_pretty(&preds).unwrap(),
        )
        .unwrap();
        eprintln!("regenerated {}", artifact_path().display());
        return;
    }

    let artifact = LfoArtifact::load_file(&artifact_path()).unwrap_or_else(|e| {
        panic!(
            "golden v{ARTIFACT_VERSION} artifact no longer parses ({e}). If the \
             format changed on purpose, bump ARTIFACT_VERSION and regenerate \
             with LFO_REGEN_GOLDEN=1."
        )
    });
    assert_eq!(artifact.provenance.trace_id, "golden-fixture");
    assert_eq!(artifact.provenance.window, 3);
    assert_eq!(artifact.deployed_cutoff, 0.5);
    assert_eq!(artifact.validation.holdout_accuracy, 0.75);

    let expected: Vec<f64> =
        serde_json::from_str(&std::fs::read_to_string(predictions_path()).unwrap()).unwrap();
    let rows = probe_rows(artifact.config.num_features());
    assert_eq!(expected.len(), rows.len());
    let flat = FlatModel::from(&artifact.model);
    for (row, want) in rows.iter().zip(&expected) {
        let got = artifact.model.predict_proba(row);
        assert!(
            (got - want).abs() <= 1e-9,
            "pinned prediction drifted: got {got}, fixture says {want}"
        );
        let got_flat = flat.predict_proba(row);
        assert!(
            (got_flat - want).abs() <= 1e-9,
            "flat scorer drifted from pinned prediction: {got_flat} vs {want}"
        );
    }
}

/// The committed fixture must match what today's recipe produces — i.e.
/// the recipe itself is stable, so a prediction drift in the test above
/// points at the *format*, not at the generator.
#[test]
fn golden_recipe_is_deterministic() {
    let a = golden_artifact();
    let b = golden_artifact();
    assert_eq!(a.model, b.model);
}

/// v2 artifacts written before publish-time quantization carry no bin map
/// and no quantization fingerprint. Publishing one must serve through the
/// f32 walk — no quantized engine gets compiled, and the predictions stay
/// exactly the pinned golden values (no silent requantization against some
/// freshly fitted grid).
#[test]
fn fingerprintless_artifact_serves_through_the_unquantized_path() {
    if std::env::var("LFO_REGEN_GOLDEN").is_ok() {
        return; // regeneration run; the loading test writes the fixture
    }
    let artifact = LfoArtifact::load_file(&artifact_path()).unwrap();
    assert!(
        artifact.bin_map.is_none(),
        "golden fixture predates bin maps"
    );
    assert!(artifact.quantization_map().is_none());

    let slot = ModelSlot::new();
    artifact.publish_to(&slot);
    let compiled = slot.compiled().expect("publish installs an artifact");
    assert!(
        compiled.quantized.is_none(),
        "a fingerprint-less artifact must not be quantized at publish"
    );

    // Predictions through the published layouts still match the fixture.
    let expected: Vec<f64> =
        serde_json::from_str(&std::fs::read_to_string(predictions_path()).unwrap()).unwrap();
    for (row, want) in probe_rows(artifact.config.num_features())
        .iter()
        .zip(&expected)
    {
        let recursive = compiled.model.predict_proba(row);
        let flat = compiled.flat.predict_proba(row);
        assert!((recursive - want).abs() <= 1e-9);
        assert_eq!(recursive.to_bits(), flat.to_bits());
    }
}

/// Artifacts written before tracker budgets and sampled eviction existed
/// (the committed golden fixture) must keep loading with those config keys
/// absent — deserializing to the exact-tracker/exact-queue defaults — and
/// the exact tracker snapshot such an artifact carries must warm-start a
/// budget-bounded cache with its hottest histories (DESIGN.md §14).
#[test]
fn pre_bounded_artifact_warm_starts_a_bounded_tracker() {
    if std::env::var("LFO_REGEN_GOLDEN").is_ok() {
        return; // regeneration run; the loading test writes the fixture
    }
    let mut artifact = LfoArtifact::load_file(&artifact_path()).unwrap();
    assert!(
        artifact.config.tracker_budget.is_none(),
        "golden fixture predates tracker budgets"
    );
    assert!(
        artifact.config.eviction.is_none(),
        "golden fixture predates sampled eviction"
    );
    assert_eq!(artifact.config.budget(), TrackerBudget::default());
    assert_eq!(
        artifact.config.eviction_strategy(),
        EvictionStrategy::ExactQueue
    );

    // Record history into the exact tracker this config describes and
    // snapshot it into the artifact — the form a pre-budget pipeline
    // persisted. Then deploy under a bounded budget: the snapshot's
    // hottest objects must come back with their exact gap vectors.
    let mut exact = artifact.config.tracker();
    for t in 0..200u64 {
        exact.record(&Request::new(t, t % 20, 64));
    }
    artifact.tracker = exact.snapshot(usize::MAX);
    artifact.config.tracker_budget = Some(TrackerBudget::capped(6));
    artifact.config.eviction = Some(EvictionStrategy::sample(8));
    let cache = artifact.into_cache(1 << 20);
    assert_eq!(cache.tracker().tracked_objects(), 6);
    assert_eq!(cache.eviction_label(), "sample8");
    // Object 19 was touched last, so it survives the budget cut.
    let probe = Request::new(500, 19, 64);
    assert_eq!(
        cache.tracker().features(&probe, 0),
        exact.features(&probe, 0)
    );
}

/// A legacy artifact that *has* a bin map but whose lineage never recorded
/// the map's fingerprint (e.g. incremental-retrain artifacts written
/// before quantization existed, or a map grafted on by hand) is treated
/// the same way: the map is usable for warm-start retraining, but it does
/// not authorize quantization.
#[test]
fn bin_map_without_fingerprint_does_not_authorize_quantization() {
    let mut artifact = golden_artifact();
    let data = Dataset::from_rows(
        (0..60)
            .map(|r| {
                (0..artifact.config.num_features())
                    .map(|c| ((r * 19 + c * 23) % 211) as f32 * 2.0)
                    .collect()
            })
            .collect(),
        vec![0.0; 60],
    )
    .unwrap();
    // Direct field assignment: the pre-quantization code path, which never
    // stamped a fingerprint into the lineage.
    artifact.bin_map = Some(BinMap::fit(&data, artifact.config.gbdt.max_bins));
    assert!(artifact.provenance.lineage.is_none());
    assert!(artifact.quantization_map().is_none());

    let slot = ModelSlot::new();
    artifact.publish_to(&slot);
    assert!(slot.compiled().unwrap().quantized.is_none());

    // The sanctioned path — with_bin_map — stamps the fingerprint and
    // unlocks quantization for the same map.
    let stamped = golden_artifact().with_bin_map(artifact.bin_map.clone());
    assert!(stamped.quantization_map().is_some());
    let slot = ModelSlot::new();
    stamped.publish_to(&slot);
    assert!(slot.compiled().unwrap().quantized.is_some());
}
