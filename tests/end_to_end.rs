//! End-to-end integration: the whole stack — trace generation, OPT, the
//! policy zoo, and the LFO pipeline — hangs together on one realistic
//! trace, and the paper's qualitative orderings hold.

use lfo_suite::prelude::*;

use cdn_cache::policies::{by_name, opt_replay::OptReplay};
use opt::bounds::infinite_cache_bound;

fn standard_trace() -> (Trace, u64) {
    let trace = TraceGenerator::new(GeneratorConfig::production(4242, 40_000)).generate();
    let cache = TraceStats::from_trace(&trace).cache_size_for_fraction(0.10);
    (trace, cache)
}

#[test]
fn every_policy_stays_between_zero_and_the_infinite_cache_bound() {
    let (trace, cache) = standard_trace();
    let bound = infinite_cache_bound(trace.requests());
    for name in [
        "RND",
        "FIFO",
        "LRU",
        "LRU-K",
        "LFU",
        "LFUDA",
        "GDSF",
        "GD-Wheel",
        "S4LRU",
        "AdaptSize",
        "Hyperbolic",
        "LHD",
        "TinyLFU",
        "RLC",
    ] {
        let mut policy = by_name(name, cache, 7).expect("known policy");
        let r = simulate(policy.as_mut(), trace.requests(), &SimConfig::default());
        assert!(
            r.measured.hit_bytes <= bound.hit_bytes,
            "{name} exceeded the infinite-cache bound"
        );
        assert!(
            r.bhr() > 0.0,
            "{name} got literally zero hits on a skewed trace"
        );
    }
}

#[test]
fn opt_dominates_every_online_policy_in_byte_hits() {
    let (trace, cache) = standard_trace();
    let opt = compute_opt(trace.requests(), &OptConfig::bhr(cache)).unwrap();
    for name in ["LRU", "GDSF", "S4LRU", "LHD", "LFUDA"] {
        let mut policy = by_name(name, cache, 7).expect("known policy");
        let r = simulate(policy.as_mut(), trace.requests(), &SimConfig::default());
        assert!(
            opt.hit_bytes >= r.measured.hit_bytes,
            "{name} ({} bytes) beat OPT ({} bytes)?!",
            r.measured.hit_bytes,
            opt.hit_bytes
        );
    }
}

#[test]
fn opt_replay_agrees_with_the_flow_solution() {
    let (trace, cache) = standard_trace();
    let opt = compute_opt(trace.requests(), &OptConfig::bhr(cache)).unwrap();
    let mut replay = OptReplay::new(cache, opt.admit.clone());
    let sim = simulate(&mut replay, trace.requests(), &SimConfig::default());
    assert_eq!(sim.measured.hits, opt.hits as u64);
    // Flow feasibility means the replay (which only tracks full-object
    // admissions) almost never refuses; allow the rare split artifacts.
    assert!(
        replay.refused_admissions <= (trace.len() / 100) as u64,
        "{} refused admissions",
        replay.refused_admissions
    );
}

#[test]
fn lfo_pipeline_beats_lru_and_stays_below_opt() {
    let (trace, cache) = standard_trace();
    let window = 10_000;
    let config = PipelineConfig {
        window,
        cache_size: cache,
        ..Default::default()
    };
    let report = run_pipeline(trace.requests(), &config).unwrap();

    let warmed = SimConfig {
        warmup: window,
        interval: 0,
    };
    let mut lru = by_name("LRU", cache, 0).unwrap();
    let lru_result = simulate(lru.as_mut(), trace.requests(), &warmed);

    let opt = compute_opt(trace.requests(), &OptConfig::bhr(cache)).unwrap();

    let lfo_bhr = report.live_trained.bhr();
    assert!(
        lfo_bhr > lru_result.bhr(),
        "LFO {lfo_bhr} did not beat LRU {}",
        lru_result.bhr()
    );
    assert!(
        lfo_bhr <= opt.bhr() + 0.02,
        "LFO {lfo_bhr} implausibly above OPT {}",
        opt.bhr()
    );
    // The paper: LFO reaches ~80% of OPT's BHR; require at least 60% here.
    assert!(
        lfo_bhr / opt.bhr() > 0.6,
        "LFO/OPT ratio {:.2} too low",
        lfo_bhr / opt.bhr()
    );
}

#[test]
fn lfo_prediction_accuracy_is_high_on_production_mix() {
    let (trace, cache) = standard_trace();
    let config = PipelineConfig {
        window: 10_000,
        cache_size: cache,
        ..Default::default()
    };
    let report = run_pipeline(trace.requests(), &config).unwrap();
    let acc = report.mean_prediction_accuracy().unwrap();
    assert!(acc > 0.75, "prediction accuracy {acc}");
}
