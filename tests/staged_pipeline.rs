//! Integration tests for the staged pipeline (Collector → Labeler →
//! Trainer → Deployer): boundary-deploy determinism against the serial
//! reference, and async mid-window rollout under uneven window stress.

use cdn_trace::{GeneratorConfig, TraceGenerator, TraceStats};
use lfo::{run_pipeline, run_pipeline_serial, DeployMode, PipelineConfig};

fn production_config(
    window: usize,
    trace_seed: u64,
    n: u64,
) -> (Vec<cdn_trace::Request>, PipelineConfig) {
    let trace = TraceGenerator::new(GeneratorConfig::production(trace_seed, n)).generate();
    let cache_size = TraceStats::from_trace(&trace).cache_size_for_fraction(0.10);
    let config = PipelineConfig {
        window,
        cache_size,
        ..Default::default()
    };
    (trace.requests().to_vec(), config)
}

#[test]
fn staged_boundary_reproduces_serial_on_production_mix() {
    let (requests, mut config) = production_config(4_000, 31, 16_000);
    config.opt_segment = 800;
    config.threads = 4;
    let serial = run_pipeline_serial(&requests, &config).unwrap();
    let staged = run_pipeline(&requests, &config).unwrap();

    assert_eq!(serial.windows.len(), staged.windows.len());
    for (s, p) in serial.windows.iter().zip(&staged.windows) {
        assert_eq!(s.live.hits, p.live.hits, "window {}", s.index);
        assert_eq!(s.live.hit_bytes, p.live.hit_bytes, "window {}", s.index);
        assert_eq!(s.had_model, p.had_model);
        assert_eq!(
            s.prediction_error.map(f64::to_bits),
            p.prediction_error.map(f64::to_bits),
            "window {}",
            s.index
        );
        assert_eq!(
            s.train_accuracy.map(f64::to_bits),
            p.train_accuracy.map(f64::to_bits)
        );
        assert_eq!(s.opt_bhr.map(f64::to_bits), p.opt_bhr.map(f64::to_bits));
        assert_eq!(
            s.deployed_cutoff.map(f64::to_bits),
            p.deployed_cutoff.map(f64::to_bits)
        );
        assert_eq!(s.slot_version, p.slot_version);
        assert_eq!(s.rollout, p.rollout);
    }
    assert_eq!(serial.live_total.hit_bytes, staged.live_total.hit_bytes);
    assert_eq!(serial.live_trained.hit_bytes, staged.live_trained.hit_bytes);
    assert_eq!(
        serial.mean_prediction_accuracy().map(f64::to_bits),
        staged.mean_prediction_accuracy().map(f64::to_bits)
    );
}

#[test]
fn async_deploy_stress_with_tiny_final_window() {
    // 999-request windows over 7,000 requests: eight windows, the last
    // holding just 7 requests — the pipeline must label, train, and report
    // every window including the degenerate tail.
    let (requests, mut config) = production_config(999, 32, 7_000);
    config.deploy = DeployMode::Async;
    config.threads = 3;
    config.opt_segment = 250;
    let report = run_pipeline(&requests, &config).unwrap();

    assert_eq!(report.windows.len(), 8);
    assert_eq!(report.windows.last().unwrap().requests, 7);
    let served: u64 = report.windows.iter().map(|w| w.live.requests).sum();
    assert_eq!(served, 7_000);
    assert!(report.final_model.is_some());
    assert!(!report.windows[0].had_model);
    for (position, w) in report.windows.iter().enumerate() {
        assert_eq!(w.index, position);
        assert!((0.0..=1.0).contains(&w.opt_bhr.unwrap()));
        assert!((0.0..=1.0).contains(&w.train_accuracy.unwrap()));
        assert!(w.timing.label > std::time::Duration::ZERO);
        assert_eq!(w.timing.deploy_wait, std::time::Duration::ZERO);
    }
}

#[test]
fn stage_timings_cover_every_window() {
    let (requests, config) = production_config(3_000, 33, 9_000);
    let report = run_pipeline(&requests, &config).unwrap();
    assert_eq!(report.windows.len(), 3);
    let total = report.total_timing();
    assert!(total.serve > std::time::Duration::ZERO);
    assert!(total.label > std::time::Duration::ZERO);
    assert!(total.train > std::time::Duration::ZERO);
    // Boundary deploy: the collector blocked (possibly briefly) at each
    // boundary; the wait is recorded, never negative, and bounded by sanity.
    for w in &report.windows {
        assert!(w.timing.deploy_wait >= std::time::Duration::ZERO);
    }
}
