//! Prediction server: trains an LFO model and measures how its prediction
//! throughput scales with worker threads — a miniature of Figure 7,
//! including the paper's 40 Gbit/s feasibility arithmetic.
//!
//! ```sh
//! cargo run --release --example prediction_server
//! ```

use std::sync::Arc;
use std::time::Duration;

use lfo::features::FeatureTracker;
use lfo::labels::build_training_set;
use lfo::serve::{prediction_throughput, PredictionServer};
use lfo::train::train_window;
use lfo_suite::prelude::*;

fn main() {
    // Train a model exactly as the pipeline would.
    let trace = TraceGenerator::new(GeneratorConfig::production(3, 30_000)).generate();
    let stats = TraceStats::from_trace(&trace);
    let cache_size = stats.cache_size_for_fraction(0.10);
    let opt = compute_opt(trace.requests(), &OptConfig::bhr(cache_size)).expect("opt");
    let lfo_config = LfoConfig::default();
    let mut tracker = FeatureTracker::new(lfo_config.num_gaps, lfo_config.cost_model);
    let data = build_training_set(trace.requests(), &opt, &mut tracker, cache_size);
    let trained = train_window(&data, &lfo_config);
    println!(
        "model: {} trees, train accuracy {:.1}%",
        trained.model.trees().len(),
        trained.train_accuracy * 100.0
    );

    // Feature rows to score (reuse the training rows).
    let rows: Vec<Vec<f32>> = (0..data.num_rows().min(4096))
        .map(|r| data.row(r))
        .collect();

    // Thread-scaling sweep.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("\nthreads  predictions/s  implied Gbit/s @32KB objects");
    for threads in [1, 2, 4, 8, 16, 32] {
        if threads > cores * 2 {
            break;
        }
        let r = prediction_throughput(&trained.model, &rows, threads, Duration::from_millis(300));
        println!(
            "{:>7}  {:>13.0}  {:>6.1}",
            threads,
            r.per_second(),
            r.implied_bits_per_second(32 * 1024) / 1e9
        );
    }

    // The channel-fed production-shaped server. Submission is fallible:
    // a full queue can be waited out (bounded), and a dead worker pool is
    // reported instead of wedging the caller.
    let server = PredictionServer::start(Arc::new(trained.model), 4);
    for id in 0..32u64 {
        let batch: Vec<Vec<f32>> = rows.iter().take(256).cloned().collect();
        server
            .submit_timeout(id, batch, Duration::from_secs(5))
            .expect("prediction workers alive");
    }
    let report = server.shutdown();
    println!(
        "\nprediction server: {} predictions over {} batches ({} worker panics)",
        report.served,
        report.results.len(),
        report.panicked_workers
    );
}
