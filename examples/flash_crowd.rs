//! Flash crowd: how quickly does LFO adapt when the traffic mix changes?
//!
//! Models the paper's motivating scenario — "iOS software downloads are
//! large in size with popularity spikes on iOS update days" plus a
//! load-balancer reshuffle that redirects a new user population to the
//! server — and tracks LFO's per-window byte hit ratio as it retrains.
//!
//! ```sh
//! cargo run --release --example flash_crowd
//! ```

use cdn_trace::generator::{FlashCrowd, Reshuffle};
use lfo_suite::prelude::*;

fn main() {
    let mut gen_config = GeneratorConfig::production(99, 120_000);
    // At request 40K: an OS-update flash crowd — 30% of traffic goes to 8
    // fresh, very large download objects for 30K requests.
    gen_config.flash_crowds = vec![FlashCrowd {
        start: 40_000,
        duration: 30_000,
        share: 0.3,
        objects: 8,
        class: 3,
    }];
    // At request 80K: a load balancer reshuffle replaces 40% of the catalog.
    gen_config.reshuffles = vec![Reshuffle {
        at: 80_000,
        fraction: 0.4,
    }];
    let trace = TraceGenerator::new(gen_config).generate();
    let stats = TraceStats::from_trace(&trace);
    let cache_size = stats.cache_size_for_fraction(0.08);

    let config = PipelineConfig {
        window: 10_000,
        cache_size,
        ..Default::default()
    };
    let report = run_pipeline(trace.requests(), &config).expect("pipeline");

    println!("events: flash crowd @40K-70K, reshuffle @80K");
    println!("cache: {:.1} MiB\n", cache_size as f64 / (1024.0 * 1024.0));
    println!("  win   requests   live BHR   OPT BHR   pred.err");
    for w in &report.windows {
        let marker = match w.index {
            4..=6 => " <- flash crowd",
            8 => " <- reshuffle",
            _ => "",
        };
        println!(
            "  {:>3}   {:>8}   {:>7.3}   {:>7.3}   {:>7}{}",
            w.index,
            w.requests,
            w.live.bhr(),
            w.opt_bhr.unwrap_or(f64::NAN),
            w.prediction_error
                .map(|e| format!("{:.3}", e))
                .unwrap_or_else(|| "-".into()),
            marker
        );
    }

    // Adaptation summary: prediction error right after each event vs the
    // window after retraining.
    let err = |i: usize| report.windows[i].prediction_error.unwrap_or(0.0);
    println!("\nprediction error entering the flash crowd: {:.3}", err(4));
    println!("prediction error after one retrain:         {:.3}", err(5));
    println!("prediction error entering the reshuffle:    {:.3}", err(8));
    if report.windows.len() > 9 {
        println!("prediction error after one retrain:         {:.3}", err(9));
    }
}
