//! Policy shootout: every implemented caching policy vs OPT on one trace —
//! a miniature of the paper's Figure 6.
//!
//! ```sh
//! cargo run --release --example policy_shootout
//! ```

use lfo_suite::prelude::*;

use cdn_cache::policies::{by_name, opt_replay::OptReplay, FIGURE6_POLICIES};

fn main() {
    let trace = TraceGenerator::new(GeneratorConfig::production(7, 80_000)).generate();
    let stats = TraceStats::from_trace(&trace);
    let cache_size = stats.cache_size_for_fraction(0.10);
    println!(
        "{} requests, cache {:.1} MiB\n",
        trace.len(),
        cache_size as f64 / (1024.0 * 1024.0)
    );

    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    // Online baselines.
    for name in FIGURE6_POLICIES
        .iter()
        .chain(["LRU", "RND", "GDSF", "TinyLFU", "RLC"].iter())
    {
        let mut policy = by_name(name, cache_size, 1).expect("known policy");
        let r = simulate(policy.as_mut(), trace.requests(), &SimConfig::default());
        if !rows.iter().any(|(n, _, _)| n == r.policy.as_str()) {
            rows.push((r.policy.clone(), r.bhr(), r.ohr()));
        }
    }

    // LFO via the sliding-window pipeline (trained windows only).
    let config = PipelineConfig {
        window: 20_000,
        cache_size,
        ..Default::default()
    };
    let report = run_pipeline(trace.requests(), &config).expect("pipeline");
    rows.push((
        "LFO".into(),
        report.live_trained.bhr(),
        report.live_trained.ohr(),
    ));

    // OPT replay (offline upper reference).
    let opt = compute_opt(trace.requests(), &OptConfig::bhr(cache_size)).expect("opt");
    let mut replay = OptReplay::new(cache_size, opt.admit.clone());
    let r = simulate(&mut replay, trace.requests(), &SimConfig::default());
    rows.push(("OPT".into(), r.bhr(), r.ohr()));

    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("{:<12} {:>8} {:>8}", "policy", "BHR", "OHR");
    for (name, bhr, ohr) in &rows {
        println!("{name:<12} {bhr:>8.3} {ohr:>8.3}");
    }
}
