//! OPT explorer: the paper's Figure 3/4 worked example, end to end.
//!
//! Builds the twelve-request trace of Figure 3 (`a b c b d a c d a b b a`,
//! sizes 3/1/1/2), translates it into the Figure 4 min-cost flow graph,
//! solves it, and prints OPT's admission decision for every request.
//!
//! ```sh
//! cargo run --release --example opt_explorer
//! ```

use cdn_trace::example;
use lfo_suite::prelude::*;
use opt::flow_model::FlowModel;

fn main() {
    let trace = example::figure3_trace();
    let cache_size = example::FIGURE4_CACHE_SIZE;
    println!("Figure 3 trace (cache capacity {cache_size} bytes):");
    println!("  t   object  size");
    for r in &trace {
        println!("  {:>2}   {:>5}  {:>4}", r.time, name(r.object), r.size);
    }

    // The Figure 4 graph.
    let opt_config = OptConfig::bhr(cache_size);
    let model = FlowModel::build(trace.requests(), &opt_config);
    println!(
        "\nFigure 4 flow graph: {} nodes, {} arcs ({} central + {} bypass)",
        model.graph.num_nodes(),
        model.graph.num_arcs(),
        model.graph.num_nodes() - 1,
        model.graph.num_arcs() - (model.graph.num_nodes() - 1),
    );

    let result = compute_opt(trace.requests(), &opt_config).expect("figure 4 solves");
    println!("\nOPT's decisions:");
    println!("  t   object  admit?  hit?   cached bytes");
    for (k, r) in trace.iter().enumerate() {
        println!(
            "  {:>2}   {:>5}  {:>6}  {:>4}   {:>5}",
            k,
            name(r.object),
            if result.admit[k] { "yes" } else { "no" },
            if result.full_hit[k] { "yes" } else { "no" },
            result.cached_bytes[k],
        );
    }
    println!(
        "\nOPT: {} hits, {} hit bytes of {} total (BHR {:.3}, OHR {:.3})",
        result.hits,
        result.hit_bytes,
        result.total_bytes,
        result.bhr(),
        result.ohr()
    );
    println!("flow solver augmentations: {}", result.augmentations);
}

fn name(o: ObjectId) -> &'static str {
    match o {
        x if x == example::A => "a",
        x if x == example::B => "b",
        x if x == example::C => "c",
        _ => "d",
    }
}
