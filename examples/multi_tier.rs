//! Multi-tier CDN server: the paper's §5 hierarchical extension.
//!
//! A CDN edge box serves from RAM, SSD and HDD. Level 1 of the model
//! decides *whether* to cache (standard LFO admission); level 2 decides
//! *where*, by predicting how soon the object will be re-referenced.
//!
//! ```sh
//! cargo run --release --example multi_tier
//! ```

use std::sync::Arc;

use lfo::features::FeatureTracker;
use lfo::hierarchy::{train_placement_model, Placement, TierSpec, TieredLfoCache};
use lfo::labels::build_training_set;
use lfo::train::train_window;
use lfo_suite::prelude::*;

fn main() {
    let trace = TraceGenerator::new(GeneratorConfig::production(21, 60_000)).generate();
    let reqs = trace.requests();
    let total = TraceStats::from_trace(&trace).cache_size_for_fraction(0.12);
    let window = 20_000usize;
    let lfo_config = LfoConfig::default();

    // Level 1: should we cache at all? (imitates OPT, as in the paper)
    let opt = compute_opt(&reqs[..window], &OptConfig::bhr(total)).expect("opt");
    let mut tracker = FeatureTracker::new(lfo_config.num_gaps, lfo_config.cost_model);
    let data = build_training_set(&reqs[..window], &opt, &mut tracker, total);
    let trained = train_window(&data, &lfo_config);
    println!(
        "level-1 admission model: {:.1}% training accuracy",
        trained.train_accuracy * 100.0
    );
    let admission = Arc::new(trained.model);

    // Level 2: where? Predict the re-reference interval.
    let placement = Arc::new(train_placement_model(
        &reqs[..window],
        vec![1_000, 10_000],
        &lfo_config,
    ));
    println!("level-2 placement model: 2 boundary classifiers (re-use <1K, <10K reqs)");

    let specs = TierSpec::standard(total / 20, total / 4, total - total / 20 - total / 4);
    println!(
        "tiers: ram {} MiB (1us), ssd {} MiB (100us), hdd {} MiB (8ms)\n",
        specs[0].capacity >> 20,
        specs[1].capacity >> 20,
        specs[2].capacity >> 20
    );

    for (label, placement) in [
        ("pin to HDD (single tier)", Placement::Pin(2)),
        (
            "size heuristic (<32K ram, <1M ssd)",
            Placement::SizeThresholds(vec![32 * 1024, 1024 * 1024]),
        ),
        (
            "learned re-reference placement",
            Placement::Learned(Arc::clone(&placement)),
        ),
    ] {
        let mut cache = TieredLfoCache::new(specs.clone(), placement, lfo_config.clone());
        cache.install_admission_model(Arc::clone(&admission));
        for r in &reqs[window..] {
            use cdn_cache::CachePolicy;
            cache.handle(r);
        }
        let report = &cache.report;
        println!("{label}:");
        println!(
            "  BHR {:.3} | hits ram/ssd/hdd = {}/{}/{} | mean hit latency {:.0}us | \
             wear-weighted writes {:.1} MB-eq",
            report.bhr(),
            report.hits_per_tier[0],
            report.hits_per_tier[1],
            report.hits_per_tier[2],
            report.mean_hit_latency_us(&specs),
            report.weighted_write_wear(&specs) / 1e6,
        );
    }
}
