//! Quickstart: train LFO on a synthetic CDN trace and compare it to LRU.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lfo_suite::prelude::*;

fn main() {
    // 1. A production-like CDN trace: 60K requests over a four-class
    //    content mix (web / photo / video / software downloads).
    let trace = TraceGenerator::new(GeneratorConfig::production(42, 60_000)).generate();
    let stats = TraceStats::from_trace(&trace);
    println!(
        "trace: {} requests, {} objects, {:.1} MiB footprint, {:.0}% one-hit wonders",
        stats.requests,
        stats.unique_objects,
        stats.unique_bytes as f64 / (1024.0 * 1024.0),
        stats.one_hit_wonder_ratio * 100.0
    );

    // 2. Size the cache at 10% of the trace's unique bytes.
    let cache_size = stats.cache_size_for_fraction(0.10);
    println!("cache: {:.1} MiB", cache_size as f64 / (1024.0 * 1024.0));

    // 3. Run the LFO pipeline: record a window, compute OPT, train, deploy.
    let config = PipelineConfig {
        window: 15_000,
        cache_size,
        ..Default::default()
    };
    let report = run_pipeline(trace.requests(), &config).expect("pipeline runs");

    // 4. Baseline: plain LRU over the same trace.
    let mut lru = cdn_cache::policies::lru::Lru::new(cache_size);
    let lru_result = simulate(&mut lru, trace.requests(), &SimConfig::default());

    println!("\nper-window view (LFO):");
    println!("  win  model?  live BHR   pred.err   OPT BHR");
    for w in &report.windows {
        println!(
            "  {:>3}  {:>6}  {:>7.3}    {:>7}    {:>6.3}",
            w.index,
            if w.had_model { "yes" } else { "no" },
            w.live.bhr(),
            w.prediction_error
                .map(|e| format!("{:.3}", e))
                .unwrap_or_else(|| "-".into()),
            w.opt_bhr.unwrap_or(f64::NAN),
        );
    }

    println!("\noverall byte hit ratios:");
    println!("  LRU                {:.3}", lru_result.bhr());
    println!("  LFO (all windows)  {:.3}", report.live_total.bhr());
    println!("  LFO (trained only) {:.3}", report.live_trained.bhr());
    if let Some(acc) = report.mean_prediction_accuracy() {
        println!("\nLFO agrees with OPT on {:.1}% of decisions", acc * 100.0);
    }
}
