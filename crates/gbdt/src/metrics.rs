//! Classification metrics.
//!
//! The paper evaluates LFO's models via the *prediction error* ("requests
//! where OPT and LFO's prediction disagree", Figure 5) split into false
//! positive and false negative rates as a function of the likelihood cutoff
//! (Figure 5a). These functions compute exactly those quantities.

/// Binary cross-entropy of predicted probabilities against labels.
pub fn log_loss(probs: &[f64], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    if probs.is_empty() {
        return 0.0;
    }
    let eps = 1e-15;
    let sum: f64 = probs
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = p.clamp(eps, 1.0 - eps);
            if y >= 0.5 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    sum / probs.len() as f64
}

/// Fraction of predictions on the wrong side of `cutoff`.
pub fn error_rate(probs: &[f64], labels: &[f32], cutoff: f64) -> f64 {
    assert_eq!(probs.len(), labels.len());
    if probs.is_empty() {
        return 0.0;
    }
    let wrong = probs
        .iter()
        .zip(labels)
        .filter(|(&p, &y)| (p >= cutoff) != (y >= 0.5))
        .count();
    wrong as f64 / probs.len() as f64
}

/// Classification accuracy at `cutoff`.
pub fn accuracy(probs: &[f64], labels: &[f32], cutoff: f64) -> f64 {
    1.0 - error_rate(probs, labels, cutoff)
}

/// The confusion counts at a cutoff.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Positive predicted positive.
    pub true_positives: usize,
    /// Negative predicted positive ("accidentally admitted").
    pub false_positives: usize,
    /// Negative predicted negative.
    pub true_negatives: usize,
    /// Positive predicted negative ("accidentally not admitted").
    pub false_negatives: usize,
}

impl Confusion {
    /// Builds the confusion counts for predictions at `cutoff`.
    pub fn at_cutoff(probs: &[f64], labels: &[f32], cutoff: f64) -> Self {
        assert_eq!(probs.len(), labels.len());
        let mut c = Confusion::default();
        for (&p, &y) in probs.iter().zip(labels) {
            match (p >= cutoff, y >= 0.5) {
                (true, true) => c.true_positives += 1,
                (true, false) => c.false_positives += 1,
                (false, false) => c.true_negatives += 1,
                (false, true) => c.false_negatives += 1,
            }
        }
        c
    }

    /// False positives over all requests (the Figure 5a y-axis is the
    /// error percentage over all predictions, not the per-class rate).
    pub fn false_positive_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.false_positives as f64 / total as f64
        }
    }

    /// False negatives over all requests.
    pub fn false_negative_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.false_negatives as f64 / total as f64
        }
    }

    /// Overall error fraction (FP + FN over all requests).
    pub fn error_fraction(&self) -> f64 {
        self.false_positive_fraction() + self.false_negative_fraction()
    }

    /// Total predictions counted.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_loss_perfect_predictions_near_zero() {
        let l = log_loss(&[1.0, 0.0, 1.0], &[1.0, 0.0, 1.0]);
        assert!(l < 1e-10, "loss {l}");
    }

    #[test]
    fn log_loss_uninformed_is_ln2() {
        let l = log_loss(&[0.5, 0.5], &[1.0, 0.0]);
        assert!((l - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn error_rate_counts_misclassifications() {
        let probs = [0.9, 0.2, 0.7, 0.4];
        let labels = [1.0, 0.0, 0.0, 1.0];
        // At 0.5: predictions 1,0,1,0 → two wrong.
        assert!((error_rate(&probs, &labels, 0.5) - 0.5).abs() < 1e-12);
        assert!((accuracy(&probs, &labels, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn confusion_partitions_everything() {
        let probs = [0.9, 0.2, 0.7, 0.4, 0.6];
        let labels = [1.0, 0.0, 0.0, 1.0, 1.0];
        let c = Confusion::at_cutoff(&probs, &labels, 0.5);
        assert_eq!(c.total(), 5);
        assert_eq!(c.true_positives, 2); // 0.9, 0.6
        assert_eq!(c.false_positives, 1); // 0.7
        assert_eq!(c.false_negatives, 1); // 0.4
        assert_eq!(c.true_negatives, 1); // 0.2
        assert!((c.error_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn raising_cutoff_trades_fp_for_fn() {
        let probs: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let labels: Vec<f32> = (0..100).map(|i| (i >= 50) as u8 as f32).collect();
        let low = Confusion::at_cutoff(&probs, &labels, 0.1);
        let high = Confusion::at_cutoff(&probs, &labels, 0.9);
        assert!(low.false_positives > high.false_positives);
        assert!(low.false_negatives < high.false_negatives);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(log_loss(&[], &[]), 0.0);
        assert_eq!(error_rate(&[], &[], 0.5), 0.0);
        assert_eq!(Confusion::at_cutoff(&[], &[], 0.5).error_fraction(), 0.0);
    }
}
