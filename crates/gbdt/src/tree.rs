//! Decision trees: structure, prediction, and leaf-wise histogram growth.

use serde::{Deserialize, Serialize};

use crate::dataset::BinnedDataset;

/// One node of a [`Tree`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// An internal split: rows with `value[feature] <= threshold` descend
    /// into `left`, others into `right`.
    Split {
        /// Feature index the split tests.
        feature: u32,
        /// Raw-value threshold (upper bound of the split bin).
        threshold: f32,
        /// Index of the left child in the node arena.
        left: u32,
        /// Index of the right child in the node arena.
        right: u32,
        /// Loss reduction achieved by this split (for gain importance).
        gain: f64,
    },
    /// A leaf holding the (already shrunk) output value.
    Leaf {
        /// Additive contribution to the raw score.
        value: f64,
    },
}

/// A regression tree over raw feature values. Node 0 is the root.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// A single-leaf tree with a constant output.
    pub fn constant(value: f64) -> Self {
        Tree {
            nodes: vec![Node::Leaf { value }],
        }
    }

    /// Evaluates the tree on one row of raw feature values.
    ///
    /// Features the tree was trained on but missing from `row` (shorter
    /// slice) take the right branch, matching "missing = large" semantics.
    pub fn predict(&self, row: &[f32]) -> f64 {
        let mut at = 0usize;
        loop {
            match self.nodes[at] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    let go_left = row
                        .get(feature as usize)
                        .map(|&v| v <= threshold)
                        .unwrap_or(false);
                    at = if go_left {
                        left as usize
                    } else {
                        right as usize
                    };
                }
            }
        }
    }

    /// All nodes (for importance computation and tests).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum root-to-leaf depth (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], at: usize) -> usize {
            match nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + rec(nodes, left as usize).max(rec(nodes, right as usize))
                }
            }
        }
        rec(&self.nodes, 0)
    }
}

/// Growth hyperparameters (a subset of [`crate::GbdtParams`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct GrowParams {
    pub num_leaves: usize,
    /// 0 = unlimited.
    pub max_depth: usize,
    pub min_data_in_leaf: usize,
    pub min_sum_hessian: f64,
    pub lambda_l2: f64,
    /// Multiplier applied to leaf outputs (the boosting learning rate).
    pub leaf_scale: f64,
    /// Scoped threads for histogram building and split search; 1 = serial.
    /// Results are bit-identical for any value (per-feature work is
    /// independent and the reduction is performed in feature order).
    pub threads: usize,
}

/// Per-bin gradient statistics.
#[derive(Clone, Copy, Default)]
struct HistBin {
    grad: f64,
    hess: f64,
    count: u32,
}

/// Histograms for one leaf: `[feature][bin]`.
type Histograms = Vec<Vec<HistBin>>;

/// A candidate split for a leaf.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    gain: f64,
    feature: usize,
    /// Rows with `bin <= split_bin` go left.
    split_bin: u8,
    left_grad: f64,
    left_hess: f64,
    left_count: usize,
}

/// A leaf under construction.
struct LeafState {
    /// Range into the shared row-index buffer.
    start: usize,
    end: usize,
    depth: usize,
    sum_grad: f64,
    sum_hess: f64,
    /// Node arena slot this leaf occupies.
    node: usize,
    /// Histograms (kept for the sibling-subtraction trick).
    hist: Option<Histograms>,
    candidate: Option<Candidate>,
}

/// Grows one tree on the binned data restricted to `rows`, using only the
/// features in `features`. `grad`/`hess` are indexed by absolute row id.
pub(crate) fn grow_tree(
    binned: &BinnedDataset,
    grad: &[f64],
    hess: &[f64],
    rows: &mut [u32],
    features: &[usize],
    params: &GrowParams,
) -> Tree {
    let leaf_value = |g: f64, h: f64| -> f64 { params.leaf_scale * (-g / (h + params.lambda_l2)) };

    let root_grad: f64 = rows.iter().map(|&r| grad[r as usize]).sum();
    let root_hess: f64 = rows.iter().map(|&r| hess[r as usize]).sum();

    let mut nodes: Vec<Node> = vec![Node::Leaf {
        value: leaf_value(root_grad, root_hess),
    }];
    let mut leaves: Vec<LeafState> = Vec::with_capacity(params.num_leaves * 2);
    leaves.push(LeafState {
        start: 0,
        end: rows.len(),
        depth: 0,
        sum_grad: root_grad,
        sum_hess: root_hess,
        node: 0,
        hist: None,
        candidate: None,
    });

    // Prepare the root's histograms and candidate.
    build_histograms(
        binned,
        grad,
        hess,
        rows,
        features,
        &mut leaves[0],
        params.threads,
    );
    find_candidate(binned, features, params, &mut leaves[0]);

    let mut num_leaves = 1usize;
    let mut scratch: Vec<u32> = Vec::new();

    while num_leaves < params.num_leaves {
        // Best-gain leaf to split next (leaf-wise growth).
        let Some(best_idx) = leaves
            .iter()
            .enumerate()
            .filter(|(_, l)| l.candidate.is_some())
            .max_by(|a, b| {
                let ga = a.1.candidate.unwrap().gain;
                let gb = b.1.candidate.unwrap().gain;
                ga.partial_cmp(&gb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
        else {
            break; // no splittable leaf remains
        };

        let cand = leaves[best_idx].candidate.take().unwrap();
        let (start, end, depth) = {
            let l = &leaves[best_idx];
            (l.start, l.end, l.depth)
        };

        // Partition rows: bin <= split_bin first (stable, via scratch).
        let bins = binned.bin_column(cand.feature);
        scratch.clear();
        let mut left_fill = start;
        for i in start..end {
            let r = rows[i];
            if bins[r as usize] <= cand.split_bin {
                rows[left_fill] = r;
                left_fill += 1;
            } else {
                scratch.push(r);
            }
        }
        let mid = left_fill;
        rows[mid..end].copy_from_slice(&scratch);
        debug_assert_eq!(mid - start, cand.left_count);

        // Allocate child nodes; replace the leaf node with a split.
        let left_node = nodes.len();
        let right_node = nodes.len() + 1;
        let (lg, lh) = (cand.left_grad, cand.left_hess);
        let parent = &leaves[best_idx];
        let (rg, rh) = (parent.sum_grad - lg, parent.sum_hess - lh);
        nodes.push(Node::Leaf {
            value: leaf_value(lg, lh),
        });
        nodes.push(Node::Leaf {
            value: leaf_value(rg, rh),
        });
        let threshold = binned.upper_bound(cand.feature, cand.split_bin as usize);
        nodes[parent.node] = Node::Split {
            feature: cand.feature as u32,
            threshold,
            left: left_node as u32,
            right: right_node as u32,
            gain: cand.gain,
        };

        // Build children; histogram-subtract for the larger child.
        let parent_hist = leaves[best_idx].hist.take().expect("parent histograms");
        let mut left = LeafState {
            start,
            end: mid,
            depth: depth + 1,
            sum_grad: lg,
            sum_hess: lh,
            node: left_node,
            hist: None,
            candidate: None,
        };
        let mut right = LeafState {
            start: mid,
            end,
            depth: depth + 1,
            sum_grad: rg,
            sum_hess: rh,
            node: right_node,
            hist: None,
            candidate: None,
        };
        let left_smaller = (mid - start) <= (end - mid);
        let (small, big) = if left_smaller {
            (&mut left, &mut right)
        } else {
            (&mut right, &mut left)
        };
        build_histograms(binned, grad, hess, rows, features, small, params.threads);
        big.hist = Some(subtract_histograms(
            parent_hist,
            small.hist.as_ref().expect("small child histograms"),
        ));

        let depth_ok = params.max_depth == 0 || depth + 1 < params.max_depth;
        if depth_ok {
            find_candidate(binned, features, params, &mut left);
            find_candidate(binned, features, params, &mut right);
        }

        // Retire the parent's leaf state, add the children.
        leaves.swap_remove(best_idx);
        leaves.push(left);
        leaves.push(right);
        num_leaves += 1;
    }

    Tree { nodes }
}

/// Accumulates one feature's histogram over the leaf's rows. The bins are
/// filled in row order, so the floating-point sums do not depend on which
/// thread runs the feature.
fn fill_feature_histogram(
    binned: &BinnedDataset,
    grad: &[f64],
    hess: &[f64],
    slice: &[u32],
    feature: usize,
    h: &mut [HistBin],
) {
    let bins = binned.bin_column(feature);
    for &r in slice {
        let b = bins[r as usize] as usize;
        let cell = &mut h[b];
        cell.grad += grad[r as usize];
        cell.hess += hess[r as usize];
        cell.count += 1;
    }
}

/// Deals `items` contiguous work units to `threads` workers, invoking
/// `spawn_run(first_index, count)` once per worker inside the scope.
fn for_each_shard(items: usize, threads: usize, mut next_shard: impl FnMut(usize, usize)) {
    let base = items / threads;
    let extra = items % threads;
    let mut start = 0usize;
    for worker in 0..threads {
        let count = base + usize::from(worker < extra);
        next_shard(start, count);
        start += count;
    }
}

fn build_histograms(
    binned: &BinnedDataset,
    grad: &[f64],
    hess: &[f64],
    rows: &[u32],
    features: &[usize],
    leaf: &mut LeafState,
    threads: usize,
) {
    let slice = &rows[leaf.start..leaf.end];
    let mut hist: Histograms = features
        .iter()
        .map(|&f| vec![HistBin::default(); binned.num_bins(f)])
        .collect();
    let threads = threads.clamp(1, features.len().max(1));
    if threads == 1 {
        for (fi, &f) in features.iter().enumerate() {
            fill_feature_histogram(binned, grad, hess, slice, f, &mut hist[fi]);
        }
    } else {
        std::thread::scope(|scope| {
            let mut hist_rest = hist.as_mut_slice();
            let mut feat_rest = features;
            for_each_shard(features.len(), threads, |_, count| {
                // `mem::take` moves the full-lifetime slice out of the
                // closure capture so the split halves live for the scope.
                let (h_head, h_tail) = std::mem::take(&mut hist_rest).split_at_mut(count);
                let (f_head, f_tail) = feat_rest.split_at(count);
                hist_rest = h_tail;
                feat_rest = f_tail;
                scope.spawn(move || {
                    for (h, &f) in h_head.iter_mut().zip(f_head) {
                        fill_feature_histogram(binned, grad, hess, slice, f, h);
                    }
                });
            });
        });
    }
    leaf.hist = Some(hist);
}

fn subtract_histograms(mut parent: Histograms, small: &Histograms) -> Histograms {
    for (pf, sf) in parent.iter_mut().zip(small) {
        for (pb, sb) in pf.iter_mut().zip(sf) {
            pb.grad -= sb.grad;
            pb.hess -= sb.hess;
            pb.count -= sb.count;
        }
    }
    parent
}

/// Scans one feature's histogram for its best split. The local best uses the
/// same strict-improvement rule (`gain > previous`, seeded at `1e-12`) the
/// original single-pass scan used, so the earliest bin attaining a feature's
/// maximum gain wins, exactly as before.
fn feature_candidate(
    binned: &BinnedDataset,
    feature: usize,
    h: &[HistBin],
    total: usize,
    sum_grad: f64,
    sum_hess: f64,
    params: &GrowParams,
) -> Option<Candidate> {
    let nbins = binned.num_bins(feature);
    if nbins < 2 {
        return None;
    }
    let score = |g: f64, h: f64| g * g / (h + params.lambda_l2);
    let parent_score = score(sum_grad, sum_hess);
    let mut best: Option<Candidate> = None;
    let mut gl = 0.0f64;
    let mut hl = 0.0f64;
    let mut cl = 0usize;
    // Split after bin b: left = bins 0..=b. The last bin cannot be a
    // split point (right side would be empty).
    for (b, bin) in h.iter().enumerate().take(nbins - 1) {
        gl += bin.grad;
        hl += bin.hess;
        cl += bin.count as usize;
        if cl < params.min_data_in_leaf {
            continue;
        }
        let cr = total - cl;
        if cr < params.min_data_in_leaf {
            break;
        }
        let (gr, hr) = (sum_grad - gl, sum_hess - hl);
        if hl < params.min_sum_hessian || hr < params.min_sum_hessian {
            continue;
        }
        let gain = 0.5 * (score(gl, hl) + score(gr, hr) - parent_score);
        if gain > best.map(|c| c.gain).unwrap_or(1e-12) {
            best = Some(Candidate {
                gain,
                feature,
                split_bin: b as u8,
                left_grad: gl,
                left_hess: hl,
                left_count: cl,
            });
        }
    }
    best
}

fn find_candidate(
    binned: &BinnedDataset,
    features: &[usize],
    params: &GrowParams,
    leaf: &mut LeafState,
) {
    let total = leaf.end - leaf.start;
    if total < 2 * params.min_data_in_leaf {
        leaf.candidate = None;
        return;
    }
    let hist = leaf.hist.as_ref().expect("histograms built");

    let threads = params.threads.clamp(1, features.len().max(1));
    let locals: Vec<Option<Candidate>> = if threads == 1 {
        features
            .iter()
            .enumerate()
            .map(|(fi, &f)| {
                feature_candidate(
                    binned,
                    f,
                    &hist[fi],
                    total,
                    leaf.sum_grad,
                    leaf.sum_hess,
                    params,
                )
            })
            .collect()
    } else {
        let mut locals = vec![None; features.len()];
        std::thread::scope(|scope| {
            let mut locals_rest = locals.as_mut_slice();
            let mut feat_rest = features;
            let mut hist_rest = hist.as_slice();
            let (sum_grad, sum_hess) = (leaf.sum_grad, leaf.sum_hess);
            for_each_shard(features.len(), threads, |_, count| {
                let (l_head, l_tail) = std::mem::take(&mut locals_rest).split_at_mut(count);
                let (f_head, f_tail) = feat_rest.split_at(count);
                let (h_head, h_tail) = hist_rest.split_at(count);
                locals_rest = l_tail;
                feat_rest = f_tail;
                hist_rest = h_tail;
                scope.spawn(move || {
                    for ((slot, &f), h) in l_head.iter_mut().zip(f_head).zip(h_head) {
                        *slot = feature_candidate(binned, f, h, total, sum_grad, sum_hess, params);
                    }
                });
            });
        });
        locals
    };

    // Reduce in feature order with strict improvement, so ties keep the
    // earliest feature — identical to the serial running-best scan.
    let mut best: Option<Candidate> = None;
    for cand in locals.into_iter().flatten() {
        if best.map(|b| cand.gain > b.gain).unwrap_or(true) {
            best = Some(cand);
        }
    }
    leaf.candidate = best;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn grow_simple(rows: Vec<Vec<f32>>, labels: Vec<f32>, params: GrowParams) -> Tree {
        let n = rows.len();
        let d = Dataset::from_rows(rows, labels.clone()).unwrap();
        let binned = BinnedDataset::build(&d, 255);
        // Squared-loss gradients around a 0 prediction: grad = -y, hess = 1.
        let grad: Vec<f64> = labels.iter().map(|&y| -(y as f64)).collect();
        let hess = vec![1.0f64; n];
        let mut row_idx: Vec<u32> = (0..n as u32).collect();
        let features: Vec<usize> = (0..d.num_features()).collect();
        grow_tree(&binned, &grad, &hess, &mut row_idx, &features, &params)
    }

    fn default_params() -> GrowParams {
        GrowParams {
            num_leaves: 31,
            max_depth: 0,
            min_data_in_leaf: 1,
            min_sum_hessian: 1e-3,
            lambda_l2: 0.0,
            leaf_scale: 1.0,
            threads: 1,
        }
    }

    #[test]
    fn constant_tree_predicts_constant() {
        let t = Tree::constant(0.42);
        assert_eq!(t.predict(&[1.0, 2.0]), 0.42);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn learns_a_perfect_single_split() {
        // y = 1 iff x > 5; squared loss; one split suffices.
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let labels: Vec<f32> = (0..20).map(|i| (i > 5) as u8 as f32).collect();
        let t = grow_simple(rows, labels, default_params());
        for i in 0..20 {
            let p = t.predict(&[i as f32]);
            let want = (i > 5) as u8 as f64;
            assert!((p - want).abs() < 1e-9, "x={i}: predict {p}, want {want}");
        }
    }

    #[test]
    fn learns_xor_with_two_features() {
        // XOR needs depth 2 — a single-feature split cannot express it.
        // A *perfectly balanced* XOR sample gives every first split zero
        // gain, which stalls any greedy tree (LightGBM included), so the
        // corners are duplicated with slight imbalance.
        let corners: [((f32, f32), f32, usize); 4] = [
            ((0.0, 0.0), 0.0, 12),
            ((0.0, 1.0), 1.0, 10),
            ((1.0, 0.0), 1.0, 10),
            ((1.0, 1.0), 0.0, 8),
        ];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for &((x, y), label, count) in &corners {
            for _ in 0..count {
                rows.push(vec![x, y]);
                labels.push(label);
            }
        }
        let t = grow_simple(rows, labels, default_params());
        assert!((t.predict(&[0.0, 0.0]) - 0.0).abs() < 1e-6);
        assert!((t.predict(&[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!((t.predict(&[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((t.predict(&[1.0, 1.0]) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn respects_num_leaves() {
        let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let labels: Vec<f32> = (0..100).map(|i| (i % 2) as f32).collect();
        let mut p = default_params();
        p.num_leaves = 4;
        let t = grow_simple(rows, labels, p);
        assert!(t.num_leaves() <= 4);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f32>> = (0..128).map(|i| vec![i as f32]).collect();
        let labels: Vec<f32> = (0..128).map(|i| ((i / 2) % 2) as f32).collect();
        let mut p = default_params();
        p.max_depth = 3;
        p.num_leaves = 64;
        let t = grow_simple(rows, labels, p);
        assert!(t.depth() <= 3, "depth = {}", t.depth());
    }

    #[test]
    fn respects_min_data_in_leaf() {
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32]).collect();
        let labels: Vec<f32> = (0..40).map(|i| (i == 0) as u8 as f32).collect();
        let mut p = default_params();
        p.min_data_in_leaf = 10;
        let t = grow_simple(rows, labels, p);
        // No leaf may isolate the single positive row.
        fn leaf_counts(t: &Tree, rows: &[Vec<f32>]) -> Vec<usize> {
            let mut counts = std::collections::HashMap::new();
            for r in rows {
                // Identify the leaf by its predicted value bits.
                let v = t.predict(r).to_bits();
                *counts.entry(v).or_insert(0usize) += 1;
            }
            counts.into_values().collect()
        }
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32]).collect();
        for c in leaf_counts(&t, &rows) {
            assert!(c >= 10, "leaf with {c} rows");
        }
    }

    #[test]
    fn leaf_scale_shrinks_outputs() {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let labels: Vec<f32> = (0..20).map(|i| (i > 9) as u8 as f32).collect();
        let mut p = default_params();
        p.leaf_scale = 0.1;
        let t = grow_simple(rows, labels, p);
        assert!((t.predict(&[15.0]) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn lambda_l2_regularizes_leaf_values() {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let labels: Vec<f32> = (0..20).map(|i| (i > 9) as u8 as f32).collect();
        let mut p = default_params();
        p.lambda_l2 = 10.0;
        let t = grow_simple(rows, labels, p);
        // Leaf of 10 positive rows: value = 10 / (10 + 10) = 0.5.
        assert!((t.predict(&[15.0]) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn short_row_takes_right_branch() {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let labels: Vec<f32> = (0..20).map(|i| (i > 5) as u8 as f32).collect();
        let t = grow_simple(rows, labels, default_params());
        // Missing feature value behaves like +infinity.
        assert_eq!(t.predict(&[]), t.predict(&[1e30]));
    }

    #[test]
    fn pure_leaf_is_not_split() {
        // All labels identical → no gain anywhere → single leaf.
        let rows: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
        let labels = vec![1.0f32; 50];
        let t = grow_simple(rows, labels, default_params());
        assert_eq!(t.num_leaves(), 1);
        assert!((t.predict(&[25.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threaded_growth_matches_serial_bit_for_bit() {
        // A noisy two-feature problem so many splits compete closely.
        let rows: Vec<Vec<f32>> = (0..500)
            .map(|i| vec![(i % 83) as f32, ((i * 7) % 59) as f32, (i % 11) as f32])
            .collect();
        let labels: Vec<f32> = (0..500)
            .map(|i| ((i % 83 > 40) ^ ((i * 7) % 59 > 29)) as u8 as f32)
            .collect();
        let serial = grow_simple(rows.clone(), labels.clone(), default_params());
        for threads in [2, 3, 16] {
            let mut p = default_params();
            p.threads = threads;
            let par = grow_simple(rows.clone(), labels.clone(), p);
            assert_eq!(serial.nodes().len(), par.nodes().len(), "threads={threads}");
            for r in &rows {
                assert_eq!(
                    serial.predict(r).to_bits(),
                    par.predict(r).to_bits(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let labels: Vec<f32> = (0..20).map(|i| (i > 5) as u8 as f32).collect();
        let t = grow_simple(rows, labels, default_params());
        let json = serde_json::to_string(&t).unwrap();
        let back: Tree = serde_json::from_str(&json).unwrap();
        for i in 0..20 {
            assert_eq!(t.predict(&[i as f32]), back.predict(&[i as f32]));
        }
    }
}
