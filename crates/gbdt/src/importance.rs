//! Feature importance.
//!
//! Figure 8 of the paper measures "how often each feature occurs in a
//! split" and reports the percentage of tree branches per feature — that is
//! split-count importance. Gain importance (total loss reduction) is also
//! provided as the standard alternative.

use crate::boosting::Model;
use crate::tree::Node;

/// Which importance statistic to compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImportanceKind {
    /// Number of splits using each feature (the paper's Figure 8 metric).
    SplitCount,
    /// Total gain contributed by splits on each feature.
    Gain,
}

/// Per-feature importance scores.
#[derive(Clone, Debug)]
pub struct FeatureImportance {
    scores: Vec<f64>,
    kind: ImportanceKind,
}

impl FeatureImportance {
    /// Computes importance over all trees of a model.
    pub fn of_model(model: &Model, kind: ImportanceKind) -> Self {
        let mut scores = vec![0.0f64; model.num_features()];
        for tree in model.trees() {
            for node in tree.nodes() {
                if let Node::Split { feature, gain, .. } = node {
                    let f = *feature as usize;
                    if f >= scores.len() {
                        continue;
                    }
                    match kind {
                        ImportanceKind::SplitCount => scores[f] += 1.0,
                        ImportanceKind::Gain => scores[f] += gain,
                    }
                }
            }
        }
        FeatureImportance { scores, kind }
    }

    /// Raw scores per feature.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Which statistic these scores are.
    pub fn kind(&self) -> ImportanceKind {
        self.kind
    }

    /// Scores normalized to fractions summing to 1 (the Figure 8 x-axis is
    /// "occurrence in tree branches [%]").
    pub fn fractions(&self) -> Vec<f64> {
        let total: f64 = self.scores.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.scores.len()];
        }
        self.scores.iter().map(|s| s / total).collect()
    }

    /// Feature indices sorted by descending importance.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boosting::{train, GbdtParams};
    use crate::dataset::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Feature 0 decides the label; features 1 and 2 are noise.
    fn informative_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..2000 {
            let x0: f32 = rng.gen();
            let x1: f32 = rng.gen();
            let x2: f32 = rng.gen();
            rows.push(vec![x0, x1, x2]);
            labels.push((x0 > 0.5) as u8 as f32);
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    #[test]
    fn informative_feature_dominates_split_counts() {
        let model = train(&informative_dataset(), &GbdtParams::lfo_paper());
        let imp = FeatureImportance::of_model(&model, ImportanceKind::SplitCount);
        let fr = imp.fractions();
        assert!(fr[0] > 0.6, "feature 0 fraction {:?}", fr);
        assert_eq!(imp.ranking()[0], 0);
    }

    #[test]
    fn gain_importance_agrees_on_the_winner() {
        let model = train(&informative_dataset(), &GbdtParams::lfo_paper());
        let imp = FeatureImportance::of_model(&model, ImportanceKind::Gain);
        assert_eq!(imp.ranking()[0], 0);
        assert!(imp.fractions()[0] > 0.8);
    }

    #[test]
    fn fractions_sum_to_one() {
        let model = train(&informative_dataset(), &GbdtParams::lfo_paper());
        let imp = FeatureImportance::of_model(&model, ImportanceKind::SplitCount);
        let sum: f64 = imp.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stump_free_model_has_zero_importance() {
        // Constant labels → no splits at all.
        let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let data = Dataset::from_rows(rows, vec![1.0; 100]).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let imp = FeatureImportance::of_model(&model, ImportanceKind::SplitCount);
        assert_eq!(imp.scores(), &[0.0]);
        assert_eq!(imp.fractions(), vec![0.0]);
    }
}
