//! Column-major datasets and quantile feature binning.
//!
//! Histogram GBDT never looks at raw feature values during training; it
//! works on small integer *bin indices*. Binning is the standard quantile
//! scheme: up to `max_bins` bins per feature, with bin boundaries placed at
//! value quantiles so every bin holds roughly the same number of rows.
//!
//! The boundary computation and its application are split: a [`BinMap`]
//! holds the per-feature boundaries (fit once, serializable), and
//! [`BinnedDataset::from_map`] quantizes any dataset against those frozen
//! edges — the basis of incremental window-over-window retraining, where
//! re-deriving quantiles every window is wasted work.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Errors from dataset construction.
#[derive(Debug, PartialEq, Eq)]
pub enum DatasetError {
    /// Rows have inconsistent feature counts.
    RaggedRows {
        /// Expected width (from the first row).
        expected: usize,
        /// Offending row index.
        row: usize,
        /// Its width.
        got: usize,
    },
    /// Labels and rows differ in length.
    LabelMismatch {
        /// Number of rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A feature value is NaN or infinite.
    NonFiniteValue {
        /// Row index.
        row: usize,
        /// Feature index.
        feature: usize,
    },
    /// The dataset has no rows.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::RaggedRows { expected, row, got } => {
                write!(f, "row {row} has {got} features, expected {expected}")
            }
            DatasetError::LabelMismatch { rows, labels } => {
                write!(f, "{rows} rows but {labels} labels")
            }
            DatasetError::NonFiniteValue { row, feature } => {
                write!(f, "non-finite value at row {row}, feature {feature}")
            }
            DatasetError::Empty => write!(f, "dataset has no rows"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A column-major training dataset: features plus binary labels (0 or 1;
/// fractional labels are accepted and treated as probabilities).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// `columns[f][r]` = value of feature `f` at row `r`.
    columns: Vec<Vec<f32>>,
    labels: Vec<f32>,
    num_rows: usize,
}

impl Dataset {
    /// Builds a dataset from row-major data.
    pub fn from_rows(rows: Vec<Vec<f32>>, labels: Vec<f32>) -> Result<Self, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        if rows.len() != labels.len() {
            return Err(DatasetError::LabelMismatch {
                rows: rows.len(),
                labels: labels.len(),
            });
        }
        let width = rows[0].len();
        let mut columns = vec![Vec::with_capacity(rows.len()); width];
        for (r, row) in rows.iter().enumerate() {
            if row.len() != width {
                return Err(DatasetError::RaggedRows {
                    expected: width,
                    row: r,
                    got: row.len(),
                });
            }
            for (f, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(DatasetError::NonFiniteValue { row: r, feature: f });
                }
                columns[f].push(v);
            }
        }
        let num_rows = rows.len();
        Ok(Dataset {
            columns,
            labels,
            num_rows,
        })
    }

    /// Builds a dataset from column-major data (no copies beyond moves).
    pub fn from_columns(columns: Vec<Vec<f32>>, labels: Vec<f32>) -> Result<Self, DatasetError> {
        let num_rows = labels.len();
        if num_rows == 0 {
            return Err(DatasetError::Empty);
        }
        for (f, col) in columns.iter().enumerate() {
            if col.len() != num_rows {
                return Err(DatasetError::LabelMismatch {
                    rows: col.len(),
                    labels: num_rows,
                });
            }
            if let Some(r) = col.iter().position(|v| !v.is_finite()) {
                return Err(DatasetError::NonFiniteValue { row: r, feature: f });
            }
        }
        Ok(Dataset {
            columns,
            labels,
            num_rows,
        })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.columns.len()
    }

    /// Label of row `r`.
    pub fn label(&self, r: usize) -> f32 {
        self.labels[r]
    }

    /// All labels.
    pub fn labels(&self) -> &[f32] {
        &self.labels
    }

    /// Value of feature `f` at row `r`.
    pub fn value(&self, f: usize, r: usize) -> f32 {
        self.columns[f][r]
    }

    /// The raw column of feature `f`.
    pub fn column(&self, f: usize) -> &[f32] {
        &self.columns[f]
    }

    /// Materializes row `r` (for prediction-path tests).
    pub fn row(&self, r: usize) -> Vec<f32> {
        self.columns.iter().map(|c| c[r]).collect()
    }
}

/// A dataset reduced to per-feature bin indices, plus the bin upper bounds
/// needed to translate bin splits back into raw-value thresholds.
#[derive(Clone, Debug)]
pub struct BinnedDataset {
    /// `bins[f][r]` = bin index of feature `f` at row `r`.
    bins: Vec<Vec<u8>>,
    /// `upper_bounds[f][b]` = largest raw value mapped to bin `b`.
    /// The last bin's bound is `f32::INFINITY`.
    upper_bounds: Vec<Vec<f32>>,
    num_rows: usize,
}

/// Hard cap on bins per feature (bin indices are stored in a `u8`).
pub const MAX_BINS: usize = 255;

/// Frozen per-feature bin boundaries: the quantile edges of one dataset,
/// reusable to quantize later datasets against the *same* grid.
///
/// Fitting quantiles is the expensive half of binning (sort + dedup per
/// column); applying a map is a binary search per value. Incremental
/// retraining fits the map once per full rebuild and reuses it for every
/// delta window, and the map travels inside persisted artifacts so a warm
/// restart resumes on the same grid.
#[derive(Clone, Debug, PartialEq)]
pub struct BinMap {
    /// `upper_bounds[f][b]` = largest raw value mapped to bin `b` of
    /// feature `f`; the last bound is always `f32::INFINITY`.
    upper_bounds: Vec<Vec<f32>>,
}

impl BinMap {
    /// Fits quantile bin boundaries to a dataset, at most `max_bins` bins
    /// per feature.
    ///
    /// # Panics
    ///
    /// Panics if `max_bins` is 0 or exceeds [`MAX_BINS`].
    pub fn fit(dataset: &Dataset, max_bins: usize) -> Self {
        assert!(
            (1..=MAX_BINS).contains(&max_bins),
            "max_bins must be within 1..=255"
        );
        let upper_bounds = (0..dataset.num_features())
            .map(|f| fit_column(dataset.column(f), max_bins))
            .collect();
        BinMap { upper_bounds }
    }

    /// Number of features the map was fit on.
    pub fn num_features(&self) -> usize {
        self.upper_bounds.len()
    }

    /// Number of bins for feature `f`.
    pub fn num_bins(&self, f: usize) -> usize {
        self.upper_bounds[f].len()
    }

    /// Raw-value upper bound of bin `b` of feature `f`.
    pub fn upper_bound(&self, f: usize, b: usize) -> f32 {
        self.upper_bounds[f][b]
    }

    /// All upper bounds of feature `f`, sorted ascending with the trailing
    /// `f32::INFINITY` sentinel. Crate-visible for the quantized compiler,
    /// which snaps split thresholds onto this grid.
    pub(crate) fn bounds(&self, f: usize) -> &[f32] {
        &self.upper_bounds[f]
    }

    /// Bin index of value `v` under feature `f`'s boundaries: the first
    /// bin whose upper bound is `>= v` (values beyond the fitted range
    /// land in the top bin, whose bound is infinite).
    #[inline]
    pub fn bin(&self, f: usize, v: f32) -> u8 {
        let ub = &self.upper_bounds[f];
        ub.partition_point(|&u| u < v).min(ub.len() - 1) as u8
    }

    /// FNV-1a fingerprint over the exact boundary bit patterns — recorded
    /// in artifact lineage so two models claiming the same frozen grid can
    /// be checked against each other.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(&(self.upper_bounds.len() as u64).to_le_bytes());
        for ub in &self.upper_bounds {
            eat(&(ub.len() as u64).to_le_bytes());
            for &v in ub {
                eat(&v.to_bits().to_le_bytes());
            }
        }
        h
    }
}

// Manual serde impls: the vendored serde_json writes non-finite floats as
// `null`, so the trailing `f32::INFINITY` sentinel is stripped on write
// (only the finite bounds are stored) and re-appended on read.
impl Serialize for BinMap {
    fn to_value(&self) -> Value {
        let finite: Vec<Vec<f32>> = self
            .upper_bounds
            .iter()
            .map(|ub| ub[..ub.len() - 1].to_vec())
            .collect();
        Value::Map(vec![("finite_bounds".to_string(), finite.to_value())])
    }
}

impl Deserialize for BinMap {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let finite: Vec<Vec<f32>> = Deserialize::from_value(
            v.get("finite_bounds")
                .ok_or_else(|| DeError::msg("missing field `finite_bounds` in BinMap"))?,
        )?;
        let upper_bounds = finite
            .into_iter()
            .map(|mut ub| {
                ub.push(f32::INFINITY);
                ub
            })
            .collect();
        Ok(BinMap { upper_bounds })
    }
}

impl BinnedDataset {
    /// Bins a dataset into at most `max_bins` quantile bins per feature,
    /// fitting fresh boundaries. Equivalent to
    /// `BinnedDataset::from_map(dataset, &BinMap::fit(dataset, max_bins))`.
    ///
    /// # Panics
    ///
    /// Panics if `max_bins` is 0 or exceeds [`MAX_BINS`].
    pub fn build(dataset: &Dataset, max_bins: usize) -> Self {
        Self::from_map(dataset, &BinMap::fit(dataset, max_bins))
    }

    /// Quantizes a dataset against a frozen [`BinMap`] — no quantile
    /// computation, just a binary search per value.
    ///
    /// # Panics
    ///
    /// Panics if the map's feature count differs from the dataset's.
    pub fn from_map(dataset: &Dataset, map: &BinMap) -> Self {
        assert_eq!(
            map.num_features(),
            dataset.num_features(),
            "bin map fit on a different feature count"
        );
        let bins = (0..dataset.num_features())
            .map(|f| {
                dataset
                    .column(f)
                    .iter()
                    .map(|&v| map.bin(f, v))
                    .collect::<Vec<u8>>()
            })
            .collect();
        BinnedDataset {
            bins,
            upper_bounds: map.upper_bounds.clone(),
            num_rows: dataset.num_rows(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.bins.len()
    }

    /// Bin index of feature `f` at row `r`.
    #[inline]
    pub fn bin(&self, f: usize, r: usize) -> u8 {
        self.bins[f][r]
    }

    /// The bin column for feature `f`.
    #[inline]
    pub fn bin_column(&self, f: usize) -> &[u8] {
        &self.bins[f]
    }

    /// Number of distinct bins for feature `f`.
    pub fn num_bins(&self, f: usize) -> usize {
        self.upper_bounds[f].len()
    }

    /// Raw-value upper bound of bin `b` of feature `f`: rows with
    /// `value <= bound` fall into bins `0..=b`.
    pub fn upper_bound(&self, f: usize, b: usize) -> f32 {
        self.upper_bounds[f][b]
    }
}

/// Fits quantile boundaries for one column (the expensive half of binning).
fn fit_column(column: &[f32], max_bins: usize) -> Vec<f32> {
    let mut sorted: Vec<f32> = column.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    sorted.dedup();

    // Choose bin boundaries: if few distinct values, one bin per value;
    // otherwise place boundaries at quantiles of the distinct values.
    let bounds: Vec<f32> = if sorted.len() <= max_bins {
        sorted
    } else {
        let mut b = Vec::with_capacity(max_bins);
        for i in 0..max_bins {
            // Upper bound of bin i: distinct value at the (i+1)/max_bins
            // quantile position.
            let idx = ((i + 1) * sorted.len()) / max_bins - 1;
            b.push(sorted[idx]);
        }
        b.dedup();
        b
    };
    // The top bin must catch everything.
    let mut upper_bounds = bounds;
    if let Some(last) = upper_bounds.last_mut() {
        *last = f32::INFINITY;
    }
    upper_bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrips() {
        let d = Dataset::from_rows(
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![0.0, 1.0, 0.0],
        )
        .unwrap();
        assert_eq!(d.num_rows(), 3);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.value(0, 1), 3.0);
        assert_eq!(d.value(1, 2), 6.0);
        assert_eq!(d.row(1), vec![3.0, 4.0]);
        assert_eq!(d.label(1), 1.0);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 1.0]).unwrap_err();
        assert_eq!(
            err,
            DatasetError::RaggedRows {
                expected: 1,
                row: 1,
                got: 2
            }
        );
    }

    #[test]
    fn rejects_label_mismatch_and_empty() {
        assert!(matches!(
            Dataset::from_rows(vec![vec![1.0]], vec![]),
            Err(DatasetError::LabelMismatch { .. })
        ));
        assert_eq!(
            Dataset::from_rows(vec![], vec![]).unwrap_err(),
            DatasetError::Empty
        );
    }

    #[test]
    fn rejects_nan() {
        let err = Dataset::from_rows(vec![vec![1.0], vec![f32::NAN]], vec![0.0, 1.0]).unwrap_err();
        assert_eq!(err, DatasetError::NonFiniteValue { row: 1, feature: 0 });
    }

    #[test]
    fn binning_few_distinct_values_gets_one_bin_each() {
        let d =
            Dataset::from_columns(vec![vec![1.0, 2.0, 1.0, 3.0, 2.0, 1.0]], vec![0.0; 6]).unwrap();
        let b = BinnedDataset::build(&d, 255);
        assert_eq!(b.num_bins(0), 3);
        assert_eq!(b.bin(0, 0), 0); // value 1.0
        assert_eq!(b.bin(0, 1), 1); // value 2.0
        assert_eq!(b.bin(0, 3), 2); // value 3.0
        assert_eq!(b.upper_bound(0, 0), 1.0);
        assert_eq!(b.upper_bound(0, 1), 2.0);
        assert!(b.upper_bound(0, 2).is_infinite());
    }

    #[test]
    fn binning_many_values_respects_max_bins() {
        let col: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let d = Dataset::from_columns(vec![col], vec![0.0; 1000]).unwrap();
        let b = BinnedDataset::build(&d, 16);
        assert!(b.num_bins(0) <= 16);
        // Bins are monotone in the raw value.
        for r in 1..1000 {
            assert!(b.bin(0, r) >= b.bin(0, r - 1));
        }
        // Roughly equal occupancy (quantile binning).
        let mut counts = vec![0usize; b.num_bins(0)];
        for r in 0..1000 {
            counts[b.bin(0, r) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 70, "unbalanced bins: {counts:?}");
    }

    #[test]
    fn binning_constant_column_is_single_bin() {
        let d = Dataset::from_columns(vec![vec![7.0; 10]], vec![0.0; 10]).unwrap();
        let b = BinnedDataset::build(&d, 255);
        assert_eq!(b.num_bins(0), 1);
        assert!(b.bin_column(0).iter().all(|&x| x == 0));
    }

    #[test]
    fn build_equals_from_map_of_fit() {
        let cols: Vec<Vec<f32>> = (0..4)
            .map(|f| {
                (0..600)
                    .map(|r| ((r * 37 + f * 101) % 251) as f32 * 1.5)
                    .collect()
            })
            .collect();
        let d = Dataset::from_columns(cols, vec![0.0; 600]).unwrap();
        let built = BinnedDataset::build(&d, 32);
        let map = BinMap::fit(&d, 32);
        let mapped = BinnedDataset::from_map(&d, &map);
        for f in 0..d.num_features() {
            assert_eq!(built.bin_column(f), mapped.bin_column(f));
            assert_eq!(built.num_bins(f), map.num_bins(f));
            for b in 0..built.num_bins(f) {
                assert_eq!(
                    built.upper_bound(f, b).to_bits(),
                    map.upper_bound(f, b).to_bits()
                );
            }
        }
    }

    #[test]
    fn frozen_map_quantizes_unseen_values_into_the_grid() {
        let d = Dataset::from_columns(vec![vec![10.0, 20.0, 30.0]], vec![0.0; 3]).unwrap();
        let map = BinMap::fit(&d, 255);
        // Values between / beyond the fitted edges still land in a bin.
        assert_eq!(map.bin(0, -5.0), 0);
        assert_eq!(map.bin(0, 15.0), 1);
        assert_eq!(map.bin(0, 1e9), 2);
        let later = Dataset::from_columns(vec![vec![0.0, 12.0, 25.0, 99.0]], vec![0.0; 4]).unwrap();
        let binned = BinnedDataset::from_map(&later, &map);
        assert_eq!(binned.bin_column(0), &[0, 1, 2, 2]);
    }

    #[test]
    fn bin_map_serde_roundtrip_preserves_infinite_sentinel() {
        let cols: Vec<Vec<f32>> = vec![
            (0..400).map(|r| (r % 97) as f32 * 0.25).collect(),
            vec![7.0; 400], // constant column: single bin, bound = +inf
        ];
        let d = Dataset::from_columns(cols, vec![0.0; 400]).unwrap();
        let map = BinMap::fit(&d, 16);
        let json = serde_json::to_string(&map).unwrap();
        assert!(!json.contains("null"), "non-finite bound leaked: {json}");
        let back: BinMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, map);
        assert_eq!(back.fingerprint(), map.fingerprint());
        for f in 0..map.num_features() {
            assert!(back.upper_bound(f, back.num_bins(f) - 1).is_infinite());
        }
    }

    #[test]
    fn fingerprint_separates_different_grids() {
        let a = BinMap::fit(
            &Dataset::from_columns(vec![vec![1.0, 2.0, 3.0]], vec![0.0; 3]).unwrap(),
            255,
        );
        // The top bound always becomes +inf, so the grids must differ in
        // an interior boundary to be distinguishable.
        let b = BinMap::fit(
            &Dataset::from_columns(vec![vec![1.0, 2.5, 3.0]], vec![0.0; 3]).unwrap(),
            255,
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn from_map_rejects_feature_count_mismatch() {
        let d1 = Dataset::from_columns(vec![vec![1.0, 2.0]], vec![0.0; 2]).unwrap();
        let d2 = Dataset::from_columns(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![0.0; 2]).unwrap();
        let map = BinMap::fit(&d1, 255);
        let err = std::panic::catch_unwind(|| BinnedDataset::from_map(&d2, &map));
        assert!(err.is_err());
    }

    #[test]
    fn binning_skewed_column_keeps_resolution_in_the_body() {
        // 990 small values, 10 huge ones: quantile binning must not waste
        // all bins on the tail.
        let mut col: Vec<f32> = (0..990).map(|i| (i % 100) as f32).collect();
        col.extend((0..10).map(|i| 1e9 + i as f32));
        let d = Dataset::from_columns(vec![col], vec![0.0; 1000]).unwrap();
        let b = BinnedDataset::build(&d, 32);
        // The small values must span many bins.
        let small_bins: std::collections::HashSet<u8> = (0..990).map(|r| b.bin(0, r)).collect();
        assert!(small_bins.len() >= 16, "only {} bins", small_bins.len());
    }
}
