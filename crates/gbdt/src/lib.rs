//! # gbdt — histogram-based gradient-boosted decision trees
//!
//! A from-scratch substitute for LightGBM (Ke et al., NeurIPS 2017), which
//! the paper uses to learn OPT's decisions: "LFO currently uses LightGBM.
//! Throughout our evaluation, we use LightGBM's default parameters with one
//! exception: we have decreased the number of iterations [...] from 100 to
//! 30" (§2.3).
//!
//! The algorithmic core mirrors LightGBM's:
//!
//! - **quantile feature binning** into at most 255 histogram bins
//!   ([`dataset`]);
//! - **leaf-wise (best-first) tree growth** with histogram-based split
//!   finding and the sibling-subtraction trick ([`tree`]);
//! - **gradient boosting with logistic loss** for binary classification,
//!   with shrinkage, feature subsampling, bagging, and early stopping
//!   ([`boosting`]);
//! - **split-count and gain feature importance** ([`importance`]) — needed
//!   to reproduce Figure 8 of the paper;
//! - **flat SoA serving layout** ([`flat`]) — the per-tree node arenas
//!   flattened into contiguous arrays at model-publish time, with a batched
//!   per-tree-walk scorer, bit-equal to the recursive path;
//! - **quantized integer-compare serving** ([`quantized`]) — thresholds
//!   snapped to u16 bin cuts against the frozen [`BinMap`], nodes packed
//!   one-per-u64 with a block-interleaved fixed-depth kernel, plus
//!   predicate pruning of branches the serving shard can prove dead;
//! - **one batched scoring entry point** ([`score`]) — every engine
//!   (recursive / flat / quantized / quantized+pruned) packs rows once and
//!   scores through the same ranged call;
//! - model (de)serialization via serde ([`Model`] derives it).
//!
//! ## Example
//!
//! ```
//! use gbdt::{Dataset, GbdtParams, train};
//!
//! // Learn y = x0 > 0.5 from noisy data.
//! let rows: Vec<Vec<f32>> = (0..200)
//!     .map(|i| vec![(i % 100) as f32 / 100.0, (i % 7) as f32])
//!     .collect();
//! let labels: Vec<f32> = rows.iter().map(|r| (r[0] > 0.5) as u8 as f32).collect();
//! let data = Dataset::from_rows(rows, labels).unwrap();
//! let model = train(&data, &GbdtParams::default());
//! assert!(model.predict_proba(&[0.9, 3.0]) > 0.5);
//! assert!(model.predict_proba(&[0.1, 3.0]) < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boosting;
pub mod dataset;
pub mod dump;
pub mod flat;
pub mod importance;
pub mod metrics;
pub mod quantized;
pub mod score;
pub mod tree;

pub use boosting::{
    sigmoid, train, train_continued, train_continued_with_validation, train_with_validation,
    GbdtParams, Model, TrainReport,
};
pub use dataset::{BinMap, BinnedDataset, Dataset, DatasetError};
pub use dump::{dump_model, dump_tree};
pub use flat::FlatModel;
pub use importance::{FeatureImportance, ImportanceKind};
pub use metrics::{accuracy, error_rate, log_loss, Confusion};
pub use quantized::{Predicate, QuantizedModel, MISSING_BIN};
pub use score::{EngineKind, PackedScorer, BATCH_ROWS};
pub use tree::Tree;
