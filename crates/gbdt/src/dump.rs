//! Human-readable model dumps.
//!
//! The paper argues decision trees are attractive partly because they are
//! *interpretable*: "LFO's learned models are composed of a large set of
//! 'if-then-else' tree branches" (§3, Figure 8). This module renders a
//! trained model in exactly that if-then-else form, with feature names.

use std::fmt::Write;

use crate::boosting::Model;
use crate::tree::{Node, Tree};

/// Renders one tree as indented if-then-else pseudocode.
pub fn dump_tree(tree: &Tree, feature_names: &[String]) -> String {
    let mut out = String::new();
    dump_node(tree, 0, 0, feature_names, &mut out);
    out
}

fn feature_label(feature: u32, names: &[String]) -> String {
    names
        .get(feature as usize)
        .cloned()
        .unwrap_or_else(|| format!("f{feature}"))
}

fn dump_node(tree: &Tree, at: usize, depth: usize, names: &[String], out: &mut String) {
    let pad = "  ".repeat(depth);
    match tree.nodes()[at] {
        Node::Leaf { value } => {
            let _ = writeln!(out, "{pad}-> {value:+.4}");
        }
        Node::Split {
            feature,
            threshold,
            left,
            right,
            gain,
        } => {
            let name = feature_label(feature, names);
            let _ = writeln!(out, "{pad}if {name} <= {threshold:.3} (gain {gain:.2}):");
            dump_node(tree, left as usize, depth + 1, names, out);
            let _ = writeln!(out, "{pad}else:");
            dump_node(tree, right as usize, depth + 1, names, out);
        }
    }
}

/// Renders the whole model: init score plus each tree.
pub fn dump_model(model: &Model, feature_names: &[String]) -> String {
    let mut out = format!("init_score = {:+.4}\n", model.init_score());
    for (i, tree) in model.trees().iter().enumerate() {
        let _ = writeln!(
            out,
            "tree {i} ({} leaves, depth {}):",
            tree.num_leaves(),
            tree.depth()
        );
        out.push_str(&dump_tree(tree, feature_names));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boosting::{train, GbdtParams};
    use crate::dataset::Dataset;

    fn toy_model() -> Model {
        let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32, 0.0]).collect();
        let labels: Vec<f32> = (0..100).map(|i| (i >= 50) as u8 as f32).collect();
        train(
            &Dataset::from_rows(rows, labels).unwrap(),
            &GbdtParams {
                num_iterations: 2,
                ..GbdtParams::lfo_paper()
            },
        )
    }

    #[test]
    fn dump_contains_feature_names_and_structure() {
        let model = toy_model();
        let text = dump_model(&model, &["Size".into(), "Free".into()]);
        assert!(text.contains("init_score"));
        assert!(text.contains("tree 0"));
        assert!(text.contains("if Size <= "), "missing split line:\n{text}");
        assert!(text.contains("->"));
        assert!(text.contains("else:"));
    }

    #[test]
    fn unknown_features_get_fallback_names() {
        let model = toy_model();
        let text = dump_model(&model, &[]);
        assert!(text.contains("if f0 <= "));
    }
}
