//! Flat (structure-of-arrays) inference for trained ensembles.
//!
//! [`Model::predict_proba`](crate::Model::predict_proba) walks each tree's
//! `Vec<Node>` arena through an enum match — fine for training-time use, but
//! the serving hot path pays for the enum discriminant, the per-node `f64`
//! gain it never reads, and pointer-chasing across per-tree allocations. A
//! [`FlatModel`] is built once at model-publish time: every tree's nodes are
//! flattened into one contiguous SoA layout (`feature`, `threshold`,
//! `left`/`right` as absolute node indices, leaf values inline in `value`),
//! so a prediction touches four tightly packed arrays and nothing else.
//!
//! Predictions are **bit-equal** to the recursive walk: the per-row raw
//! score accumulates tree contributions in the same order
//! (`init_score + t₀ + t₁ + …`) with the same `f64` arithmetic, and the
//! branch rule is the same `value <= threshold`, with a missing feature
//! taking the right branch.
//!
//! [`FlatModel::predict_proba_batch`] additionally scores a whole batch per
//! tree-walk (outer loop over trees, inner loop over rows), which keeps each
//! tree's node arrays cache-hot across the batch instead of re-streaming the
//! full ensemble per row.

use crate::boosting::{sigmoid, Model};
use crate::tree::Node;

/// Sentinel in [`FlatModel`]'s `feature` array marking a leaf node.
/// Crate-visible so the quantized compiler can walk the flat arrays.
pub(crate) const LEAF: u32 = u32::MAX;

/// A trained ensemble flattened for serving (see the module docs).
///
/// Fields are crate-visible: the quantized engine
/// ([`crate::QuantizedModel`]) compiles itself from this layout.
#[derive(Clone, Debug)]
pub struct FlatModel {
    pub(crate) init_score: f64,
    pub(crate) num_features: usize,
    /// Node-index ranges per tree: tree `t` owns `tree_starts[t]..tree_starts[t+1]`.
    pub(crate) tree_starts: Vec<u32>,
    /// Split feature per node; [`LEAF`] marks leaves.
    pub(crate) feature: Vec<u32>,
    /// Split threshold per node (unused for leaves).
    pub(crate) threshold: Vec<f32>,
    /// Absolute left-child node index (unused for leaves).
    pub(crate) left: Vec<u32>,
    /// Absolute right-child node index (unused for leaves).
    pub(crate) right: Vec<u32>,
    /// Leaf output per node, inline (0 for splits).
    pub(crate) value: Vec<f64>,
}

impl From<&Model> for FlatModel {
    fn from(model: &Model) -> Self {
        let total_nodes: usize = model.trees().iter().map(|t| t.nodes().len()).sum();
        let mut flat = FlatModel {
            init_score: model.init_score(),
            num_features: model.num_features(),
            tree_starts: Vec::with_capacity(model.trees().len() + 1),
            feature: Vec::with_capacity(total_nodes),
            threshold: Vec::with_capacity(total_nodes),
            left: Vec::with_capacity(total_nodes),
            right: Vec::with_capacity(total_nodes),
            value: Vec::with_capacity(total_nodes),
        };
        for tree in model.trees() {
            let base = flat.feature.len() as u32;
            flat.tree_starts.push(base);
            for node in tree.nodes() {
                match *node {
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                        ..
                    } => {
                        flat.feature.push(feature);
                        flat.threshold.push(threshold);
                        flat.left.push(base + left);
                        flat.right.push(base + right);
                        flat.value.push(0.0);
                    }
                    Node::Leaf { value } => {
                        flat.feature.push(LEAF);
                        flat.threshold.push(0.0);
                        flat.left.push(0);
                        flat.right.push(0);
                        flat.value.push(value);
                    }
                }
            }
        }
        flat.tree_starts.push(flat.feature.len() as u32);
        flat
    }
}

impl FlatModel {
    /// Number of features the source model was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.tree_starts.len() - 1
    }

    /// Total flattened nodes across all trees.
    pub fn num_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Approximate resident bytes of the flat arrays, for metadata-footprint
    /// accounting (bytes of model per cached object in the serve bench).
    pub fn approximate_bytes(&self) -> usize {
        self.tree_starts.len() * 4
            + self.feature.len() * 4
            + self.threshold.len() * 4
            + self.left.len() * 4
            + self.right.len() * 4
            + self.value.len() * 8
    }

    /// Walks one tree (starting at absolute node `at`) for one row.
    /// Missing features (row shorter than the split feature index) take the
    /// right branch, matching [`crate::Tree::predict`].
    #[inline]
    fn walk(&self, mut at: usize, row: &[f32]) -> f64 {
        loop {
            let f = self.feature[at];
            if f == LEAF {
                return self.value[at];
            }
            let go_left = row
                .get(f as usize)
                .map(|&v| v <= self.threshold[at])
                .unwrap_or(false);
            at = if go_left {
                self.left[at] as usize
            } else {
                self.right[at] as usize
            };
        }
    }

    /// Raw additive score (log-odds) for one row; bit-equal to
    /// [`Model::predict_raw`].
    pub fn predict_raw(&self, row: &[f32]) -> f64 {
        // Sum tree contributions first and add `init_score` last — the same
        // association as `init_score + trees.map(predict).sum()`, which is
        // what bit-equality with the recursive walk requires.
        let mut acc = 0.0f64;
        for w in self.tree_starts.windows(2) {
            acc += self.walk(w[0] as usize, row);
        }
        self.init_score + acc
    }

    /// Predicted probability of the positive class; bit-equal to
    /// [`Model::predict_proba`].
    pub fn predict_proba(&self, row: &[f32]) -> f64 {
        sigmoid(self.predict_raw(row))
    }

    /// Scores a batch of rows packed row-major into `rows` (stride
    /// [`FlatModel::num_features`]), writing one probability per row into
    /// `out`. The batch is scored per tree-walk — the outer loop is over
    /// trees, so each tree's nodes stay cache-hot across all rows — and
    /// every output is bit-equal to [`Model::predict_proba`] on the same
    /// row, because per-row contributions still accumulate in tree order.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != out.len() * self.num_features()`.
    pub fn predict_proba_batch(&self, rows: &[f32], out: &mut [f64]) {
        let stride = self.num_features;
        assert_eq!(
            rows.len(),
            out.len() * stride,
            "rows must be row-major with stride num_features"
        );
        // Accumulate tree sums seeded at 0 and add `init_score` at the end,
        // matching the association of the recursive path bit for bit.
        out.fill(0.0);
        for w in self.tree_starts.windows(2) {
            let root = w[0] as usize;
            for (row, acc) in rows.chunks_exact(stride.max(1)).zip(out.iter_mut()) {
                *acc += self.walk(root, row);
            }
        }
        for acc in out.iter_mut() {
            *acc = sigmoid(self.init_score + *acc);
        }
    }

    /// Raw margins for a batch, accumulated in *training order*: `out` is
    /// seeded with `init_score` and each tree's contribution is added in
    /// sequence, i.e. `((init + t₀) + t₁) + …`. This is the association the
    /// boosting loop itself uses for its score vector — **not** the same as
    /// [`FlatModel::predict_raw`], which computes `init + ((t₀ + t₁) + …)`
    /// — so continued training seeded from these margins is bit-identical
    /// to never having stopped.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != out.len() * self.num_features()`.
    pub fn training_margins(&self, rows: &[f32], out: &mut [f64]) {
        let stride = self.num_features;
        assert_eq!(
            rows.len(),
            out.len() * stride,
            "rows must be row-major with stride num_features"
        );
        out.fill(self.init_score);
        for w in self.tree_starts.windows(2) {
            let root = w[0] as usize;
            for (acc, r) in out.iter_mut().zip(0..) {
                *acc += self.walk(root, &rows[r * stride..(r + 1) * stride]);
            }
        }
    }
}

impl Model {
    /// Flattens the ensemble into the contiguous serving layout. Build this
    /// once when a model is published, not per prediction.
    pub fn flatten(&self) -> FlatModel {
        FlatModel::from(self)
    }

    /// One-row prediction through a prebuilt [`FlatModel`]; bit-equal to
    /// [`Model::predict_proba`]. Convenience for call sites that keep the
    /// flat layout next to the model.
    pub fn predict_proba_flat(&self, flat: &FlatModel, row: &[f32]) -> f64 {
        debug_assert_eq!(flat.num_features(), self.num_features());
        flat.predict_proba(row)
    }
}

#[cfg(test)]
mod tests {
    use crate::{train, Dataset, GbdtParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(seed: u64, n: usize, d: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-5.0f32..5.0)).collect())
            .collect();
        let labels: Vec<f32> = rows
            .iter()
            .map(|r| {
                let s: f32 = r
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v * (i as f32 - 1.0))
                    .sum();
                (s > 0.0) as u8 as f32
            })
            .collect();
        (rows, labels)
    }

    #[test]
    fn flat_predictions_bit_equal_across_seeds() {
        for seed in 0..8u64 {
            let d = 2 + (seed as usize % 4);
            let (rows, labels) = random_dataset(seed, 400, d);
            let data = Dataset::from_rows(rows.clone(), labels).unwrap();
            let mut params = GbdtParams::lfo_paper();
            params.seed = seed;
            if seed % 2 == 0 {
                params.feature_fraction = 0.7;
                params.bagging_fraction = 0.8;
                params.bagging_freq = 1;
            }
            let model = train(&data, &params);
            let flat = model.flatten();
            assert_eq!(flat.num_trees(), model.trees().len());
            for row in rows.iter().take(100) {
                assert_eq!(
                    model.predict_proba(row).to_bits(),
                    flat.predict_proba(row).to_bits(),
                    "seed {seed}"
                );
                assert_eq!(
                    model.predict_raw(row).to_bits(),
                    flat.predict_raw(row).to_bits(),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_single_row_bit_for_bit() {
        let (rows, labels) = random_dataset(42, 500, 3);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let flat = model.flatten();
        let stride = flat.num_features();
        let packed: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let mut out = vec![0.0f64; rows.len()];
        flat.predict_proba_batch(&packed, &mut out);
        for (row, &p) in rows.iter().zip(&out) {
            assert_eq!(p.to_bits(), model.predict_proba(row).to_bits());
        }
        assert_eq!(packed.len(), out.len() * stride);
    }

    #[test]
    fn training_margins_match_the_boosting_loop_association() {
        let (rows, labels) = random_dataset(11, 300, 4);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let flat = model.flatten();
        let packed: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let mut got = vec![0.0f64; rows.len()];
        flat.training_margins(&packed, &mut got);
        for (row, &margin) in rows.iter().zip(&got) {
            // The boosting loop accumulates ((init + t0) + t1) + ...
            let mut want = model.init_score();
            for tree in model.trees() {
                want += tree.predict(row);
            }
            assert_eq!(margin.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn short_rows_take_the_right_branch_like_the_recursive_walk() {
        let (rows, labels) = random_dataset(7, 300, 4);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let flat = model.flatten();
        for short in [&[][..], &[0.5][..], &[0.5, -1.0][..]] {
            assert_eq!(
                model.predict_proba(short).to_bits(),
                flat.predict_proba(short).to_bits()
            );
        }
        // Padding a short row with +inf is equivalent to the row being
        // short: `inf <= threshold` is false, i.e. the right branch.
        let padded = [0.5, f32::INFINITY, f32::INFINITY, f32::INFINITY];
        assert_eq!(
            flat.predict_proba(&[0.5]).to_bits(),
            flat.predict_proba(&padded).to_bits()
        );
    }

    #[test]
    fn predict_proba_flat_convenience_agrees() {
        let (rows, labels) = random_dataset(3, 200, 2);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let flat = model.flatten();
        assert_eq!(
            model.predict_proba_flat(&flat, &rows[0]).to_bits(),
            model.predict_proba(&rows[0]).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "row-major")]
    fn batch_rejects_misaligned_buffers() {
        let (rows, labels) = random_dataset(5, 100, 3);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let flat = model.flatten();
        let mut out = vec![0.0f64; 2];
        flat.predict_proba_batch(&[1.0; 5], &mut out);
    }

    #[test]
    fn constant_model_flattens() {
        // An ensemble of constant trees (all-equal labels) still flattens
        // and predicts identically.
        let rows: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
        let data = Dataset::from_rows(rows, vec![1.0; 50]).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let flat = model.flatten();
        assert_eq!(
            model.predict_proba(&[3.0]).to_bits(),
            flat.predict_proba(&[3.0]).to_bits()
        );
    }
}
