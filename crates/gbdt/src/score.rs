//! One batched scoring entry point shared by every serving engine.
//!
//! Before this module, the fixed-size batch-scoring loop was duplicated
//! across the serving benchmark and the training pipeline's prediction
//! helper, each packing rows and chunking them by hand. [`PackedScorer`]
//! owns both jobs: it packs a row set once into the engine's native layout
//! (`f32` rows for the recursive and flat walks, u16 bins for the quantized
//! engines) and exposes one range-scoring call, so adding the quantized
//! kernel meant one new match arm instead of a third copy of the loop.

use crate::boosting::Model;
use crate::dataset::BinMap;
use crate::flat::FlatModel;
use crate::quantized::{Predicate, QuantizedModel};

/// Rows scored per batch by [`PackedScorer::score_all`] and the serving
/// throughput harness: large enough to amortize per-batch overhead, small
/// enough that outputs stay in L1.
pub const BATCH_ROWS: usize = 512;

/// The inference engines a model can serve through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Per-row recursive walk over the training-side node arenas.
    Recursive,
    /// Flat SoA walk with f32 compares ([`FlatModel`]).
    Flat,
    /// Quantized integer-compare kernel ([`QuantizedModel`]).
    Quantized,
    /// Quantized kernel specialized by [`Predicate`] invariants before
    /// serving ([`QuantizedModel::prune`]).
    QuantizedPruned,
}

impl EngineKind {
    /// All engines, in cost order (slowest first).
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Recursive,
        EngineKind::Flat,
        EngineKind::Quantized,
        EngineKind::QuantizedPruned,
    ];

    /// Stable label used in benchmark tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Recursive => "recursive",
            EngineKind::Flat => "flat",
            EngineKind::Quantized => "quantized",
            EngineKind::QuantizedPruned => "quantized+pruned",
        }
    }

    /// Whether this engine needs the frozen training grid to compile.
    pub fn needs_bin_map(self) -> bool {
        matches!(self, EngineKind::Quantized | EngineKind::QuantizedPruned)
    }
}

/// A model compiled for one engine, with a row set packed in that engine's
/// native layout. Shareable across scoring threads (`&self` scoring only).
pub struct PackedScorer<'m> {
    engine: EngineKind,
    num_rows: usize,
    repr: Repr<'m>,
}

enum Repr<'m> {
    Recursive {
        model: &'m Model,
        rows: Vec<f32>,
        stride: usize,
    },
    Flat {
        flat: FlatModel,
        rows: Vec<f32>,
        stride: usize,
    },
    Quantized {
        quant: Box<QuantizedModel>,
        bins: Vec<u16>,
        stride: usize,
    },
}

impl<'m> PackedScorer<'m> {
    /// Packs `rows` for `engine`. Short rows are padded with `+inf`
    /// (missing ≡ right branch, the walk convention); quantized engines
    /// encode to u16 bins once, here, so the scoring loop never touches
    /// floats. Returns `None` when the engine needs a bin grid and
    /// `bin_map` is absent or was fit on a different feature count — the
    /// caller decides whether that is a skip or an error.
    pub fn pack(
        model: &'m Model,
        engine: EngineKind,
        rows: &[Vec<f32>],
        bin_map: Option<&BinMap>,
        predicates: &[Predicate],
    ) -> Option<Self> {
        let stride = model.num_features();
        let pack_f32 = || {
            let mut packed = Vec::with_capacity(rows.len() * stride);
            for row in rows {
                packed.extend(row.iter().copied().take(stride));
                for _ in row.len()..stride {
                    packed.push(f32::INFINITY);
                }
            }
            packed
        };
        let repr = match engine {
            EngineKind::Recursive => Repr::Recursive {
                model,
                rows: pack_f32(),
                stride,
            },
            EngineKind::Flat => Repr::Flat {
                flat: model.flatten(),
                rows: pack_f32(),
                stride,
            },
            EngineKind::Quantized | EngineKind::QuantizedPruned => {
                let map = bin_map?;
                if map.num_features() != model.num_features() {
                    return None;
                }
                let mut quant = model.quantize(map);
                if engine == EngineKind::QuantizedPruned {
                    quant = quant.prune(predicates);
                }
                let stride = quant.encoded_width();
                let bins = quant.encode_rows(rows);
                Repr::Quantized {
                    quant: Box::new(quant),
                    bins,
                    stride,
                }
            }
        };
        Some(PackedScorer {
            engine,
            num_rows: rows.len(),
            repr,
        })
    }

    /// The engine this scorer was packed for.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Number of packed rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Scores rows `lo..hi`, writing one probability per row into `out`
    /// (`out.len() == hi - lo`). The single call site every engine's batch
    /// loop goes through.
    ///
    /// # Panics
    ///
    /// Panics if `hi > num_rows`, `lo > hi`, or `out.len() != hi - lo`.
    pub fn score_range(&self, lo: usize, hi: usize, out: &mut [f64]) {
        assert!(lo <= hi && hi <= self.num_rows, "row range out of bounds");
        assert_eq!(out.len(), hi - lo, "output length must match row range");
        match &self.repr {
            Repr::Recursive {
                model,
                rows,
                stride,
            } => {
                for (r, slot) in (lo..hi).zip(out.iter_mut()) {
                    *slot = model.predict_proba(&rows[r * stride..(r + 1) * stride]);
                }
            }
            Repr::Flat { flat, rows, stride } => {
                flat.predict_proba_batch(&rows[lo * stride..hi * stride], out);
            }
            Repr::Quantized {
                quant,
                bins,
                stride,
            } => {
                quant.predict_proba_binned_batch(&bins[lo * stride..hi * stride], out);
            }
        }
    }

    /// Scores every packed row in [`BATCH_ROWS`]-sized batches.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != num_rows`.
    pub fn score_all(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_rows, "one output slot per row");
        let mut lo = 0usize;
        while lo < self.num_rows {
            let hi = (lo + BATCH_ROWS).min(self.num_rows);
            self.score_range(lo, hi, &mut out[lo..hi]);
            lo = hi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train, Dataset, GbdtParams};

    fn fixture() -> (Vec<Vec<f32>>, Model, BinMap) {
        let rows: Vec<Vec<f32>> = (0..600)
            .map(|r| {
                (0..3)
                    .map(|c| ((r * 37 + c * 101) % 251) as f32 * 1.5)
                    .collect()
            })
            .collect();
        let labels: Vec<f32> = rows.iter().map(|r| (r[0] < r[1]) as u8 as f32).collect();
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let params = GbdtParams::lfo_paper();
        let model = train(&data, &params);
        let map = BinMap::fit(&data, params.max_bins);
        (rows, model, map)
    }

    #[test]
    fn all_engines_agree_bit_for_bit_on_the_training_grid() {
        let (rows, model, map) = fixture();
        let mut reference = vec![0.0f64; rows.len()];
        let flat = PackedScorer::pack(&model, EngineKind::Flat, &rows, None, &[]).unwrap();
        flat.score_all(&mut reference);
        for engine in EngineKind::ALL {
            let scorer = PackedScorer::pack(&model, engine, &rows, Some(&map), &[]).unwrap();
            assert_eq!(scorer.engine(), engine);
            assert_eq!(scorer.num_rows(), rows.len());
            let mut out = vec![0.0f64; rows.len()];
            scorer.score_all(&mut out);
            for (r, (got, want)) in out.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "engine {} row {r}",
                    engine.label()
                );
            }
        }
    }

    #[test]
    fn quantized_engines_require_a_grid() {
        let (rows, model, map) = fixture();
        assert!(PackedScorer::pack(&model, EngineKind::Quantized, &rows, None, &[]).is_none());
        assert!(
            PackedScorer::pack(&model, EngineKind::Quantized, &rows, Some(&map), &[]).is_some()
        );
        // A grid fit on a different feature count is rejected, not misused.
        let narrow = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![0.0, 1.0]).unwrap();
        let wrong = BinMap::fit(&narrow, 255);
        assert!(
            PackedScorer::pack(&model, EngineKind::Quantized, &rows, Some(&wrong), &[]).is_none()
        );
    }

    #[test]
    fn score_range_matches_score_all() {
        let (rows, model, map) = fixture();
        let scorer =
            PackedScorer::pack(&model, EngineKind::Quantized, &rows, Some(&map), &[]).unwrap();
        let mut all = vec![0.0f64; rows.len()];
        scorer.score_all(&mut all);
        let mut part = vec![0.0f64; 100];
        scorer.score_range(250, 350, &mut part);
        for (got, want) in part.iter().zip(&all[250..350]) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}
