//! Quantized integer-compare inference — the serving end of the
//! compile-at-publish pipeline (DESIGN.md §12).
//!
//! [`FlatModel`] walks nodes by comparing raw `f32` feature values against
//! `f32` thresholds, one dependent load per level: the fig. 7 benchmark
//! shows that walk is latency-bound at roughly the same preds/s no matter
//! the thread count. A [`QuantizedModel`] is compiled once at model-publish
//! time from the flat layout plus the frozen training [`BinMap`]:
//!
//! - every split threshold is snapped onto the bin grid and replaced by a
//!   **u16 cut index**; rows are pre-encoded once into u16 bin indices by a
//!   reusable scratch encoder ([`QuantizedModel::encode_row_into`]), so the
//!   walk compares integers against integers;
//! - each node packs `(feature, cut, left-child)` into one `u64` — eight
//!   nodes per cache line — with sibling children adjacent
//!   (`right = left + 1`), so descending is the branchless
//!   `child + (bin >= cut)`;
//! - the batch kernel does not walk trees at all: at compile time every
//!   tree's leaves are numbered left to right into a u64 bitvector and
//!   every split gets a mask that clears its left-subtree leaves. Scoring a
//!   row applies, per feature, the masks of the splits whose cut the row's
//!   bin reaches (`bin >= cut` ⟺ the split sends the row right), sorted by
//!   cut so the scan stops early; each tree's exit leaf is then the lowest
//!   surviving bit (the QuickScorer scheme of Lucchese et al., SIGIR'15).
//!   The mask stream is read sequentially and every AND is independent, so
//!   [`QuantizedModel::predict_proba_binned_batch`] is throughput-bound
//!   where the per-row walk is latency-bound on dependent node loads —
//!   this is where the speedup over the flat walk comes from. Ensembles
//!   with a tree of more than 64 leaves fall back to a fixed-depth
//!   interleaved walk over [`BLOCK`] row cursors (leaves self-loop, so no
//!   per-row exit test is needed);
//! - [`QuantizedModel::prune`] specializes a compiled model against
//!   [`Predicate`] invariants the serving shard already knows (for example:
//!   the free-bytes feature never exceeds pool capacity), deleting branches
//!   no reachable row can take before the model is handed to the shard.
//!
//! ## The boundary-delta contract
//!
//! A split `v <= t` becomes `bin(v) < cut`, where `cut` counts grid bounds
//! `<= t`; the identity `bin(v) < cut  ⟺  v <= snap(t)` (with `snap(t)` the
//! largest grid bound `<= t`) makes the two predicates **identical whenever
//! `t` is itself a grid bound**. That always holds when the model was
//! trained on the same grid, because training thresholds *are* bin upper
//! bounds — so quantized scores are bit-equal to the flat walk, and
//! [`QuantizedModel::is_exact`] reports `true`. Against a mismatched grid
//! the predicates disagree only for values inside the half-open window
//! `(snap(t), t]`, which lies within a single bin — a quantized decision
//! can differ from the exact one by at most one bin boundary per split.
//! [`QuantizedModel::quantization_agrees`] checks whether a concrete row
//! avoids every such window (sufficient for bit-equality).
//!
//! Missing features (short rows) encode as [`MISSING_BIN`], which no cut
//! exceeds, so they take the right branch exactly like the recursive and
//! flat walks; `+inf` padding encodes past every finite bound and behaves
//! the same way. `NaN` also maps to [`MISSING_BIN`] (the raw walks send
//! NaN right because `NaN <= t` is false).

use std::collections::VecDeque;

use crate::boosting::{sigmoid, Model};
use crate::dataset::BinMap;
use crate::flat::{FlatModel, LEAF};

/// Bin index used for missing (or NaN) feature values in encoded rows.
/// Larger than any real cut, so missing always takes the right branch.
pub const MISSING_BIN: u16 = u16::MAX;

/// Row cursors interleaved per tree by the batch kernel.
pub const BLOCK: usize = 64;

/// An inclusive raw-value invariant over one feature, used by
/// [`QuantizedModel::prune`]: "feature `feature` is always within
/// `[min, max]`". Pruning is only legal when every scored row actually
/// satisfies the predicate **and** the feature is always present — rows
/// that violate it (including rows where the feature is missing) may be
/// routed differently by the pruned model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Predicate {
    /// Feature index the invariant constrains.
    pub feature: usize,
    /// Smallest value the feature can take (inclusive).
    pub min: f32,
    /// Largest value the feature can take (inclusive).
    pub max: f32,
}

impl Predicate {
    /// Convenience constructor for a `[min, max]` range invariant.
    pub fn range(feature: usize, min: f32, max: f32) -> Self {
        Predicate { feature, min, max }
    }
}

/// A trained ensemble compiled for integer-compare serving (see the module
/// docs). Built once at model-publish time via [`QuantizedModel::compile`];
/// never persisted — artifacts store the model plus the [`BinMap`], and the
/// loader recompiles.
#[derive(Clone, Debug)]
pub struct QuantizedModel {
    init_score: f64,
    num_features: usize,
    /// Reduced per-feature encoding grid: only the grid bounds actually
    /// used by this model's splits, sorted ascending. `enc(f, v)` = number
    /// of `grid[f]` bounds `< v`, so encoding costs a couple of compares
    /// per feature instead of a search over the full 255-bin map.
    grid: Vec<Vec<f32>>,
    /// Packed nodes: `feature << 48 | cut << 32 | left_child`. Leaves are
    /// self-loops (`feature 0, cut 0, left_child = self - 1`).
    nodes: Vec<u64>,
    /// Leaf flag per node (compile/prune bookkeeping, not read by the
    /// kernel).
    leaf: Vec<bool>,
    /// Raw training-time threshold per split (`-inf` for synthetic
    /// always-right nodes) — kept for [`QuantizedModel::quantization_agrees`].
    raw_threshold: Vec<f32>,
    /// Leaf output per node (0 for splits).
    value: Vec<f64>,
    /// Root node per tree (absolute index into `nodes`).
    roots: Vec<u32>,
    /// Fixed walk depth per tree: after this many branchless steps every
    /// row cursor sits on a (self-looping) leaf.
    depth: Vec<u32>,
    /// Every split threshold coincided with a grid bound, so compares — and
    /// therefore scores — are bit-equal to the flat walk.
    exact: bool,
    /// Fingerprint of the [`BinMap`] this model was compiled against.
    fingerprint: u64,
    /// Mask-kernel evaluation tables; `None` when some tree exceeds 64
    /// leaves, in which case the batch kernel falls back to the
    /// fixed-depth interleaved walk.
    masks: Option<MaskTables>,
}

/// One mask-kernel entry while building: when a row's bin for `feature`
/// reaches `cut` (`bin >= cut`, i.e. the split sends the row right),
/// `mask` clears the split's left-subtree leaves from tree `tree`'s
/// candidate bitvector. Flattened into [`MaskTables`]' parallel arrays
/// before serving.
#[derive(Clone, Copy, Debug)]
struct MaskEntry {
    mask: u64,
    feature: u16,
    cut: u16,
    tree: u16,
}

/// The QuickScorer-style batch-evaluation tables (module docs), stored as
/// feature-grouped parallel arrays (one slot per split across all trees).
/// The hot path is the 8-lane block kernel over `masks32`: eight rows'
/// candidate words for one tree sit in a single 32-byte slab, each entry
/// ANDs all eight with a branchless arithmetic select, and the entry
/// stream is read once per block instead of once per row. Ensembles with
/// a tree wider than 32 leaves drop `masks32` and serve through the
/// scalar u64 kernel; wider than 64 leaves, the tables are not built at
/// all and the fixed-depth walk serves.
#[derive(Clone, Debug, Default)]
struct MaskTables {
    /// Bin cut of each entry (`bin >= cut` applies the mask).
    cuts: Vec<u16>,
    /// Owning tree of each entry.
    trees: Vec<u16>,
    /// Full-width candidate masks (used by the u64 scalar kernel).
    masks: Vec<u64>,
    /// Low words of `masks`; populated only when every tree has at most
    /// 32 leaves, which is what the 8-lane u32 block kernel requires.
    masks32: Vec<u32>,
    /// Entries `feat_off[f]..feat_off[f + 1]` belong to feature `f`.
    feat_off: Vec<u32>,
    /// Features that own at least one entry — the block kernel transposes
    /// and scans only these columns.
    used: Vec<u32>,
    /// First slot of each tree's leaves in `leaf_value`.
    leaf_base: Vec<u32>,
    /// Leaf outputs, tree-major, leaves left to right within a tree.
    leaf_value: Vec<f64>,
}

/// Tree-lifting state feeding [`MaskTables::build`].
#[derive(Default)]
struct MaskBuilder {
    entries: Vec<MaskEntry>,
    leaf_base: Vec<u32>,
    leaf_value: Vec<f64>,
    /// Widest tree seen, in leaves.
    max_leaves: u32,
    /// Set when some subtree's leaf range escaped the u64 budget.
    overflow: bool,
}

impl MaskTables {
    /// Builds the tables, or `None` when some tree has more than 64 leaves
    /// (the walk kernel serves those ensembles).
    fn build(trees: &[TmpNode], num_features: usize) -> Option<MaskTables> {
        assert!(
            trees.len() <= usize::from(u16::MAX),
            "tree index must fit in u16"
        );
        let mut b = MaskBuilder {
            leaf_base: Vec::with_capacity(trees.len()),
            ..MaskBuilder::default()
        };
        for (t, tree) in trees.iter().enumerate() {
            let base = b.leaf_value.len() as u32;
            b.leaf_base.push(base);
            let leaves = b.add_tree(tree, t as u16, base);
            b.max_leaves = b.max_leaves.max(leaves);
            if leaves > 64 || b.overflow {
                return None;
            }
        }
        b.entries.sort_by_key(|e| e.feature);
        let mut tables = MaskTables {
            leaf_base: b.leaf_base,
            leaf_value: b.leaf_value,
            ..MaskTables::default()
        };
        for e in &b.entries {
            tables.cuts.push(e.cut);
            tables.trees.push(e.tree);
            tables.masks.push(e.mask);
            if b.max_leaves <= 32 {
                tables.masks32.push(e.mask as u32);
            }
        }
        tables.feat_off = Vec::with_capacity(num_features.max(1) + 1);
        tables.feat_off.push(0);
        for f in 0..num_features.max(1) {
            let prev = *tables.feat_off.last().expect("seeded with 0") as usize;
            let n = b.entries[prev..]
                .iter()
                .take_while(|e| usize::from(e.feature) == f)
                .count();
            tables.feat_off.push((prev + n) as u32);
            if n > 0 {
                tables.used.push(f as u32);
            }
        }
        Some(tables)
    }
}

impl MaskBuilder {
    /// In-order leaf numbering plus one mask entry per split; returns the
    /// subtree's leaf count. Masks use tree-local leaf indices; bits past
    /// a small tree's leaf count stay set, which is harmless — the exit
    /// leaf is the *lowest* surviving bit and the true exit leaf always
    /// survives (no false node's mask covers it).
    fn add_tree(&mut self, node: &TmpNode, tree: u16, base: u32) -> u32 {
        match node {
            TmpNode::Leaf { value } => {
                self.leaf_value.push(*value);
                1
            }
            TmpNode::Split {
                feature,
                cut,
                left,
                right,
                ..
            } => {
                let first = self.leaf_value.len() as u32 - base;
                let left_leaves = self.add_tree(left, tree, base);
                let right_leaves = self.add_tree(right, tree, base);
                if first + left_leaves > 64 {
                    // Oversized tree: the caller discards the tables.
                    self.overflow = true;
                } else {
                    let clear = if left_leaves == 64 {
                        u64::MAX
                    } else {
                        ((1u64 << left_leaves) - 1) << first
                    };
                    self.entries.push(MaskEntry {
                        mask: !clear,
                        feature: *feature,
                        cut: *cut,
                        tree,
                    });
                }
                left_leaves + right_leaves
            }
        }
    }
}

/// Intermediate tree form shared by compile and prune before re-layout.
enum TmpNode {
    Split {
        feature: u16,
        cut: u16,
        raw: f32,
        left: Box<TmpNode>,
        right: Box<TmpNode>,
    },
    Leaf {
        value: f64,
    },
}

#[inline]
fn pack(feature: u16, cut: u16, child: u32) -> u64 {
    (u64::from(feature) << 48) | (u64::from(cut) << 32) | u64::from(child)
}

/// Breadth-first re-layout of [`TmpNode`] trees into the packed arrays:
/// children placed adjacent, leaves turned into self-loops, per-tree depth
/// recorded for the fixed-depth kernel.
#[derive(Default)]
struct Layout {
    nodes: Vec<u64>,
    leaf: Vec<bool>,
    raw_threshold: Vec<f32>,
    value: Vec<f64>,
    roots: Vec<u32>,
    depth: Vec<u32>,
}

impl Layout {
    fn push_slot(&mut self) {
        self.nodes.push(0);
        self.leaf.push(false);
        self.raw_threshold.push(f32::NEG_INFINITY);
        self.value.push(0.0);
    }

    fn set_leaf(&mut self, at: u32, value: f64) {
        // Self-loop: cut 0 always sends the cursor right, and right is
        // `(at - 1) + 1 = at`.
        self.nodes[at as usize] = pack(0, 0, at - 1);
        self.leaf[at as usize] = true;
        self.value[at as usize] = value;
    }

    fn push_tree(&mut self, tree: &TmpNode) {
        let base = self.nodes.len() as u32;
        self.roots.push(base);
        if let TmpNode::Leaf { value } = tree {
            // Constant tree: emit a synthetic always-right split at `base`
            // (cut 0) feeding the self-looping leaf at `base + 1`, so the
            // fixed-depth kernel needs no special case — and so the leaf's
            // `at - 1` self-loop never underflows at absolute index 0.
            self.push_slot();
            self.push_slot();
            self.nodes[base as usize] = pack(0, 0, base);
            self.set_leaf(base + 1, *value);
            self.depth.push(1);
            return;
        }
        self.push_slot();
        let mut max_depth = 0u32;
        let mut queue: VecDeque<(&TmpNode, u32, u32)> = VecDeque::new();
        queue.push_back((tree, base, 0));
        while let Some((node, at, level)) = queue.pop_front() {
            match node {
                TmpNode::Split {
                    feature,
                    cut,
                    raw,
                    left,
                    right,
                } => {
                    let li = self.nodes.len() as u32;
                    self.push_slot();
                    self.push_slot();
                    self.nodes[at as usize] = pack(*feature, *cut, li);
                    self.raw_threshold[at as usize] = *raw;
                    queue.push_back((left, li, level + 1));
                    queue.push_back((right, li + 1, level + 1));
                }
                TmpNode::Leaf { value } => {
                    self.set_leaf(at, *value);
                    max_depth = max_depth.max(level);
                }
            }
        }
        self.depth.push(max_depth);
    }
}

/// Recursively lifts one flat-model tree into [`TmpNode`] form, computing
/// each split's cut against the reduced grid: `cut` = number of grid
/// bounds `<= threshold`, so `bin < cut ⟺ v <= snap(threshold)`.
fn tmp_from_flat(flat: &FlatModel, grid: &[Vec<f32>], at: usize) -> TmpNode {
    let f = flat.feature[at];
    if f == LEAF {
        return TmpNode::Leaf {
            value: flat.value[at],
        };
    }
    let t = flat.threshold[at];
    let cut = grid[f as usize].partition_point(|&b| b <= t) as u16;
    TmpNode::Split {
        feature: f as u16,
        cut,
        raw: t,
        left: Box::new(tmp_from_flat(flat, grid, flat.left[at] as usize)),
        right: Box::new(tmp_from_flat(flat, grid, flat.right[at] as usize)),
    }
}

impl QuantizedModel {
    /// Compiles a flat model against a frozen bin grid. Build this once at
    /// model-publish time; see the module docs for the exactness contract.
    ///
    /// # Panics
    ///
    /// Panics if the map's feature count differs from the model's.
    pub fn compile(flat: &FlatModel, map: &BinMap) -> Self {
        assert_eq!(
            flat.num_features(),
            map.num_features(),
            "bin map fit on a different feature count"
        );
        assert!(
            flat.num_features() < usize::from(u16::MAX),
            "feature index must fit in u16"
        );
        let nf = flat.num_features();

        // Pass 1: per feature, collect the grid bounds this model's splits
        // actually snap to, and learn whether every snap was exact.
        let mut grid: Vec<Vec<f32>> = vec![Vec::new(); nf];
        let mut exact = true;
        for at in 0..flat.num_nodes() {
            let f = flat.feature[at];
            if f == LEAF {
                continue;
            }
            let t = flat.threshold[at];
            let bounds = map.bounds(f as usize);
            let n_le = bounds.partition_point(|&b| b <= t);
            if n_le == 0 {
                // Threshold below the whole grid: the quantized split can
                // never go left (cut 0) — bounded-delta regime.
                exact = false;
            } else {
                let snap = bounds[n_le - 1];
                exact &= snap == t;
                grid[f as usize].push(snap);
            }
        }
        for g in &mut grid {
            g.sort_by(|a, b| a.partial_cmp(b).expect("grid bounds are comparable"));
            g.dedup();
        }

        // Pass 2: lift each tree, lay it out breadth-first, and build the
        // mask-kernel tables from the same lifted form.
        let trees: Vec<TmpNode> = flat
            .tree_starts
            .windows(2)
            .map(|w| tmp_from_flat(flat, &grid, w[0] as usize))
            .collect();
        let mut layout = Layout::default();
        for tree in &trees {
            layout.push_tree(tree);
        }
        let masks = MaskTables::build(&trees, nf);
        QuantizedModel {
            init_score: flat.init_score,
            num_features: nf,
            grid,
            nodes: layout.nodes,
            leaf: layout.leaf,
            raw_threshold: layout.raw_threshold,
            value: layout.value,
            roots: layout.roots,
            depth: layout.depth,
            exact,
            fingerprint: map.fingerprint(),
            masks,
        }
    }

    /// Specializes the model against serving-side invariants, dropping
    /// branches no predicate-satisfying row can take. The result scores
    /// **identically to `self`** (bit for bit) on every encoded row whose
    /// constrained features are present and within range; behavior on rows
    /// violating a predicate is unspecified (well-defined, but may differ).
    /// The encoding grid is unchanged, so rows encoded for `self` score
    /// directly through the pruned model.
    pub fn prune(&self, predicates: &[Predicate]) -> QuantizedModel {
        // Per-feature reachable encoded range [lo, hi] (inclusive). An
        // unconstrained feature spans [0, MISSING_BIN].
        let mut lo = vec![0u16; self.num_features.max(1)];
        let mut hi = vec![u16::MAX; self.num_features.max(1)];
        for p in predicates {
            // Skip unknown features and empty/NaN ranges (`min <= max`
            // fails for NaN, which `matches!` on the Ordering makes clear).
            let ordered = matches!(
                p.min.partial_cmp(&p.max),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            if p.feature >= self.num_features || !ordered {
                continue;
            }
            if p.min.is_finite() {
                lo[p.feature] = lo[p.feature].max(self.encode_value(p.feature, p.min));
            }
            if p.max.is_finite() {
                hi[p.feature] = hi[p.feature].min(self.encode_value(p.feature, p.max));
            }
        }
        let trees: Vec<TmpNode> = self
            .roots
            .iter()
            .map(|&root| self.simplify(root as usize, &lo, &hi))
            .collect();
        let mut layout = Layout::default();
        for tree in &trees {
            layout.push_tree(tree);
        }
        let masks = MaskTables::build(&trees, self.num_features);
        QuantizedModel {
            init_score: self.init_score,
            num_features: self.num_features,
            grid: self.grid.clone(),
            nodes: layout.nodes,
            leaf: layout.leaf,
            raw_threshold: layout.raw_threshold,
            value: layout.value,
            roots: layout.roots,
            depth: layout.depth,
            exact: self.exact,
            fingerprint: self.fingerprint,
            masks,
        }
    }

    /// Recursive simplification for [`QuantizedModel::prune`]: a split whose
    /// cut lies entirely above (or at/below) the reachable bin range of its
    /// feature collapses to one child.
    fn simplify(&self, at: usize, lo: &[u16], hi: &[u16]) -> TmpNode {
        if self.leaf[at] {
            return TmpNode::Leaf {
                value: self.value[at],
            };
        }
        let node = self.nodes[at];
        let f = (node >> 48) as usize;
        let cut = (node >> 32) as u16;
        let left = (node as u32) as usize;
        if hi[f] < cut {
            // Every reachable bin goes left.
            return self.simplify(left, lo, hi);
        }
        if lo[f] >= cut {
            // Every reachable bin goes right (also collapses cut-0 splits,
            // which can never send anything left).
            return self.simplify(left + 1, lo, hi);
        }
        TmpNode::Split {
            feature: f as u16,
            cut,
            raw: self.raw_threshold[at],
            left: Box::new(self.simplify(left, lo, hi)),
            right: Box::new(self.simplify(left + 1, lo, hi)),
        }
    }

    /// Number of features the source model was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Width of an encoded row: `num_features`, but at least 1 so the
    /// synthetic nodes of constant trees always have a bin to read.
    pub fn encoded_width(&self) -> usize {
        self.num_features.max(1)
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total packed nodes (includes one synthetic node per constant tree).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// True when every split threshold coincided with a grid bound at
    /// compile time, making quantized scores bit-equal to the flat walk
    /// (see the module docs). Always true when the model was trained on
    /// the grid it was compiled against.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Fingerprint of the [`BinMap`] this model was compiled against
    /// (matches [`BinMap::fingerprint`]).
    pub fn grid_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Approximate resident bytes of the compiled model, for
    /// metadata-footprint accounting.
    pub fn approximate_bytes(&self) -> usize {
        let mask_bytes = self.masks.as_ref().map_or(0, |m| {
            m.cuts.len() * 12
                + m.masks32.len() * 4
                + (m.feat_off.len() + m.used.len()) * 4
                + m.leaf_value.len() * 8
                + m.leaf_base.len() * 4
        });
        self.nodes.len() * 8
            + self.value.len() * 8
            + self.raw_threshold.len() * 4
            + self.leaf.len()
            + (self.roots.len() + self.depth.len()) * 4
            + self.grid.iter().map(|g| g.len() * 4).sum::<usize>()
            + mask_bytes
    }

    /// Encoded bin of a present, non-NaN value: the number of grid bounds
    /// `< v`.
    #[inline]
    fn encode_value(&self, f: usize, v: f32) -> u16 {
        self.grid[f].partition_point(|&b| b < v) as u16
    }

    /// Encodes one raw row into u16 bins, reusing `out` as scratch (the
    /// hot-path encoder: no allocation after the first call). Short rows
    /// and NaN encode as [`MISSING_BIN`]; `±inf` encode past the grid ends,
    /// matching the flat walk's compare semantics.
    pub fn encode_row_into(&self, row: &[f32], out: &mut Vec<u16>) {
        out.clear();
        out.extend((0..self.num_features).map(|f| match row.get(f) {
            Some(&v) if !v.is_nan() => self.encode_value(f, v),
            _ => MISSING_BIN,
        }));
        if self.num_features == 0 {
            out.push(MISSING_BIN);
        }
    }

    /// Encodes a batch of rows into one packed row-major bin buffer with
    /// stride [`QuantizedModel::encoded_width`] — done once, outside the
    /// serving loop, so the hot path only ever touches u16 bins.
    pub fn encode_rows(&self, rows: &[Vec<f32>]) -> Vec<u16> {
        let mut packed = Vec::with_capacity(rows.len() * self.encoded_width());
        let mut scratch = Vec::new();
        for row in rows {
            self.encode_row_into(row, &mut scratch);
            packed.extend_from_slice(&scratch);
        }
        packed
    }

    /// Walks one tree for one encoded row (fixed-depth, self-looping
    /// leaves).
    #[inline]
    fn walk(&self, tree: usize, bins: &[u16]) -> f64 {
        let mut at = self.roots[tree] as usize;
        for _ in 0..self.depth[tree] {
            let node = self.nodes[at];
            let f = (node >> 48) as usize;
            let cut = (node >> 32) as u16;
            at = ((node as u32) + u32::from(bins[f] >= cut)) as usize;
        }
        self.value[at]
    }

    /// Raw additive score for one encoded row; bit-equal to
    /// [`FlatModel::predict_raw`] when [`QuantizedModel::is_exact`] holds.
    ///
    /// # Panics
    ///
    /// Panics if `bins.len() != self.encoded_width()`.
    pub fn predict_raw_binned(&self, bins: &[u16]) -> f64 {
        assert_eq!(
            bins.len(),
            self.encoded_width(),
            "encoded row width must match encoded_width()"
        );
        let mut acc = 0.0f64;
        for t in 0..self.roots.len() {
            acc += self.walk(t, bins);
        }
        self.init_score + acc
    }

    /// Probability of the positive class for one encoded row; bit-equal to
    /// [`FlatModel::predict_proba`] when [`QuantizedModel::is_exact`] holds.
    pub fn predict_proba_binned(&self, bins: &[u16]) -> f64 {
        sigmoid(self.predict_raw_binned(bins))
    }

    /// Batch-kernel shape diagnostics: `(trees, mask entries, max depth)`.
    /// Mask entries is 0 when the walk fallback serves the ensemble.
    #[doc(hidden)]
    pub fn kernel_stats(&self) -> (usize, usize, usize) {
        (
            self.roots.len(),
            self.masks.as_ref().map_or(0, |m| m.cuts.len()),
            self.depth.iter().copied().max().unwrap_or(0) as usize,
        )
    }

    /// The batch kernel: accumulates per-row tree sums (no `init_score`)
    /// into `out` through the mask tables when available (module docs),
    /// falling back to the fixed-depth interleaved walk with [`BLOCK`] row
    /// cursors for ensembles the tables cannot represent. Both kernels
    /// accumulate per row in tree order, so the final scores keep the flat
    /// walk's f64 association and the two kernels are bit-equal.
    fn accumulate_binned(&self, rows: &[u16], out: &mut [f64]) {
        let stride = self.encoded_width();
        assert_eq!(
            rows.len(),
            out.len() * stride,
            "rows must be row-major with stride encoded_width()"
        );
        if let Some(tables) = &self.masks {
            self.accumulate_masked(tables, rows, out);
            return;
        }
        out.fill(0.0);
        let mut cursors = [0u32; BLOCK];
        let mut done = 0usize;
        while done < out.len() {
            let n = (out.len() - done).min(BLOCK);
            let block = &rows[done * stride..(done + n) * stride];
            let out_block = &mut out[done..done + n];
            for (&root, &depth) in self.roots.iter().zip(self.depth.iter()) {
                cursors[..n].fill(root);
                for _ in 0..depth {
                    for (j, cur) in cursors[..n].iter_mut().enumerate() {
                        let node = self.nodes[*cur as usize];
                        let f = (node >> 48) as usize;
                        let cut = (node >> 32) as u16;
                        let bin = block[j * stride + f];
                        *cur = (node as u32) + u32::from(bin >= cut);
                    }
                }
                for (acc, &cur) in out_block.iter_mut().zip(cursors[..n].iter()) {
                    *acc += self.value[cur as usize];
                }
            }
            done += n;
        }
    }

    /// The mask kernel: for each row, every tree's leaf-candidate
    /// bitvector starts all-ones; one pass over the feature-grouped entry
    /// list ANDs each tree's candidates with either the entry's mask
    /// (`bin >= cut`: the row bypasses the left subtree) or all-ones. The
    /// row's bin is hoisted into a register per feature; `bin - cut` is
    /// negative exactly when the row stays left, and its sign, spread
    /// across the word, ORs the mask into a no-op — a pure arithmetic
    /// select with nothing data-dependent for branch prediction to lose
    /// on. The exit leaf of tree `t` is the lowest surviving bit.
    /// [`MISSING_BIN`] exceeds every cut, so missing features apply every
    /// mask on their feature — exactly the walk's "missing goes right".
    fn accumulate_masked(&self, tables: &MaskTables, rows: &[u16], out: &mut [f64]) {
        if tables.masks32.is_empty() {
            self.accumulate_masked_scalar(tables, rows, out);
        } else {
            self.accumulate_masked_block(tables, rows, out);
        }
    }

    /// The 8-lane block kernel: eight rows' bins are transposed to column
    /// major, every tree's eight u32 candidate words live in one 32-byte
    /// slab, and each entry ANDs all eight lanes with a branchless
    /// arithmetic select (`bin - cut` is negative exactly when the row
    /// stays left; the sign spread across the word ORs the mask into a
    /// no-op). Fixed-trip 8-lane inner loops with no data-dependent
    /// control flow — the autovectorizer's favorite food — and the entry
    /// stream is read once per block, not once per row. A short tail
    /// block pads with its last row; the padded lanes are computed and
    /// discarded.
    fn accumulate_masked_block(&self, tables: &MaskTables, rows: &[u16], out: &mut [f64]) {
        const LANES: usize = 8;
        let stride = self.encoded_width();
        let ntrees = self.roots.len();
        let mut cand: Vec<[u32; LANES]> = vec![[u32::MAX; LANES]; ntrees];
        let mut cols: Vec<[u16; LANES]> = vec![[0; LANES]; stride];
        let mut done = 0usize;
        while done < out.len() {
            let live = (out.len() - done).min(LANES);
            for &f in &tables.used {
                let f = f as usize;
                for (l, slot) in cols[f].iter_mut().enumerate() {
                    let r = done + l.min(live - 1);
                    *slot = rows[r * stride + f];
                }
            }
            cand.fill([u32::MAX; LANES]);
            for &f in &tables.used {
                let f = f as usize;
                let col = &cols[f];
                let lo = tables.feat_off[f] as usize;
                let hi = tables.feat_off[f + 1] as usize;
                for e in lo..hi {
                    let cut = i32::from(tables.cuts[e]);
                    let mask = tables.masks32[e];
                    let slab = &mut cand[usize::from(tables.trees[e])];
                    for (c, &bin) in slab.iter_mut().zip(col) {
                        let below = ((i32::from(bin) - cut) >> 31) as u32;
                        *c &= mask | below;
                    }
                }
            }
            // Lane-interleaved gather: eight independent f64 add chains
            // advance together (tree-major), so the serial fadd latency of
            // one lane overlaps the other seven. Each lane still sums its
            // leaves in tree order — the same association as the walk.
            let mut sums = [0.0f64; LANES];
            for (t, slab) in cand.iter().enumerate() {
                let base = tables.leaf_base[t];
                for (s, &v) in sums.iter_mut().zip(slab) {
                    *s += tables.leaf_value[(base + v.trailing_zeros()) as usize];
                }
            }
            out[done..done + live].copy_from_slice(&sums[..live]);
            done += live;
        }
    }

    /// Scalar u64 variant of the mask kernel for ensembles with a tree
    /// wider than 32 leaves: same entry stream, same arithmetic select,
    /// one row at a time.
    fn accumulate_masked_scalar(&self, tables: &MaskTables, rows: &[u16], out: &mut [f64]) {
        let stride = self.encoded_width();
        let mut candidates = vec![u64::MAX; self.roots.len()];
        for (i, acc) in out.iter_mut().enumerate() {
            let row = &rows[i * stride..(i + 1) * stride];
            candidates.fill(u64::MAX);
            for (f, &bin) in row.iter().enumerate() {
                let lo = tables.feat_off[f] as usize;
                let hi = tables.feat_off[f + 1] as usize;
                let b = i64::from(bin);
                for e in lo..hi {
                    let below = (b - i64::from(tables.cuts[e])) >> 63;
                    candidates[usize::from(tables.trees[e])] &= tables.masks[e] | below as u64;
                }
            }
            let mut sum = 0.0f64;
            for (t, &v) in candidates.iter().enumerate() {
                let leaf = tables.leaf_base[t] + v.trailing_zeros();
                sum += tables.leaf_value[leaf as usize];
            }
            *acc = sum;
        }
    }

    /// Raw additive scores for a packed batch of encoded rows (stride
    /// [`QuantizedModel::encoded_width`]); each output is bit-equal to
    /// [`QuantizedModel::predict_raw_binned`] on the same row.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != out.len() * self.encoded_width()`.
    pub fn predict_raw_binned_batch(&self, rows: &[u16], out: &mut [f64]) {
        self.accumulate_binned(rows, out);
        for acc in out.iter_mut() {
            *acc += self.init_score;
        }
    }

    /// Probabilities for a packed batch of encoded rows; bit-equal to
    /// [`FlatModel::predict_proba_batch`] on the raw rows when
    /// [`QuantizedModel::is_exact`] holds.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != out.len() * self.encoded_width()`.
    pub fn predict_proba_binned_batch(&self, rows: &[u16], out: &mut [f64]) {
        self.accumulate_binned(rows, out);
        for acc in out.iter_mut() {
            *acc = sigmoid(self.init_score + *acc);
        }
    }

    /// True when `row` avoids every split's disagreement window
    /// `(snap(threshold), threshold]` — a *sufficient* condition for the
    /// quantized score to be bit-equal to the flat walk on this row (every
    /// compare, visited or not, agrees). Verification aid for tests; not a
    /// hot-path API.
    pub fn quantization_agrees(&self, row: &[f32]) -> bool {
        for at in 0..self.nodes.len() {
            if self.leaf[at] {
                continue;
            }
            let node = self.nodes[at];
            let f = (node >> 48) as usize;
            let cut = (node >> 32) as u16;
            let Some(&v) = row.get(f) else { continue };
            if v.is_nan() {
                continue;
            }
            let t = self.raw_threshold[at];
            let snap = if cut == 0 {
                f32::NEG_INFINITY
            } else {
                self.grid[f][usize::from(cut) - 1]
            };
            if v > snap && v <= t {
                return false;
            }
        }
        true
    }
}

impl Model {
    /// Compiles the ensemble for quantized serving against a frozen grid:
    /// shorthand for `QuantizedModel::compile(&self.flatten(), map)`.
    pub fn quantize(&self, map: &BinMap) -> QuantizedModel {
        QuantizedModel::compile(&self.flatten(), map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train, Dataset, GbdtParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(seed: u64, n: usize, d: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-5.0f32..5.0)).collect())
            .collect();
        let labels: Vec<f32> = rows
            .iter()
            .map(|r| {
                let s: f32 = r
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v * (i as f32 - 1.0))
                    .sum();
                (s > 0.0) as u8 as f32
            })
            .collect();
        (rows, labels)
    }

    #[test]
    fn same_grid_compile_is_exact_and_bit_equal() {
        for seed in 0..6u64 {
            let d = 2 + (seed as usize % 4);
            let (rows, labels) = random_dataset(seed, 400, d);
            let data = Dataset::from_rows(rows.clone(), labels).unwrap();
            let mut params = GbdtParams::lfo_paper();
            params.seed = seed;
            let model = train(&data, &params);
            let flat = model.flatten();
            let map = BinMap::fit(&data, params.max_bins);
            let quant = QuantizedModel::compile(&flat, &map);
            assert!(
                quant.is_exact(),
                "seed {seed}: training grid must snap exactly"
            );
            assert_eq!(quant.grid_fingerprint(), map.fingerprint());
            let mut bins = Vec::new();
            for row in rows.iter().take(120) {
                quant.encode_row_into(row, &mut bins);
                assert_eq!(
                    quant.predict_proba_binned(&bins).to_bits(),
                    flat.predict_proba(row).to_bits(),
                    "seed {seed}"
                );
                assert_eq!(
                    quant.predict_raw_binned(&bins).to_bits(),
                    flat.predict_raw(row).to_bits(),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn batch_kernel_matches_single_row_bit_for_bit() {
        let (rows, labels) = random_dataset(42, 700, 3);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let params = GbdtParams::lfo_paper();
        let model = train(&data, &params);
        let map = BinMap::fit(&data, params.max_bins);
        let quant = model.quantize(&map);
        let packed = quant.encode_rows(&rows);
        let mut out = vec![0.0f64; rows.len()];
        quant.predict_proba_binned_batch(&packed, &mut out);
        let mut bins = Vec::new();
        for (row, &p) in rows.iter().zip(&out) {
            quant.encode_row_into(row, &mut bins);
            assert_eq!(p.to_bits(), quant.predict_proba_binned(&bins).to_bits());
        }
        // And bit-equal to the flat batch (exact regime).
        let stride = model.num_features();
        let packed_raw: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let mut flat_out = vec![0.0f64; rows.len()];
        model
            .flatten()
            .predict_proba_batch(&packed_raw, &mut flat_out);
        for (a, b) in out.iter().zip(&flat_out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(packed_raw.len(), out.len() * stride);
    }

    #[test]
    fn short_rows_and_inf_padding_take_the_right_branch() {
        let (rows, labels) = random_dataset(7, 300, 4);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let params = GbdtParams::lfo_paper();
        let model = train(&data, &params);
        let map = BinMap::fit(&data, params.max_bins);
        let flat = model.flatten();
        let quant = model.quantize(&map);
        let mut bins = Vec::new();
        for short in [&[][..], &[0.5][..], &[0.5, -1.0][..]] {
            quant.encode_row_into(short, &mut bins);
            assert_eq!(
                quant.predict_proba_binned(&bins).to_bits(),
                flat.predict_proba(short).to_bits()
            );
        }
        let padded = [0.5, f32::INFINITY, f32::INFINITY, f32::INFINITY];
        let mut padded_bins = Vec::new();
        quant.encode_row_into(&padded, &mut padded_bins);
        quant.encode_row_into(&[0.5], &mut bins);
        assert_eq!(
            quant.predict_proba_binned(&padded_bins).to_bits(),
            quant.predict_proba_binned(&bins).to_bits()
        );
    }

    #[test]
    fn constant_model_compiles_and_scores() {
        let rows: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
        let data = Dataset::from_rows(rows, vec![1.0; 50]).unwrap();
        let params = GbdtParams::lfo_paper();
        let model = train(&data, &params);
        let map = BinMap::fit(&data, params.max_bins);
        let quant = model.quantize(&map);
        let mut bins = Vec::new();
        quant.encode_row_into(&[3.0], &mut bins);
        assert_eq!(
            quant.predict_proba_binned(&bins).to_bits(),
            model.predict_proba(&[3.0]).to_bits()
        );
        let packed = quant.encode_rows(&[vec![3.0], vec![11.0]]);
        let mut out = vec![0.0; 2];
        quant.predict_proba_binned_batch(&packed, &mut out);
        assert_eq!(out[0].to_bits(), model.predict_proba(&[3.0]).to_bits());
        assert_eq!(out[1].to_bits(), model.predict_proba(&[11.0]).to_bits());
    }

    #[test]
    fn oversized_trees_use_the_walk_fallback_and_stay_bit_equal() {
        let (rows, labels) = random_dataset(31, 4_000, 3);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let mut params = GbdtParams::lfo_paper();
        params.num_iterations = 4;
        params.num_leaves = 96;
        params.min_data_in_leaf = 1;
        let model = train(&data, &params);
        let map = BinMap::fit(&data, params.max_bins);
        let quant = model.quantize(&map);
        // Leaf counts per tree pick the kernel: > 64 leaves in any tree
        // drops the mask tables and the batch path walks instead.
        let max_leaves = (0..quant.num_trees())
            .map(|t| {
                let lo = quant.roots[t] as usize;
                let hi = quant
                    .roots
                    .get(t + 1)
                    .map(|&r| r as usize)
                    .unwrap_or(quant.nodes.len());
                quant.leaf[lo..hi].iter().filter(|&&l| l).count()
            })
            .max()
            .unwrap();
        assert!(
            max_leaves > 64,
            "fixture must exceed the mask-kernel leaf budget (got {max_leaves})"
        );
        assert!(
            quant.masks.is_none(),
            "oversized trees must drop the tables"
        );
        // Whichever kernel runs, batch scores stay bit-equal to the walk.
        let flat = model.flatten();
        let sample = &rows[..600];
        let packed = quant.encode_rows(sample);
        let mut out = vec![0.0f64; sample.len()];
        quant.predict_proba_binned_batch(&packed, &mut out);
        for (row, &p) in sample.iter().zip(&out) {
            assert_eq!(p.to_bits(), flat.predict_proba(row).to_bits());
        }
    }

    #[test]
    fn mask_kernel_is_active_for_paper_sized_trees() {
        let (rows, labels) = random_dataset(17, 500, 3);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let params = GbdtParams::lfo_paper();
        let model = train(&data, &params);
        let map = BinMap::fit(&data, params.max_bins);
        let quant = model.quantize(&map);
        assert!(
            quant.masks.is_some(),
            "31-leaf trees must use the mask kernel"
        );
        // Pruning rebuilds the tables for the simplified trees.
        let pruned = quant.prune(&[Predicate::range(0, -1.0, 1.0)]);
        assert!(pruned.masks.is_some());
    }

    #[test]
    #[ignore = "manual kernel profiling aid"]
    fn kernel_profile() {
        use std::time::Instant;
        let (rows, labels) = random_dataset(3, 6000, 53);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let params = GbdtParams::lfo_paper();
        let model = train(&data, &params);
        let map = BinMap::fit(&data, params.max_bins);
        let quant = model.quantize(&map);
        let (trees, entries, depth) = quant.kernel_stats();
        println!("trees {trees}  entries {entries}  depth {depth}");
        let mut packed = Vec::new();
        let mut bins = Vec::new();
        for row in &rows {
            quant.encode_row_into(row, &mut bins);
            packed.extend_from_slice(&bins);
        }
        let n = rows.len();

        let reps = 100;
        let mut out = vec![0.0f64; n];
        let t0 = Instant::now();
        for _ in 0..reps {
            quant.predict_raw_binned_batch(&packed, &mut out);
        }
        println!(
            "full kernel: {:.1} ns/row (sink {})",
            t0.elapsed().as_secs_f64() / (reps * n) as f64 * 1e9,
            out[0]
        );
    }

    #[test]
    fn prune_preserves_scores_on_predicate_satisfying_rows() {
        let (rows, labels) = random_dataset(9, 500, 4);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let params = GbdtParams::lfo_paper();
        let model = train(&data, &params);
        let map = BinMap::fit(&data, params.max_bins);
        let quant = model.quantize(&map);
        // Invariant: feature 1 always within [-1, 1].
        let pruned = quant.prune(&[Predicate::range(1, -1.0, 1.0)]);
        assert!(
            pruned.num_nodes() < quant.num_nodes(),
            "a binding range predicate must drop branches ({} vs {})",
            pruned.num_nodes(),
            quant.num_nodes()
        );
        let mut bins = Vec::new();
        for row in rows.iter().filter(|r| (-1.0..=1.0).contains(&r[1])) {
            quant.encode_row_into(row, &mut bins);
            assert_eq!(
                pruned.predict_proba_binned(&bins).to_bits(),
                quant.predict_proba_binned(&bins).to_bits()
            );
        }
    }

    #[test]
    fn prune_with_no_predicates_is_score_preserving() {
        let (rows, labels) = random_dataset(13, 400, 3);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let params = GbdtParams::lfo_paper();
        let model = train(&data, &params);
        let map = BinMap::fit(&data, params.max_bins);
        let quant = model.quantize(&map);
        let pruned = quant.prune(&[]);
        let mut bins = Vec::new();
        for row in rows.iter().take(100) {
            quant.encode_row_into(row, &mut bins);
            assert_eq!(
                pruned.predict_proba_binned(&bins).to_bits(),
                quant.predict_proba_binned(&bins).to_bits()
            );
        }
    }

    #[test]
    fn mismatched_grid_agrees_off_boundary_windows() {
        let (rows, labels) = random_dataset(21, 500, 3);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let params = GbdtParams::lfo_paper();
        let model = train(&data, &params);
        let flat = model.flatten();
        // A grid fit on *different* data: snapping is inexact.
        let (other_rows, other_labels) = random_dataset(99, 300, 3);
        let other = Dataset::from_rows(other_rows, other_labels).unwrap();
        let coarse = BinMap::fit(&other, 16);
        let quant = QuantizedModel::compile(&flat, &coarse);
        assert!(!quant.is_exact() || quant.num_nodes() == 0);
        let mut bins = Vec::new();
        let mut checked = 0usize;
        for row in &rows {
            quant.encode_row_into(row, &mut bins);
            let q = quant.predict_proba_binned(&bins);
            let f = flat.predict_proba(row);
            if quant.quantization_agrees(row) {
                assert_eq!(
                    q.to_bits(),
                    f.to_bits(),
                    "row off every boundary window must score bit-equal"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no rows avoided the boundary windows");
    }
}
