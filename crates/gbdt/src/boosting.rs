//! Gradient boosting with logistic loss.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::{BinnedDataset, Dataset};
use crate::metrics::log_loss;
use crate::tree::{grow_tree, GrowParams, Tree};

/// Boosting hyperparameters.
///
/// Defaults mirror LightGBM's, as the paper relies on them: 100 iterations
/// (the paper's LFO lowers this to 30 — see [`GbdtParams::lfo_paper`]),
/// learning rate 0.1, 31 leaves, unlimited depth, `min_data_in_leaf` 20.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Number of boosting iterations (trees).
    pub num_iterations: usize,
    /// Shrinkage applied to every leaf output.
    pub learning_rate: f64,
    /// Maximum leaves per tree (leaf-wise growth).
    pub num_leaves: usize,
    /// Maximum tree depth; 0 = unlimited.
    pub max_depth: usize,
    /// Minimum rows per leaf.
    pub min_data_in_leaf: usize,
    /// Minimum hessian mass per leaf.
    pub min_sum_hessian: f64,
    /// L2 regularization on leaf values.
    pub lambda_l2: f64,
    /// Fraction of features considered per tree.
    pub feature_fraction: f64,
    /// Fraction of rows sampled per bagging round.
    pub bagging_fraction: f64,
    /// Re-sample rows every this many iterations; 0 disables bagging.
    pub bagging_freq: usize,
    /// Histogram bins per feature (max 255).
    pub max_bins: usize,
    /// Seed for feature/row subsampling.
    pub seed: u64,
    /// Stop when the validation loss has not improved for this many
    /// iterations; 0 disables early stopping.
    pub early_stopping_rounds: usize,
    /// Scoped threads for per-feature histogram building and split search
    /// inside the tree grower; 1 (the default) runs the exact serial path.
    /// Any value produces bit-identical models — the per-feature work is
    /// independent and reductions happen in feature order — so this only
    /// trades wall-clock for cores.
    pub num_threads: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            num_iterations: 100,
            learning_rate: 0.1,
            num_leaves: 31,
            max_depth: 0,
            min_data_in_leaf: 20,
            min_sum_hessian: 1e-3,
            lambda_l2: 0.0,
            feature_fraction: 1.0,
            bagging_fraction: 1.0,
            bagging_freq: 0,
            max_bins: 255,
            seed: 0,
            early_stopping_rounds: 0,
            num_threads: 1,
        }
    }
}

impl GbdtParams {
    /// The paper's configuration: LightGBM defaults with `num_iterations`
    /// lowered from 100 to 30 "to further speed up our prototyping" (§2.3).
    pub fn lfo_paper() -> Self {
        GbdtParams {
            num_iterations: 30,
            ..Default::default()
        }
    }
}

/// A trained boosted-tree binary classifier.
///
/// `PartialEq` compares the full structure (init score, every node of every
/// tree, feature count) — two equal models produce bit-identical
/// predictions, which is what the artifact round-trip tests assert.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Model {
    init_score: f64,
    trees: Vec<Tree>,
    num_features: usize,
}

impl Model {
    /// Raw additive score (log-odds) for one row.
    pub fn predict_raw(&self, row: &[f32]) -> f64 {
        self.init_score + self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, row: &[f32]) -> f64 {
        sigmoid(self.predict_raw(row))
    }

    /// Probabilities for a batch of rows.
    pub fn predict_batch(&self, rows: &[Vec<f32>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_proba(r)).collect()
    }

    /// The trees of the ensemble.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Number of features the model was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The constant initial score (prior log-odds).
    pub fn init_score(&self) -> f64 {
        self.init_score
    }

    /// Truncates the ensemble to its first `n` trees (used with early
    /// stopping to keep the best iteration).
    pub fn truncate(&mut self, n: usize) {
        self.trees.truncate(n);
    }
}

/// The logistic function.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-iteration training diagnostics from [`train_with_validation`].
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Training log-loss after each iteration.
    pub train_loss: Vec<f64>,
    /// Validation log-loss after each iteration (empty without validation).
    pub valid_loss: Vec<f64>,
    /// Iteration (1-based tree count) with the best validation loss.
    pub best_iteration: usize,
    /// Whether early stopping fired.
    pub stopped_early: bool,
}

/// Trains a model on `data`.
pub fn train(data: &Dataset, params: &GbdtParams) -> Model {
    train_impl(data, None, params).0
}

/// Trains with a validation set, reporting per-iteration losses and
/// truncating the model to the best iteration when early stopping is on.
pub fn train_with_validation(
    data: &Dataset,
    valid: &Dataset,
    params: &GbdtParams,
) -> (Model, TrainReport) {
    train_impl(data, Some(valid), params)
}

fn train_impl(
    data: &Dataset,
    valid: Option<&Dataset>,
    params: &GbdtParams,
) -> (Model, TrainReport) {
    assert!(params.num_leaves >= 2, "num_leaves must be at least 2");
    assert!(
        (0.0..=1.0).contains(&params.feature_fraction) && params.feature_fraction > 0.0,
        "feature_fraction must be in (0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&params.bagging_fraction) && params.bagging_fraction > 0.0,
        "bagging_fraction must be in (0, 1]"
    );

    let n = data.num_rows();
    let binned = BinnedDataset::build(data, params.max_bins);
    let labels = data.labels();

    // Prior log-odds as the initial score.
    let positives: f64 = labels.iter().map(|&y| y as f64).sum();
    let p = (positives / n as f64).clamp(1e-6, 1.0 - 1e-6);
    let init_score = (p / (1.0 - p)).ln();

    let mut scores = vec![init_score; n];
    let mut grad = vec![0.0f64; n];
    let mut hess = vec![0.0f64; n];
    let mut rng = StdRng::seed_from_u64(params.seed);

    let mut model = Model {
        init_score,
        trees: Vec::with_capacity(params.num_iterations),
        num_features: data.num_features(),
    };
    let mut report = TrainReport::default();

    // Validation bookkeeping.
    let valid_rows: Vec<Vec<f32>> = valid
        .map(|v| (0..v.num_rows()).map(|r| v.row(r)).collect())
        .unwrap_or_default();
    let mut valid_scores = vec![init_score; valid_rows.len()];
    let mut best_valid = f64::INFINITY;
    let mut best_iteration = 0usize;

    let grow = GrowParams {
        num_leaves: params.num_leaves,
        max_depth: params.max_depth,
        min_data_in_leaf: params.min_data_in_leaf,
        min_sum_hessian: params.min_sum_hessian,
        lambda_l2: params.lambda_l2,
        leaf_scale: params.learning_rate,
        threads: params.num_threads.max(1),
    };

    let all_rows: Vec<u32> = (0..n as u32).collect();
    let mut bagged_rows: Vec<u32> = all_rows.clone();

    for iteration in 0..params.num_iterations {
        // Logistic-loss gradients.
        for r in 0..n {
            let prob = sigmoid(scores[r]);
            grad[r] = prob - labels[r] as f64;
            hess[r] = (prob * (1.0 - prob)).max(1e-16);
        }

        // Bagging: re-sample rows every `bagging_freq` iterations.
        let use_bagging = params.bagging_freq > 0 && params.bagging_fraction < 1.0;
        if use_bagging && iteration % params.bagging_freq == 0 {
            let k = ((n as f64) * params.bagging_fraction).ceil() as usize;
            bagged_rows = all_rows.clone();
            bagged_rows.partial_shuffle(&mut rng, k);
            bagged_rows.truncate(k.max(1));
        }
        let mut rows: Vec<u32> = if use_bagging {
            bagged_rows.clone()
        } else {
            all_rows.clone()
        };

        // Feature subsampling.
        let num_features = data.num_features();
        let features: Vec<usize> = if params.feature_fraction < 1.0 {
            let k = ((num_features as f64) * params.feature_fraction).ceil() as usize;
            let mut all: Vec<usize> = (0..num_features).collect();
            all.shuffle(&mut rng);
            all.truncate(k.max(1));
            all
        } else {
            (0..num_features).collect()
        };

        let tree = grow_tree(&binned, &grad, &hess, &mut rows, &features, &grow);

        // Update scores on all rows (not just bagged ones).
        for (r, score) in scores.iter_mut().enumerate().take(n) {
            *score += tree.predict(&data.row(r));
        }
        report.train_loss.push(log_loss(
            &scores.iter().map(|&s| sigmoid(s)).collect::<Vec<_>>(),
            labels,
        ));

        if let Some(v) = valid {
            for (i, row) in valid_rows.iter().enumerate() {
                valid_scores[i] += tree.predict(row);
            }
            let vl = log_loss(
                &valid_scores.iter().map(|&s| sigmoid(s)).collect::<Vec<_>>(),
                v.labels(),
            );
            report.valid_loss.push(vl);
            if vl < best_valid {
                best_valid = vl;
                best_iteration = iteration + 1;
            }
            model.trees.push(tree);
            if params.early_stopping_rounds > 0
                && iteration + 1 - best_iteration >= params.early_stopping_rounds
            {
                report.stopped_early = true;
                break;
            }
        } else {
            model.trees.push(tree);
        }
    }

    if valid.is_some() {
        report.best_iteration = best_iteration.max(1);
        if params.early_stopping_rounds > 0 {
            model.truncate(report.best_iteration);
        }
    } else {
        report.best_iteration = model.trees.len();
    }

    (model, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A noisy, non-linear binary task: y = 1 iff inside a disc.
    fn disc_dataset(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f32 = rng.gen_range(-1.0..1.0);
            let y: f32 = rng.gen_range(-1.0..1.0);
            rows.push(vec![x, y]);
            labels.push(((x * x + y * y) < 0.5) as u8 as f32);
        }
        (rows, labels)
    }

    fn accuracy(model: &Model, rows: &[Vec<f32>], labels: &[f32]) -> f64 {
        let correct = rows
            .iter()
            .zip(labels)
            .filter(|(r, &y)| (model.predict_proba(r) >= 0.5) == (y >= 0.5))
            .count();
        correct as f64 / rows.len() as f64
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (rows, labels) = disc_dataset(2000, 1);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let (test_rows, test_labels) = disc_dataset(1000, 2);
        let acc = accuracy(&model, &test_rows, &test_labels);
        assert!(acc > 0.93, "accuracy = {acc}");
    }

    #[test]
    fn more_iterations_reduce_training_loss() {
        let (rows, labels) = disc_dataset(1000, 3);
        let data = Dataset::from_rows(rows.clone(), labels.clone()).unwrap();
        let valid = Dataset::from_rows(rows, labels).unwrap();
        let (_, report) = train_with_validation(&data, &valid, &GbdtParams::default());
        let first = report.train_loss[0];
        let last = *report.train_loss.last().unwrap();
        assert!(last < first * 0.5, "first {first}, last {last}");
        // Training loss is (weakly) monotone decreasing for logistic GBDT
        // on the training set without bagging.
        for w in report.train_loss.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "loss increased: {w:?}");
        }
    }

    #[test]
    fn all_positive_labels_yield_constant_high_probability() {
        let rows: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
        let data = Dataset::from_rows(rows, vec![1.0; 50]).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        assert!(model.predict_proba(&[25.0]) > 0.99);
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, labels) = disc_dataset(500, 4);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let mut params = GbdtParams::lfo_paper();
        params.feature_fraction = 0.5;
        params.bagging_fraction = 0.7;
        params.bagging_freq = 1;
        params.seed = 99;
        let a = train(&data, &params);
        let b = train(&data, &params);
        for i in 0..20 {
            let row = vec![i as f32 / 20.0, 0.3];
            assert_eq!(a.predict_proba(&row), b.predict_proba(&row));
        }
    }

    #[test]
    fn num_threads_does_not_change_the_model() {
        let (rows, labels) = disc_dataset(600, 11);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let mut params = GbdtParams::lfo_paper();
        params.feature_fraction = 0.5;
        params.bagging_fraction = 0.7;
        params.bagging_freq = 1;
        params.seed = 42;
        let serial = train(&data, &params);
        for threads in [2, 4, 9] {
            let mut p = params.clone();
            p.num_threads = threads;
            let par = train(&data, &p);
            for i in 0..40 {
                let row = vec![i as f32 / 40.0 - 0.5, 0.2];
                assert_eq!(
                    serial.predict_proba(&row).to_bits(),
                    par.predict_proba(&row).to_bits(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn different_seeds_with_subsampling_differ_slightly() {
        let (rows, labels) = disc_dataset(500, 5);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let mut pa = GbdtParams::lfo_paper();
        pa.bagging_fraction = 0.5;
        pa.bagging_freq = 1;
        pa.seed = 1;
        let mut pb = pa.clone();
        pb.seed = 2;
        let a = train(&data, &pa);
        let b = train(&data, &pb);
        let differs = (0..50).any(|i| {
            let row = vec![i as f32 / 50.0 - 0.5, 0.1];
            (a.predict_proba(&row) - b.predict_proba(&row)).abs() > 1e-12
        });
        assert!(differs);
    }

    #[test]
    fn early_stopping_truncates_model() {
        let (rows, labels) = disc_dataset(400, 6);
        let (vrows, vlabels) = disc_dataset(200, 7);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let valid = Dataset::from_rows(vrows, vlabels).unwrap();
        let params = GbdtParams {
            num_iterations: 200,
            early_stopping_rounds: 5,
            ..Default::default()
        };
        let (model, report) = train_with_validation(&data, &valid, &params);
        assert_eq!(model.trees().len(), report.best_iteration);
        assert!(model.trees().len() <= 200);
    }

    #[test]
    fn predict_batch_matches_single() {
        let (rows, labels) = disc_dataset(300, 8);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let batch = model.predict_batch(&rows[..10]);
        for (i, &p) in batch.iter().enumerate() {
            assert_eq!(p, model.predict_proba(&rows[i]));
        }
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let (rows, labels) = disc_dataset(300, 9);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let json = serde_json::to_string(&model).unwrap();
        let back: Model = serde_json::from_str(&json).unwrap();
        // serde_json's fast float parser can be 1 ulp off; model persistence
        // only needs approximate fidelity.
        for row in rows.iter().take(20) {
            assert!((model.predict_proba(row) - back.predict_proba(row)).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_sane() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
    }
}
