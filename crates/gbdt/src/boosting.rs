//! Gradient boosting with logistic loss.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::{BinMap, BinnedDataset, Dataset};
use crate::metrics::log_loss;
use crate::tree::{grow_tree, GrowParams, Tree};

/// Boosting hyperparameters.
///
/// Defaults mirror LightGBM's, as the paper relies on them: 100 iterations
/// (the paper's LFO lowers this to 30 — see [`GbdtParams::lfo_paper`]),
/// learning rate 0.1, 31 leaves, unlimited depth, `min_data_in_leaf` 20.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Number of boosting iterations (trees).
    pub num_iterations: usize,
    /// Shrinkage applied to every leaf output.
    pub learning_rate: f64,
    /// Maximum leaves per tree (leaf-wise growth).
    pub num_leaves: usize,
    /// Maximum tree depth; 0 = unlimited.
    pub max_depth: usize,
    /// Minimum rows per leaf.
    pub min_data_in_leaf: usize,
    /// Minimum hessian mass per leaf.
    pub min_sum_hessian: f64,
    /// L2 regularization on leaf values.
    pub lambda_l2: f64,
    /// Fraction of features considered per tree.
    pub feature_fraction: f64,
    /// Fraction of rows sampled per bagging round.
    pub bagging_fraction: f64,
    /// Re-sample rows every this many iterations; 0 disables bagging.
    pub bagging_freq: usize,
    /// Histogram bins per feature (max 255).
    pub max_bins: usize,
    /// Seed for feature/row subsampling.
    pub seed: u64,
    /// Stop when the validation loss has not improved for this many
    /// iterations; 0 disables early stopping.
    pub early_stopping_rounds: usize,
    /// Scoped threads for per-feature histogram building and split search
    /// inside the tree grower; 1 (the default) runs the exact serial path.
    /// Any value produces bit-identical models — the per-feature work is
    /// independent and reductions happen in feature order — so this only
    /// trades wall-clock for cores.
    pub num_threads: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            num_iterations: 100,
            learning_rate: 0.1,
            num_leaves: 31,
            max_depth: 0,
            min_data_in_leaf: 20,
            min_sum_hessian: 1e-3,
            lambda_l2: 0.0,
            feature_fraction: 1.0,
            bagging_fraction: 1.0,
            bagging_freq: 0,
            max_bins: 255,
            seed: 0,
            early_stopping_rounds: 0,
            num_threads: 1,
        }
    }
}

impl GbdtParams {
    /// The paper's configuration: LightGBM defaults with `num_iterations`
    /// lowered from 100 to 30 "to further speed up our prototyping" (§2.3).
    pub fn lfo_paper() -> Self {
        GbdtParams {
            num_iterations: 30,
            ..Default::default()
        }
    }
}

/// A trained boosted-tree binary classifier.
///
/// `PartialEq` compares the full structure (init score, every node of every
/// tree, feature count) — two equal models produce bit-identical
/// predictions, which is what the artifact round-trip tests assert.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Model {
    init_score: f64,
    trees: Vec<Tree>,
    num_features: usize,
}

impl Model {
    /// Raw additive score (log-odds) for one row.
    pub fn predict_raw(&self, row: &[f32]) -> f64 {
        self.init_score + self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, row: &[f32]) -> f64 {
        sigmoid(self.predict_raw(row))
    }

    /// Probabilities for a batch of rows.
    pub fn predict_batch(&self, rows: &[Vec<f32>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_proba(r)).collect()
    }

    /// The trees of the ensemble.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Number of features the model was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The constant initial score (prior log-odds).
    pub fn init_score(&self) -> f64 {
        self.init_score
    }

    /// Truncates the ensemble to its first `n` trees (used with early
    /// stopping to keep the best iteration).
    pub fn truncate(&mut self, n: usize) {
        self.trees.truncate(n);
    }

    /// A copy keeping only the *newest* `n` trees (truncate-oldest) — the
    /// ensemble-size cap for long incremental runs. The oldest trees carry
    /// the stalest picture of the workload, so they are the ones dropped.
    /// Keeps at least the full model when `n >= len`.
    pub fn retained_newest(&self, n: usize) -> Model {
        let keep = n.min(self.trees.len());
        Model {
            init_score: self.init_score,
            trees: self.trees[self.trees.len() - keep..].to_vec(),
            num_features: self.num_features,
        }
    }

    /// Continues boosting from this model: appends `params.num_iterations`
    /// new trees with the score vector seeded from this ensemble's raw
    /// margins. See [`train_continued`].
    pub fn continue_training(
        &self,
        data: &Dataset,
        params: &GbdtParams,
        bin_map: Option<&BinMap>,
    ) -> Model {
        train_continued(self, data, params, bin_map)
    }
}

/// The logistic function.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-iteration training diagnostics from [`train_with_validation`].
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Training log-loss after each iteration.
    pub train_loss: Vec<f64>,
    /// Validation log-loss after each iteration (empty without validation).
    pub valid_loss: Vec<f64>,
    /// Iteration (1-based count of trees *added by this call*) with the
    /// best validation loss.
    pub best_iteration: usize,
    /// Whether early stopping fired.
    pub stopped_early: bool,
    /// Total per-row validation score updates performed: the validation
    /// margins are kept incrementally (only the newest tree's contribution
    /// is added per iteration), so this is exactly
    /// `valid_loss.len() * valid.num_rows()` — O(T·rows), never O(T²·rows).
    pub valid_score_updates: usize,
}

/// Trains a model on `data`.
pub fn train(data: &Dataset, params: &GbdtParams) -> Model {
    train_impl(data, None, params, None, None).0
}

/// Trains with a validation set, reporting per-iteration losses and
/// truncating the model to the best iteration when early stopping is on.
pub fn train_with_validation(
    data: &Dataset,
    valid: &Dataset,
    params: &GbdtParams,
) -> (Model, TrainReport) {
    train_impl(data, Some(valid), params, None, None)
}

/// Continues boosting from `base`: the score vector is seeded from the
/// base ensemble's raw margins (scored once via [`crate::FlatModel`] batch
/// inference) and `params.num_iterations` *new* trees are appended. With
/// no subsampling, `train_continued(&train(data, k), data, m, ..)` is
/// bit-identical to `train(data, k + m)` — the boosting loop literally
/// resumes where it stopped.
///
/// `bin_map` optionally supplies frozen bin boundaries so the new window
/// is quantized against a fixed grid instead of re-deriving quantiles.
///
/// # Panics
///
/// Panics if `base` was trained on a different feature count.
pub fn train_continued(
    base: &Model,
    data: &Dataset,
    params: &GbdtParams,
    bin_map: Option<&BinMap>,
) -> Model {
    train_impl(data, None, params, Some(base), bin_map).0
}

/// [`train_continued`] with a validation set; early stopping truncates
/// only the trees added by this call, never the base ensemble.
pub fn train_continued_with_validation(
    base: &Model,
    data: &Dataset,
    valid: &Dataset,
    params: &GbdtParams,
    bin_map: Option<&BinMap>,
) -> (Model, TrainReport) {
    train_impl(data, Some(valid), params, Some(base), bin_map)
}

fn train_impl(
    data: &Dataset,
    valid: Option<&Dataset>,
    params: &GbdtParams,
    base: Option<&Model>,
    bin_map: Option<&BinMap>,
) -> (Model, TrainReport) {
    assert!(params.num_leaves >= 2, "num_leaves must be at least 2");
    assert!(
        (0.0..=1.0).contains(&params.feature_fraction) && params.feature_fraction > 0.0,
        "feature_fraction must be in (0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&params.bagging_fraction) && params.bagging_fraction > 0.0,
        "bagging_fraction must be in (0, 1]"
    );

    let n = data.num_rows();
    let binned = match bin_map {
        Some(map) => BinnedDataset::from_map(data, map),
        None => BinnedDataset::build(data, params.max_bins),
    };
    let labels = data.labels();

    // Initial score: the prior log-odds for a fresh model, the base
    // ensemble's own init score when continuing (the appended trees keep
    // correcting the same additive expansion).
    let init_score = match base {
        Some(b) => {
            assert_eq!(
                b.num_features(),
                data.num_features(),
                "base model was trained on a different feature count"
            );
            b.init_score()
        }
        None => {
            // Prior log-odds as the initial score.
            let positives: f64 = labels.iter().map(|&y| y as f64).sum();
            let p = (positives / n as f64).clamp(1e-6, 1.0 - 1e-6);
            (p / (1.0 - p)).ln()
        }
    };

    // Per-row margins. Fresh training starts at the init score; continued
    // training seeds from the base ensemble's margins, batch-scored once
    // through the flat layout in training order — bit-identical to the
    // scores an uninterrupted run would hold at this point.
    let mut scores = vec![init_score; n];
    let flat_base = base.map(|b| b.flatten());
    if let Some(flat) = &flat_base {
        let packed: Vec<f32> = (0..n).flat_map(|r| data.row(r)).collect();
        flat.training_margins(&packed, &mut scores);
    }
    let mut grad = vec![0.0f64; n];
    let mut hess = vec![0.0f64; n];
    let mut rng = StdRng::seed_from_u64(params.seed);

    let base_len = base.map_or(0, |b| b.trees().len());
    let mut model = Model {
        init_score,
        trees: match base {
            Some(b) => {
                let mut trees = Vec::with_capacity(base_len + params.num_iterations);
                trees.extend_from_slice(b.trees());
                trees
            }
            None => Vec::with_capacity(params.num_iterations),
        },
        num_features: data.num_features(),
    };
    let mut report = TrainReport::default();

    // Validation bookkeeping: rows are materialized once, and the
    // validation margins are updated incrementally (newest tree only) per
    // iteration — the same O(T·rows) scheme as the training scores.
    let valid_rows: Vec<Vec<f32>> = valid
        .map(|v| (0..v.num_rows()).map(|r| v.row(r)).collect())
        .unwrap_or_default();
    let mut valid_scores = vec![init_score; valid_rows.len()];
    if let Some(flat) = &flat_base {
        let packed: Vec<f32> = valid_rows.iter().flat_map(|r| r.iter().copied()).collect();
        flat.training_margins(&packed, &mut valid_scores);
    }
    let mut best_valid = f64::INFINITY;
    let mut best_iteration = 0usize;

    let grow = GrowParams {
        num_leaves: params.num_leaves,
        max_depth: params.max_depth,
        min_data_in_leaf: params.min_data_in_leaf,
        min_sum_hessian: params.min_sum_hessian,
        lambda_l2: params.lambda_l2,
        leaf_scale: params.learning_rate,
        threads: params.num_threads.max(1),
    };

    let all_rows: Vec<u32> = (0..n as u32).collect();
    let mut bagged_rows: Vec<u32> = all_rows.clone();

    for iteration in 0..params.num_iterations {
        // Logistic-loss gradients.
        for r in 0..n {
            let prob = sigmoid(scores[r]);
            grad[r] = prob - labels[r] as f64;
            hess[r] = (prob * (1.0 - prob)).max(1e-16);
        }

        // Bagging: re-sample rows every `bagging_freq` iterations.
        let use_bagging = params.bagging_freq > 0 && params.bagging_fraction < 1.0;
        if use_bagging && iteration % params.bagging_freq == 0 {
            let k = ((n as f64) * params.bagging_fraction).ceil() as usize;
            bagged_rows = all_rows.clone();
            bagged_rows.partial_shuffle(&mut rng, k);
            bagged_rows.truncate(k.max(1));
        }
        let mut rows: Vec<u32> = if use_bagging {
            bagged_rows.clone()
        } else {
            all_rows.clone()
        };

        // Feature subsampling.
        let num_features = data.num_features();
        let features: Vec<usize> = if params.feature_fraction < 1.0 {
            let k = ((num_features as f64) * params.feature_fraction).ceil() as usize;
            let mut all: Vec<usize> = (0..num_features).collect();
            all.shuffle(&mut rng);
            all.truncate(k.max(1));
            all
        } else {
            (0..num_features).collect()
        };

        let tree = grow_tree(&binned, &grad, &hess, &mut rows, &features, &grow);

        // Update scores on all rows (not just bagged ones).
        for (r, score) in scores.iter_mut().enumerate().take(n) {
            *score += tree.predict(&data.row(r));
        }
        report.train_loss.push(log_loss(
            &scores.iter().map(|&s| sigmoid(s)).collect::<Vec<_>>(),
            labels,
        ));

        if let Some(v) = valid {
            for (i, row) in valid_rows.iter().enumerate() {
                valid_scores[i] += tree.predict(row);
            }
            report.valid_score_updates += valid_rows.len();
            let vl = log_loss(
                &valid_scores.iter().map(|&s| sigmoid(s)).collect::<Vec<_>>(),
                v.labels(),
            );
            report.valid_loss.push(vl);
            if vl < best_valid {
                best_valid = vl;
                best_iteration = iteration + 1;
            }
            model.trees.push(tree);
            if params.early_stopping_rounds > 0
                && iteration + 1 - best_iteration >= params.early_stopping_rounds
            {
                report.stopped_early = true;
                break;
            }
        } else {
            model.trees.push(tree);
        }
    }

    if valid.is_some() {
        report.best_iteration = best_iteration.max(1);
        if params.early_stopping_rounds > 0 {
            // Early stopping only discards trees added by this call; the
            // base ensemble is never truncated.
            model.truncate(base_len + report.best_iteration);
        }
    } else {
        report.best_iteration = model.trees.len() - base_len;
    }

    (model, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A noisy, non-linear binary task: y = 1 iff inside a disc.
    fn disc_dataset(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f32 = rng.gen_range(-1.0..1.0);
            let y: f32 = rng.gen_range(-1.0..1.0);
            rows.push(vec![x, y]);
            labels.push(((x * x + y * y) < 0.5) as u8 as f32);
        }
        (rows, labels)
    }

    fn accuracy(model: &Model, rows: &[Vec<f32>], labels: &[f32]) -> f64 {
        let correct = rows
            .iter()
            .zip(labels)
            .filter(|(r, &y)| (model.predict_proba(r) >= 0.5) == (y >= 0.5))
            .count();
        correct as f64 / rows.len() as f64
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (rows, labels) = disc_dataset(2000, 1);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let (test_rows, test_labels) = disc_dataset(1000, 2);
        let acc = accuracy(&model, &test_rows, &test_labels);
        assert!(acc > 0.93, "accuracy = {acc}");
    }

    #[test]
    fn more_iterations_reduce_training_loss() {
        let (rows, labels) = disc_dataset(1000, 3);
        let data = Dataset::from_rows(rows.clone(), labels.clone()).unwrap();
        let valid = Dataset::from_rows(rows, labels).unwrap();
        let (_, report) = train_with_validation(&data, &valid, &GbdtParams::default());
        let first = report.train_loss[0];
        let last = *report.train_loss.last().unwrap();
        assert!(last < first * 0.5, "first {first}, last {last}");
        // Training loss is (weakly) monotone decreasing for logistic GBDT
        // on the training set without bagging.
        for w in report.train_loss.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "loss increased: {w:?}");
        }
    }

    #[test]
    fn all_positive_labels_yield_constant_high_probability() {
        let rows: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
        let data = Dataset::from_rows(rows, vec![1.0; 50]).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        assert!(model.predict_proba(&[25.0]) > 0.99);
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, labels) = disc_dataset(500, 4);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let mut params = GbdtParams::lfo_paper();
        params.feature_fraction = 0.5;
        params.bagging_fraction = 0.7;
        params.bagging_freq = 1;
        params.seed = 99;
        let a = train(&data, &params);
        let b = train(&data, &params);
        for i in 0..20 {
            let row = vec![i as f32 / 20.0, 0.3];
            assert_eq!(a.predict_proba(&row), b.predict_proba(&row));
        }
    }

    #[test]
    fn num_threads_does_not_change_the_model() {
        let (rows, labels) = disc_dataset(600, 11);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let mut params = GbdtParams::lfo_paper();
        params.feature_fraction = 0.5;
        params.bagging_fraction = 0.7;
        params.bagging_freq = 1;
        params.seed = 42;
        let serial = train(&data, &params);
        for threads in [2, 4, 9] {
            let mut p = params.clone();
            p.num_threads = threads;
            let par = train(&data, &p);
            for i in 0..40 {
                let row = vec![i as f32 / 40.0 - 0.5, 0.2];
                assert_eq!(
                    serial.predict_proba(&row).to_bits(),
                    par.predict_proba(&row).to_bits(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn different_seeds_with_subsampling_differ_slightly() {
        let (rows, labels) = disc_dataset(500, 5);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let mut pa = GbdtParams::lfo_paper();
        pa.bagging_fraction = 0.5;
        pa.bagging_freq = 1;
        pa.seed = 1;
        let mut pb = pa.clone();
        pb.seed = 2;
        let a = train(&data, &pa);
        let b = train(&data, &pb);
        let differs = (0..50).any(|i| {
            let row = vec![i as f32 / 50.0 - 0.5, 0.1];
            (a.predict_proba(&row) - b.predict_proba(&row)).abs() > 1e-12
        });
        assert!(differs);
    }

    #[test]
    fn early_stopping_truncates_model() {
        let (rows, labels) = disc_dataset(400, 6);
        let (vrows, vlabels) = disc_dataset(200, 7);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let valid = Dataset::from_rows(vrows, vlabels).unwrap();
        let params = GbdtParams {
            num_iterations: 200,
            early_stopping_rounds: 5,
            ..Default::default()
        };
        let (model, report) = train_with_validation(&data, &valid, &params);
        assert_eq!(model.trees().len(), report.best_iteration);
        assert!(model.trees().len() <= 200);
    }

    #[test]
    fn predict_batch_matches_single() {
        let (rows, labels) = disc_dataset(300, 8);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let batch = model.predict_batch(&rows[..10]);
        for (i, &p) in batch.iter().enumerate() {
            assert_eq!(p, model.predict_proba(&rows[i]));
        }
    }

    #[test]
    fn continued_training_is_bit_identical_to_uninterrupted() {
        // Without subsampling the RNG never fires, so stopping after k
        // trees and continuing for m more must reproduce train(k + m)
        // exactly — same trees, same structure, bit for bit.
        let (rows, labels) = disc_dataset(800, 21);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        for (k, m) in [(10, 20), (1, 29), (15, 15)] {
            let mut head = GbdtParams::lfo_paper();
            head.num_iterations = k;
            let mut tail = GbdtParams::lfo_paper();
            tail.num_iterations = m;
            let mut full = GbdtParams::lfo_paper();
            full.num_iterations = k + m;

            let base = train(&data, &head);
            let continued = train_continued(&base, &data, &tail, None);
            let uninterrupted = train(&data, &full);
            assert_eq!(continued, uninterrupted, "k={k} m={m}");
        }
    }

    #[test]
    fn continued_training_with_frozen_map_matches_refit_on_same_data() {
        // Fitting the map on the same window it bins is exactly build():
        // the frozen path changes nothing when the data hasn't moved.
        let (rows, labels) = disc_dataset(600, 22);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let mut head = GbdtParams::lfo_paper();
        head.num_iterations = 10;
        let base = train(&data, &head);
        let mut tail = GbdtParams::lfo_paper();
        tail.num_iterations = 5;
        let map = crate::BinMap::fit(&data, tail.max_bins);
        let frozen = train_continued(&base, &data, &tail, Some(&map));
        let refit = train_continued(&base, &data, &tail, None);
        assert_eq!(frozen, refit);
    }

    #[test]
    fn continue_training_appends_and_retained_newest_truncates_oldest() {
        let (rows, labels) = disc_dataset(500, 23);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let mut params = GbdtParams::lfo_paper();
        params.num_iterations = 8;
        let base = train(&data, &params);
        let grown = base.continue_training(&data, &params, None);
        assert_eq!(grown.trees().len(), 16);
        assert_eq!(&grown.trees()[..8], base.trees());

        let capped = grown.retained_newest(10);
        assert_eq!(capped.trees().len(), 10);
        assert_eq!(capped.trees(), &grown.trees()[6..]);
        assert_eq!(capped.init_score(), grown.init_score());
        // n >= len keeps everything.
        assert_eq!(grown.retained_newest(100), grown);
    }

    #[test]
    fn continued_early_stopping_never_truncates_the_base() {
        let (rows, labels) = disc_dataset(400, 24);
        let (vrows, vlabels) = disc_dataset(200, 25);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let valid = Dataset::from_rows(vrows, vlabels).unwrap();
        let mut head = GbdtParams::lfo_paper();
        head.num_iterations = 12;
        let base = train(&data, &head);
        let tail = GbdtParams {
            num_iterations: 100,
            early_stopping_rounds: 3,
            ..Default::default()
        };
        let (model, report) = train_continued_with_validation(&base, &data, &valid, &tail, None);
        assert!(model.trees().len() >= base.trees().len());
        assert_eq!(
            model.trees().len(),
            base.trees().len() + report.best_iteration
        );
        assert_eq!(&model.trees()[..12], base.trees());
    }

    #[test]
    fn validation_margins_are_updated_incrementally() {
        // One update per (iteration, validation row): the margins carry
        // over between iterations instead of being re-scored from scratch.
        let (rows, labels) = disc_dataset(400, 26);
        let (vrows, vlabels) = disc_dataset(150, 27);
        let data = Dataset::from_rows(rows, labels).unwrap();
        let valid = Dataset::from_rows(vrows, vlabels).unwrap();
        let params = GbdtParams::lfo_paper();
        let (_, report) = train_with_validation(&data, &valid, &params);
        assert_eq!(report.valid_loss.len(), params.num_iterations);
        assert_eq!(
            report.valid_score_updates,
            report.valid_loss.len() * valid.num_rows()
        );
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let (rows, labels) = disc_dataset(300, 9);
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let model = train(&data, &GbdtParams::lfo_paper());
        let json = serde_json::to_string(&model).unwrap();
        let back: Model = serde_json::from_str(&json).unwrap();
        // serde_json's fast float parser can be 1 ulp off; model persistence
        // only needs approximate fidelity.
        for row in rows.iter().take(20) {
            assert!((model.predict_proba(row) - back.predict_proba(row)).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_sane() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
    }
}
