//! Property tests for the quantized serving engine's equivalence contract:
//!
//! - compiled against the model's own training grid, quantized inference is
//!   **bit-equal** to the flat f32 walk on arbitrary rows (including NaN,
//!   ±inf, and values far outside the training distribution);
//! - compiled against a *mismatched* grid, rows where no feature value
//!   lands inside a snapped-threshold boundary window
//!   ([`QuantizedModel::quantization_agrees`]) still score bit-equal — so
//!   admission decisions can differ only on boundary-window rows, the
//!   documented ≤1-bin delta (DESIGN.md §12);
//! - predicate pruning is score-preserving on every row that satisfies the
//!   predicate.

use std::sync::OnceLock;

use gbdt::{train, BinMap, Dataset, FlatModel, GbdtParams, Predicate, QuantizedModel};
use proptest::prelude::*;

struct Fixture {
    flat: FlatModel,
    /// Compiled against the training grid: exact by construction.
    exact: QuantizedModel,
    /// Exact engine specialized to `features[0] ∈ [0, 400]`.
    pruned: QuantizedModel,
    /// Compiled against a grid fit on different data: thresholds snap.
    skewed: QuantizedModel,
}

const NUM_FEATURES: usize = 4;

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let rows: Vec<Vec<f32>> = (0..800)
            .map(|r| {
                (0..NUM_FEATURES)
                    .map(|c| ((r * 37 + c * 101) % 509) as f32 * 0.75)
                    .collect()
            })
            .collect();
        let labels: Vec<f32> = rows
            .iter()
            .map(|r| (r[0] + r[1] < r[2] + r[3]) as u8 as f32)
            .collect();
        let data = Dataset::from_rows(rows, labels).unwrap();
        let params = GbdtParams::lfo_paper();
        let model = train(&data, &params);
        let map = BinMap::fit(&data, params.max_bins);
        let exact = model.quantize(&map);
        assert!(exact.is_exact(), "training grid must compile exactly");
        let pruned = exact.prune(&[Predicate::range(0, 0.0, 400.0)]);

        let skew_rows: Vec<Vec<f32>> = (0..300)
            .map(|r| {
                (0..NUM_FEATURES)
                    .map(|c| ((r * 53 + c * 71) % 487) as f32 * 0.631 + 0.17)
                    .collect()
            })
            .collect();
        let skew_data = Dataset::from_rows(skew_rows, vec![0.0; 300]).unwrap();
        let skewed = model.quantize(&BinMap::fit(&skew_data, 64));

        Fixture {
            flat: model.flatten(),
            exact,
            pruned,
            skewed,
        }
    })
}

/// One feature value: mostly finite (well beyond the training range on both
/// sides), with occasional NaN / ±inf to exercise the missing-value path.
fn arb_feature() -> impl Strategy<Value = f32> {
    (0u8..11, -500.0f32..3_000.0f32).prop_map(|(kind, finite)| match kind {
        8 => f32::NAN,
        9 => f32::INFINITY,
        10 => f32::NEG_INFINITY,
        _ => finite,
    })
}

fn arb_row() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(arb_feature(), NUM_FEATURES)
}

/// A row satisfying the fixture's pruning predicate: feature 0 in range,
/// the rest arbitrary (the predicate constrains only feature 0).
fn arb_predicate_row() -> impl Strategy<Value = Vec<f32>> {
    (
        0.0f32..=400.0f32,
        proptest::collection::vec(arb_feature(), NUM_FEATURES - 1),
    )
        .prop_map(|(first, rest)| {
            let mut row = vec![first];
            row.extend(rest);
            row
        })
}

fn score_binned(quant: &QuantizedModel, row: &[f32]) -> f64 {
    let mut bins = Vec::new();
    quant.encode_row_into(row, &mut bins);
    quant.predict_proba_binned(&bins)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn same_grid_quantization_is_bit_equal_on_arbitrary_rows(row in arb_row()) {
        let f = fixture();
        let want = f.flat.predict_proba(&row);
        let got = score_binned(&f.exact, &row);
        prop_assert_eq!(got.to_bits(), want.to_bits());
        // The exact compile has no boundary windows at all.
        prop_assert!(f.exact.quantization_agrees(&row));
    }

    #[test]
    fn mismatched_grid_disagrees_only_inside_boundary_windows(
        row in arb_row(),
        cutoff in 0.05f64..0.95f64,
    ) {
        let f = fixture();
        let want = f.flat.predict_proba(&row);
        let got = score_binned(&f.skewed, &row);
        if f.skewed.quantization_agrees(&row) {
            // No feature in any snapped-threshold window: bit-equal scores,
            // so the admission decision matches at every cutoff.
            prop_assert_eq!(got.to_bits(), want.to_bits());
            prop_assert_eq!(got >= cutoff, want >= cutoff);
        } else {
            // Boundary-window row: the documented ≤1-bin delta regime. The
            // score must still be a probability; the decision may differ.
            prop_assert!((0.0..=1.0).contains(&got), "score {got} not a probability");
        }
        // Contrapositive of the contract: any score difference must be
        // attributable to a boundary window.
        if got.to_bits() != want.to_bits() {
            prop_assert!(!f.skewed.quantization_agrees(&row));
        }
    }

    #[test]
    fn pruning_preserves_scores_on_predicate_satisfying_rows(row in arb_predicate_row()) {
        let f = fixture();
        let full = score_binned(&f.exact, &row);
        let pruned = score_binned(&f.pruned, &row);
        prop_assert_eq!(pruned.to_bits(), full.to_bits());
    }
}
