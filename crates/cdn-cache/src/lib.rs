//! # cdn-cache — cache simulator and policy zoo
//!
//! The paper compares LFO against nine caching systems (§3, Figure 6):
//! LRU, LRU-K, LFUDA, S4LRU, GD-Wheel, AdaptSize, Hyperbolic, LHD, and OPT —
//! plus GDSF, RND (random) and RLC (model-free RL caching) in Figure 1.
//! This crate implements all of them behind one [`CachePolicy`] trait,
//! together with the trace-replay simulator that produces byte- and
//! object-hit ratios.
//!
//! Every policy is implemented from its original description (citations on
//! each module); none are wrappers. The simulator counts a request as a
//! *hit* only when the object is fully resident at request time, charges
//! misses regardless of admission, and never lets a policy exceed its byte
//! capacity (checked in debug builds after every request).
//!
//! ## Example
//!
//! ```
//! use cdn_cache::{simulate, SimConfig};
//! use cdn_cache::policies::lru::Lru;
//! use cdn_trace::{GeneratorConfig, TraceGenerator};
//!
//! let trace = TraceGenerator::new(GeneratorConfig::small(1, 10_000)).generate();
//! let mut lru = Lru::new(16 * 1024 * 1024);
//! let result = simulate(&mut lru, trace.requests(), &SimConfig::default());
//! assert!(result.bhr() > 0.0 && result.bhr() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod metrics;
pub mod policies;
pub mod sim;

pub use analysis::WorkloadModel;
pub use cache::{CachePolicy, RequestOutcome};
pub use metrics::{IntervalMetrics, SimResult};
pub use sim::{simulate, SimConfig};
