//! Unbounded cache (diagnostic upper bound; never evicts).

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};

use crate::cache::{CachePolicy, RequestOutcome};

/// A cache that admits everything and never evicts. Its hit ratio is the
/// compulsory-miss ceiling no real policy can beat.
#[derive(Clone, Debug, Default)]
pub struct Infinite {
    used: u64,
    sizes: HashMap<ObjectId, u64>,
}

impl Infinite {
    /// Creates the unbounded cache.
    pub fn new() -> Self {
        Infinite::default()
    }
}

impl CachePolicy for Infinite {
    fn name(&self) -> &'static str {
        "Infinite"
    }

    fn capacity(&self) -> u64 {
        u64::MAX
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.sizes.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.sizes.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        if self.sizes.contains_key(&request.object) {
            return RequestOutcome::Hit;
        }
        self.sizes.insert(request.object, request.size);
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rerequest_hits() {
        let mut c = Infinite::new();
        let r = Request::new(0, 1u64, 1 << 40);
        assert!(!c.handle(&r).is_hit());
        assert!(c.handle(&r).is_hit());
        assert_eq!(c.used(), 1 << 40);
    }
}
