//! RLC — model-free reinforcement-learning caching (the Figure 1 baseline).
//!
//! The paper's Figure 1 reports results "from last year's HotNets workshop
//! [48]" where RL-based caching performs similar to random and LRU, well
//! below the GDSF heuristic. This module reproduces that baseline: a small
//! tabular Q-learning agent decides *admission* (admit / bypass) from a
//! coarse state (object size class × observed frequency class), with LRU
//! eviction underneath.
//!
//! The agent exhibits exactly the pathology the paper describes (§1): the
//! reward for admitting an object — a future hit — "manifests with large
//! delays", so credit is only assigned when the object is requested again
//! (or never, for the long tail of one-hit wonders). Combined with the
//! coarse state and ε-greedy exploration, the learned policy stays close to
//! "admit everything", which is why RLC lands near LRU/RND in Figure 1.

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::{CachePolicy, RequestOutcome};
use crate::policies::util::{Handle, LruList};

/// Size classes (log₄ of size).
const SIZE_CLASSES: usize = 16;
/// Frequency classes (log₂ of observed count, capped).
const FREQ_CLASSES: usize = 6;
/// Actions: 0 = bypass, 1 = admit.
const ACTIONS: usize = 2;

/// Learning rate α.
const ALPHA: f64 = 0.1;
/// Discount γ.
const GAMMA: f64 = 0.9;
/// Exploration rate ε.
const EPSILON: f64 = 0.05;

fn size_class(size: u64) -> usize {
    ((64 - size.max(1).leading_zeros() as usize) / 4).min(SIZE_CLASSES - 1)
}

fn freq_class(count: u64) -> usize {
    (64 - count.max(1).leading_zeros() as usize - 1).min(FREQ_CLASSES - 1)
}

/// Per-object pending credit: the (state, action) whose delayed reward
/// arrives at the object's next request.
#[derive(Clone, Copy, Debug)]
struct Pending {
    state: usize,
    action: usize,
}

/// Tabular Q-learning admission over LRU eviction.
pub struct Rlc {
    capacity: u64,
    used: u64,
    q: Vec<[f64; ACTIONS]>,
    /// Observed request counts (bounded by forgetting, below).
    counts: HashMap<ObjectId, u64>,
    pending: HashMap<ObjectId, Pending>,
    list: LruList,
    index: HashMap<ObjectId, Handle>,
    rng: StdRng,
    requests: u64,
}

impl Rlc {
    /// Creates an RLC cache of `capacity` bytes.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Rlc {
            capacity,
            used: 0,
            q: vec![[0.0; ACTIONS]; SIZE_CLASSES * FREQ_CLASSES],
            counts: HashMap::new(),
            pending: HashMap::new(),
            list: LruList::new(),
            index: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            requests: 0,
        }
    }

    fn state_of(&self, request: &Request) -> usize {
        let count = self.counts.get(&request.object).copied().unwrap_or(0);
        size_class(request.size) * FREQ_CLASSES + freq_class(count + 1)
    }

    fn q_update(&mut self, state: usize, action: usize, reward: f64, next_state: usize) {
        let next_max = self.q[next_state][0].max(self.q[next_state][1]);
        let q = &mut self.q[state][action];
        *q += ALPHA * (reward + GAMMA * next_max - *q);
    }

    /// Settles the delayed reward for the previous decision on `object`.
    fn settle(&mut self, object: ObjectId, hit: bool, next_state: usize) {
        if let Some(p) = self.pending.remove(&object) {
            // A hit repays the earlier admit; a miss after an admit means
            // the admitted bytes were wasted (evicted before reuse).
            let reward = match (p.action, hit) {
                (1, true) => 1.0,   // admit paid off
                (1, false) => -0.2, // admitted bytes were wasted
                _ => 0.0,           // bypass: nothing gained, nothing lost
            };
            self.q_update(p.state, p.action, reward, next_state);
        }
    }
}

impl CachePolicy for Rlc {
    fn name(&self) -> &'static str {
        "RLC"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.index.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        self.requests += 1;
        // Bound auxiliary state: periodically forget cold counters.
        if self.requests.is_multiple_of(1_000_000) {
            self.counts.retain(|_, c| *c > 2);
            let resident = &self.index;
            self.pending.retain(|o, _| resident.contains_key(o));
        }

        let state = self.state_of(request);
        let hit = self.index.contains_key(&request.object);
        self.settle(request.object, hit, state);
        *self.counts.entry(request.object).or_insert(0) += 1;

        if let Some(&h) = self.index.get(&request.object) {
            self.list.move_to_front(h);
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }

        // ε-greedy action selection.
        let action = if self.rng.gen::<f64>() < EPSILON {
            self.rng.gen_range(0..ACTIONS)
        } else if self.q[state][1] >= self.q[state][0] {
            1
        } else {
            0
        };
        self.pending
            .insert(request.object, Pending { state, action });
        if action == 0 {
            return RequestOutcome::Miss { admitted: false };
        }

        while self.used + request.size > self.capacity {
            let (victim, size) = self.list.pop_back().expect("nonempty");
            self.index.remove(&victim);
            self.used -= size;
        }
        let h = self.list.push_front(request.object, request.size);
        self.index.insert(request.object, h);
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn state_classes_are_bounded() {
        assert!(size_class(1) < SIZE_CLASSES);
        assert!(size_class(u64::MAX) < SIZE_CLASSES);
        assert!(freq_class(1) < FREQ_CLASSES);
        assert!(freq_class(u64::MAX) < FREQ_CLASSES);
    }

    #[test]
    fn functions_as_a_cache() {
        let mut c = Rlc::new(1_000, 1);
        let mut hits = 0;
        for i in 0..5_000u64 {
            if c.handle(&req(i % 7, 100)).is_hit() {
                hits += 1;
            }
            assert!(c.used() <= c.capacity());
        }
        // A tiny working set fits: most requests should hit eventually.
        assert!(hits > 3_000, "hits = {hits}");
    }

    #[test]
    fn q_values_move_with_rewards() {
        let mut c = Rlc::new(10_000, 2);
        // Drive a strongly cacheable pattern.
        for _ in 0..2_000 {
            for id in 0..5u64 {
                c.handle(&req(id, 100));
            }
        }
        let any_nonzero = c.q.iter().any(|qs| qs[0] != 0.0 || qs[1] != 0.0);
        assert!(any_nonzero, "Q-table never updated");
    }

    #[test]
    fn underperforms_gdsf_on_mixed_sizes() {
        // The Figure 1 shape: RLC below GDSF.
        use crate::policies::gdsf::Gdsf;
        use crate::sim::{simulate, SimConfig};
        use cdn_trace::{GeneratorConfig, TraceGenerator};
        let trace = TraceGenerator::new(GeneratorConfig::small(3, 30_000)).generate();
        let cache = 4 * 1024 * 1024;
        let mut rlc = Rlc::new(cache, 1);
        let mut gdsf = Gdsf::new(cache);
        let a = simulate(&mut rlc, trace.requests(), &SimConfig::default());
        let b = simulate(&mut gdsf, trace.requests(), &SimConfig::default());
        assert!(
            b.ohr() > a.ohr(),
            "GDSF {} should beat RLC {}",
            b.ohr(),
            a.ohr()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut c = Rlc::new(500, seed);
            (0..3_000u64)
                .filter(|&i| c.handle(&req(i % 13, 50)).is_hit())
                .count()
        };
        assert_eq!(run(11), run(11));
    }
}
