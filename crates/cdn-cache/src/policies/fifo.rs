//! First-in first-out eviction.

use std::collections::{HashMap, VecDeque};

use cdn_trace::{ObjectId, Request};

use crate::cache::{CachePolicy, RequestOutcome};

/// FIFO over a byte capacity: insertion order decides eviction; hits do not
/// refresh position.
#[derive(Clone, Debug)]
pub struct Fifo {
    capacity: u64,
    used: u64,
    queue: VecDeque<ObjectId>,
    sizes: HashMap<ObjectId, u64>,
}

impl Fifo {
    /// Creates a FIFO cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Fifo {
            capacity,
            used: 0,
            queue: VecDeque::new(),
            sizes: HashMap::new(),
        }
    }
}

impl CachePolicy for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.sizes.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.sizes.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        if self.sizes.contains_key(&request.object) {
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.used + request.size > self.capacity {
            let victim = self.queue.pop_front().expect("over capacity, empty queue");
            let size = self.sizes.remove(&victim).expect("queued object has size");
            self.used -= size;
        }
        self.queue.push_back(request.object);
        self.sizes.insert(request.object, request.size);
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn evicts_in_insertion_order_despite_hits() {
        let mut c = Fifo::new(20);
        c.handle(&req(1, 10));
        c.handle(&req(2, 10));
        c.handle(&req(1, 10)); // hit: does NOT refresh
        c.handle(&req(3, 10)); // evicts 1 (oldest insertion)
        assert!(!c.contains(ObjectId(1)));
        assert!(c.contains(ObjectId(2)));
        assert!(c.contains(ObjectId(3)));
    }

    #[test]
    fn oversized_bypasses() {
        let mut c = Fifo::new(5);
        assert_eq!(
            c.handle(&req(1, 6)),
            RequestOutcome::Miss { admitted: false }
        );
        assert_eq!(c.used(), 0);
    }
}
