//! Least-recently-used eviction, admit-everything.

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};

use crate::cache::{CachePolicy, RequestOutcome};
use crate::policies::util::{Handle, LruList};

/// Classic LRU over a byte capacity.
#[derive(Clone, Debug)]
pub struct Lru {
    capacity: u64,
    used: u64,
    list: LruList,
    index: HashMap<ObjectId, Handle>,
}

impl Lru {
    /// Creates an LRU cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Lru {
            capacity,
            used: 0,
            list: LruList::new(),
            index: HashMap::new(),
        }
    }

    fn evict_until_fits(&mut self, incoming: u64) {
        while self.used + incoming > self.capacity {
            let (victim, size) = self
                .list
                .pop_back()
                .expect("over capacity with empty cache");
            self.index.remove(&victim);
            self.used -= size;
        }
    }
}

impl CachePolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.index.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        if let Some(&h) = self.index.get(&request.object) {
            self.list.move_to_front(h);
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        self.evict_until_fits(request.size);
        let h = self.list.push_front(request.object, request.size);
        self.index.insert(request.object, h);
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn hits_on_rerequest() {
        let mut c = Lru::new(100);
        assert!(!c.handle(&req(1, 10)).is_hit());
        assert!(c.handle(&req(1, 10)).is_hit());
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), 10);
    }

    #[test]
    fn evicts_least_recent_first() {
        let mut c = Lru::new(30);
        c.handle(&req(1, 10));
        c.handle(&req(2, 10));
        c.handle(&req(3, 10));
        c.handle(&req(1, 10)); // touch 1, making 2 the LRU
        c.handle(&req(4, 10)); // must evict 2
        assert!(c.contains(ObjectId(1)));
        assert!(!c.contains(ObjectId(2)));
        assert!(c.contains(ObjectId(3)));
        assert!(c.contains(ObjectId(4)));
    }

    #[test]
    fn large_object_may_evict_many() {
        let mut c = Lru::new(30);
        c.handle(&req(1, 10));
        c.handle(&req(2, 10));
        c.handle(&req(3, 10));
        c.handle(&req(4, 30));
        assert_eq!(c.len(), 1);
        assert!(c.contains(ObjectId(4)));
        assert_eq!(c.used(), 30);
    }

    #[test]
    fn oversized_object_bypasses() {
        let mut c = Lru::new(10);
        let out = c.handle(&req(1, 11));
        assert_eq!(out, RequestOutcome::Miss { admitted: false });
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = Lru::new(55);
        for i in 0..100 {
            c.handle(&req(i % 7, 10 + i % 3));
            assert!(c.used() <= c.capacity());
        }
    }
}
