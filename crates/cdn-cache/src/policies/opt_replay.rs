//! Replay of OPT's offline decisions (the "OPT" bar of Figure 6).
//!
//! Takes the per-request admission decisions computed by the `opt` crate's
//! min-cost flow solver and replays them as a cache policy. Because the
//! flow solution respects the capacity constraint by construction, the
//! replay should (almost) never need to evict; an object simply leaves the
//! cache at the request where OPT stops carrying it. The rare exceptions
//! are fractional flow splits, which the replay resolves by refusing
//! admissions that no longer fit (counted for diagnostics).

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};

use crate::cache::{CachePolicy, RequestOutcome};

/// Replays a precomputed admission-decision vector, one entry per request
/// of the trace that will be simulated, in order.
pub struct OptReplay {
    capacity: u64,
    used: u64,
    decisions: Vec<bool>,
    cursor: usize,
    sizes: HashMap<ObjectId, u64>,
    /// Admissions refused because a flow split left no room.
    pub refused_admissions: u64,
}

impl OptReplay {
    /// Creates a replay policy. `decisions[k]` must be OPT's admit decision
    /// for the k-th request that will be passed to [`CachePolicy::handle`].
    pub fn new(capacity: u64, decisions: Vec<bool>) -> Self {
        OptReplay {
            capacity,
            used: 0,
            decisions,
            cursor: 0,
            sizes: HashMap::new(),
            refused_admissions: 0,
        }
    }

    /// Requests replayed so far.
    pub fn position(&self) -> usize {
        self.cursor
    }
}

impl CachePolicy for OptReplay {
    fn name(&self) -> &'static str {
        "OPT"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.sizes.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.sizes.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        assert!(
            self.cursor < self.decisions.len(),
            "replay ran past the decision vector ({} decisions)",
            self.decisions.len()
        );
        let keep = self.decisions[self.cursor];
        self.cursor += 1;

        let was_resident = self.sizes.contains_key(&request.object);
        if was_resident && !keep {
            // OPT stops carrying the object at this request.
            let size = self.sizes.remove(&request.object).expect("resident");
            self.used -= size;
        } else if !was_resident && keep {
            if self.used + request.size <= self.capacity {
                self.sizes.insert(request.object, request.size);
                self.used += request.size;
            } else {
                self.refused_admissions += 1;
                return RequestOutcome::Miss { admitted: false };
            }
        }
        if was_resident {
            RequestOutcome::Hit
        } else {
            RequestOutcome::Miss { admitted: keep }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, id: u64, size: u64) -> Request {
        Request::new(t, id, size)
    }

    #[test]
    fn follows_decisions_exactly() {
        // Trace: a b a b; decisions: admit a, skip b, keep a, skip b.
        let reqs = [req(0, 1, 10), req(1, 2, 10), req(2, 1, 10), req(3, 2, 10)];
        let mut p = OptReplay::new(10, vec![true, false, true, false]);
        assert_eq!(p.handle(&reqs[0]), RequestOutcome::Miss { admitted: true });
        assert_eq!(p.handle(&reqs[1]), RequestOutcome::Miss { admitted: false });
        assert_eq!(p.handle(&reqs[2]), RequestOutcome::Hit);
        assert_eq!(p.handle(&reqs[3]), RequestOutcome::Miss { admitted: false });
        assert_eq!(p.refused_admissions, 0);
    }

    #[test]
    fn drops_object_when_opt_stops_carrying_it() {
        // a admitted, then at its next request OPT decides not to keep it.
        let reqs = [req(0, 1, 10), req(1, 1, 10), req(2, 1, 10)];
        let mut p = OptReplay::new(10, vec![true, false, true]);
        assert!(!p.handle(&reqs[0]).is_hit());
        assert!(p.handle(&reqs[1]).is_hit()); // hit, but evicted after
        assert_eq!(p.used(), 0);
        assert!(!p.handle(&reqs[2]).is_hit()); // re-admitted
        assert_eq!(p.used(), 10);
    }

    #[test]
    fn refuses_when_capacity_would_be_exceeded() {
        let reqs = [req(0, 1, 10), req(1, 2, 10)];
        let mut p = OptReplay::new(15, vec![true, true]);
        p.handle(&reqs[0]);
        assert_eq!(p.handle(&reqs[1]), RequestOutcome::Miss { admitted: false });
        assert_eq!(p.refused_admissions, 1);
    }

    #[test]
    #[should_panic(expected = "ran past")]
    fn panics_past_decision_vector() {
        let mut p = OptReplay::new(10, vec![]);
        p.handle(&req(0, 1, 1));
    }
}
