//! Random eviction (the RND bar of Figure 1).

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::{CachePolicy, RequestOutcome};

/// Admit everything; evict uniformly random residents until the new object
/// fits. The weakest sensible baseline.
#[derive(Clone, Debug)]
pub struct Rnd {
    capacity: u64,
    used: u64,
    /// Dense vector of residents for O(1) random selection.
    objects: Vec<(ObjectId, u64)>,
    index: HashMap<ObjectId, usize>,
    rng: StdRng,
}

impl Rnd {
    /// Creates a random-eviction cache of `capacity` bytes.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Rnd {
            capacity,
            used: 0,
            objects: Vec::new(),
            index: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn evict_random(&mut self) {
        let slot = self.rng.gen_range(0..self.objects.len());
        let (victim, size) = self.objects.swap_remove(slot);
        self.index.remove(&victim);
        if let Some((moved, _)) = self.objects.get(slot) {
            self.index.insert(*moved, slot);
        }
        self.used -= size;
    }
}

impl CachePolicy for Rnd {
    fn name(&self) -> &'static str {
        "RND"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.index.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        if self.index.contains_key(&request.object) {
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.used + request.size > self.capacity {
            self.evict_random();
        }
        self.index.insert(request.object, self.objects.len());
        self.objects.push((request.object, request.size));
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn basic_hit_miss() {
        let mut c = Rnd::new(100, 1);
        assert!(!c.handle(&req(1, 10)).is_hit());
        assert!(c.handle(&req(1, 10)).is_hit());
    }

    #[test]
    fn stays_within_capacity_under_churn() {
        let mut c = Rnd::new(64, 2);
        for i in 0..500 {
            c.handle(&req(i, 7));
            assert!(c.used() <= c.capacity());
        }
        assert!(c.len() > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut c = Rnd::new(40, seed);
            let mut hits = 0;
            for i in 0..300u64 {
                if c.handle(&req(i % 9, 10)).is_hit() {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn index_stays_consistent_after_swap_remove() {
        let mut c = Rnd::new(30, 3);
        for i in 0..100 {
            c.handle(&req(i, 10));
            // Every indexed object must actually be at its recorded slot.
            for (&obj, &slot) in c.index.iter() {
                assert_eq!(c.objects[slot].0, obj);
            }
        }
    }
}
