//! LHD — Least Hit Density (Beckmann, Chen & Cidon, USENIX NSDI 2018).
//!
//! LHD ranks objects by *hit density*: the probability that keeping the
//! object yields a hit, per byte of cache space it occupies over its
//! remaining lifetime. The policy learns age-conditioned hit statistics
//! online: every hit and every eviction is recorded against the object's
//! current age (time since last access), bucketed into coarse log₂ classes.
//! The hit density of a resident object of age `a` and size `s` is then
//!
//! `density(a, s) = P(hit | age class of a) / s`
//!
//! with `P(hit | class)` estimated from the recorded hit/eviction counts.
//! Eviction samples a fixed number of residents (64, as in the paper) and
//! evicts the minimum-density one. Counters decay periodically so the
//! statistics track workload drift.

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::{CachePolicy, RequestOutcome};

/// Eviction sample size.
const SAMPLE: usize = 64;
/// Number of log₂ age classes.
const AGE_CLASSES: usize = 40;
/// Decay counters every this many requests.
const DECAY_INTERVAL: u64 = 100_000;
/// Multiplier applied at decay.
const DECAY: f64 = 0.5;

#[derive(Clone, Copy, Debug)]
struct Entry {
    size: u64,
    last_access: u64,
}

/// LHD with sampled eviction and log-bucketed age statistics.
#[derive(Clone, Debug)]
pub struct Lhd {
    capacity: u64,
    used: u64,
    clock: u64,
    objects: Vec<(ObjectId, Entry)>,
    index: HashMap<ObjectId, usize>,
    /// Per age class: hits observed at that age.
    hits: [f64; AGE_CLASSES],
    /// Per age class: evictions of objects at that age.
    evictions: [f64; AGE_CLASSES],
    rng: StdRng,
}

fn age_class(age: u64) -> usize {
    (64 - age.max(1).leading_zeros() as usize - 1).min(AGE_CLASSES - 1)
}

impl Lhd {
    /// Creates an LHD cache of `capacity` bytes.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Lhd {
            capacity,
            used: 0,
            clock: 0,
            objects: Vec::new(),
            index: HashMap::new(),
            hits: [0.0; AGE_CLASSES],
            evictions: [0.0; AGE_CLASSES],
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Estimated hit probability for an age class, with an optimistic prior
    /// for classes with no data (young classes start out protected).
    fn hit_probability(&self, class: usize) -> f64 {
        let h = self.hits[class];
        let e = self.evictions[class];
        // Laplace-style smoothing: one phantom hit keeps unexplored classes
        // from being starved before any data arrives.
        (h + 1.0) / (h + e + 2.0)
    }

    fn density(&self, entry: &Entry) -> f64 {
        let age = self.clock.saturating_sub(entry.last_access);
        self.hit_probability(age_class(age)) / entry.size as f64
    }

    fn evict_sampled(&mut self) {
        debug_assert!(!self.objects.is_empty());
        let n = self.objects.len();
        let mut victim_slot = 0usize;
        let mut victim_density = f64::INFINITY;
        // Fewer residents than the sample size: examine all of them (the
        // exact minimum) instead of drawing with replacement.
        for k in 0..SAMPLE.min(n) {
            let slot = if n <= SAMPLE {
                k
            } else {
                self.rng.gen_range(0..n)
            };
            let d = self.density(&self.objects[slot].1);
            if d < victim_density {
                victim_density = d;
                victim_slot = slot;
            }
        }
        let (victim, entry) = self.objects.swap_remove(victim_slot);
        self.index.remove(&victim);
        if let Some((moved, _)) = self.objects.get(victim_slot) {
            self.index.insert(*moved, victim_slot);
        }
        let age = self.clock.saturating_sub(entry.last_access);
        self.evictions[age_class(age)] += 1.0;
        self.used -= entry.size;
    }

    fn maybe_decay(&mut self) {
        if self.clock.is_multiple_of(DECAY_INTERVAL) {
            for h in self.hits.iter_mut() {
                *h *= DECAY;
            }
            for e in self.evictions.iter_mut() {
                *e *= DECAY;
            }
        }
    }
}

impl CachePolicy for Lhd {
    fn name(&self) -> &'static str {
        "LHD"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.index.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        self.clock += 1;
        self.maybe_decay();
        if let Some(&slot) = self.index.get(&request.object) {
            let entry = &mut self.objects[slot].1;
            let age = self.clock.saturating_sub(entry.last_access);
            entry.last_access = self.clock;
            self.hits[age_class(age)] += 1.0;
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.used + request.size > self.capacity {
            self.evict_sampled();
        }
        let entry = Entry {
            size: request.size,
            last_access: self.clock,
        };
        self.index.insert(request.object, self.objects.len());
        self.objects.push((request.object, entry));
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn age_classes_are_log_bucketed() {
        assert_eq!(age_class(0), 0);
        assert_eq!(age_class(1), 0);
        assert_eq!(age_class(2), 1);
        assert_eq!(age_class(3), 1);
        assert_eq!(age_class(4), 2);
        assert_eq!(age_class(1 << 20), 20);
        assert_eq!(age_class(u64::MAX), AGE_CLASSES - 1);
    }

    #[test]
    fn small_hot_objects_outlive_large_cold_ones() {
        let mut c = Lhd::new(1_000, 1);
        // Train: small objects get re-hit at short ages, large don't.
        let mut t = 0u64;
        for round in 0..3_000u64 {
            // Hot small pair.
            c.handle(&Request::new(t, round % 5, 50));
            t += 1;
            // One-shot large object.
            c.handle(&Request::new(t, 100_000 + round, 400));
            t += 1;
        }
        // After training, the hot small set should be resident.
        let resident_small = (0..5).filter(|&i| c.contains(ObjectId(i))).count();
        assert!(
            resident_small >= 4,
            "only {resident_small} hot objects resident"
        );
    }

    #[test]
    fn capacity_respected() {
        let mut c = Lhd::new(333, 2);
        for i in 0..1_000u64 {
            c.handle(&req(i % 29, 10 + i % 50));
            assert!(c.used() <= 333);
        }
    }

    #[test]
    fn decay_keeps_counters_bounded() {
        let mut c = Lhd::new(100, 3);
        for i in 0..(DECAY_INTERVAL * 2) {
            c.handle(&req(i % 3, 10));
        }
        let total: f64 = c.hits.iter().sum::<f64>() + c.evictions.iter().sum::<f64>();
        assert!(total < 2.0 * DECAY_INTERVAL as f64);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut c = Lhd::new(200, seed);
            (0..2_000u64)
                .filter(|&i| c.handle(&req(i % 31, 15)).is_hit())
                .count()
        };
        assert_eq!(run(5), run(5));
    }
}
