//! LRU-K (O'Neil, O'Neil & Weikum, SIGMOD 1993).
//!
//! Evicts the object with the oldest K-th most recent reference (maximum
//! "backward K-distance"). Objects referenced fewer than K times have
//! infinite backward K-distance and are evicted first, oldest last-access
//! first — which gives LRU-K its scan resistance: a one-shot object never
//! outranks anything referenced K times.
//!
//! Reference history is retained for a limited window after eviction
//! ("retained information period"), as the paper prescribes, so that a
//! quickly re-fetched object recovers its K-distance.

use std::collections::{BTreeSet, HashMap, VecDeque};

use cdn_trace::{ObjectId, Request};

use crate::cache::{CachePolicy, RequestOutcome};

/// How many evicted-object histories to retain.
const RETAINED_HISTORIES: usize = 10_000;

/// LRU-K with configurable K (K = 2 is the classic choice).
#[derive(Clone, Debug)]
pub struct LruK {
    capacity: u64,
    used: u64,
    k: usize,
    clock: u64,
    /// Reference-time history per known object (most recent first, ≤ K).
    history: HashMap<ObjectId, VecDeque<u64>>,
    /// Residents: object → (priority key in `queue`, size).
    resident: HashMap<ObjectId, (u64, u64)>,
    /// (kth_recent_time, object): ascending = oldest K-th reference first,
    /// which is the eviction order. Objects with fewer than K references
    /// are keyed by their *last* access time minus a large bias so they
    /// sort before any full-history object.
    queue: BTreeSet<(u64, ObjectId)>,
    /// FIFO of non-resident histories for bounded retention.
    retained: VecDeque<ObjectId>,
}

/// Bias separating "fewer than K references" keys from full-history keys.
const FULL_HISTORY_BIAS: u64 = 1 << 62;

impl LruK {
    /// Creates an LRU-K cache of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(capacity: u64, k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        LruK {
            capacity,
            used: 0,
            k,
            clock: 0,
            history: HashMap::new(),
            resident: HashMap::new(),
            queue: BTreeSet::new(),
            retained: VecDeque::new(),
        }
    }

    /// Priority key for an object given its reference history: objects with
    /// a full K-history rank by their K-th most recent reference (plus a
    /// bias); others rank below all of those, by last reference.
    fn priority(&self, object: ObjectId) -> u64 {
        let h = &self.history[&object];
        if h.len() >= self.k {
            FULL_HISTORY_BIAS + h[self.k - 1]
        } else {
            *h.front().expect("history is never empty")
        }
    }

    fn record_reference(&mut self, object: ObjectId) {
        self.clock += 1;
        let h = self.history.entry(object).or_default();
        h.push_front(self.clock);
        h.truncate(self.k);
    }

    fn prune_retained(&mut self) {
        while self.retained.len() > RETAINED_HISTORIES {
            let stale = self.retained.pop_front().expect("nonempty");
            if !self.resident.contains_key(&stale) {
                self.history.remove(&stale);
            }
        }
    }
}

impl CachePolicy for LruK {
    fn name(&self) -> &'static str {
        "LRU-K"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.resident.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        let was_resident = self.resident.contains_key(&request.object);
        if was_resident {
            let (old_key, size) = self.resident[&request.object];
            self.queue.remove(&(old_key, request.object));
            self.record_reference(request.object);
            let key = self.priority(request.object);
            self.queue.insert((key, request.object));
            self.resident.insert(request.object, (key, size));
            return RequestOutcome::Hit;
        }

        self.record_reference(request.object);
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.used + request.size > self.capacity {
            let &(key, victim) = self.queue.iter().next().expect("nonempty");
            self.queue.remove(&(key, victim));
            let (_, size) = self.resident.remove(&victim).expect("resident");
            self.used -= size;
            self.retained.push_back(victim);
        }
        let key = self.priority(request.object);
        self.queue.insert((key, request.object));
        self.resident.insert(request.object, (key, request.size));
        self.used += request.size;
        self.prune_retained();
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn one_shot_objects_evicted_before_twice_referenced() {
        let mut c = LruK::new(30, 2);
        c.handle(&req(1, 10));
        c.handle(&req(1, 10)); // object 1 has a full 2-history
        c.handle(&req(2, 10)); // single reference
        c.handle(&req(3, 10)); // single reference
        c.handle(&req(4, 10)); // evict: a <K object (2, oldest), never 1
        assert!(c.contains(ObjectId(1)));
        assert!(!c.contains(ObjectId(2)));
        assert!(c.contains(ObjectId(3)));
    }

    #[test]
    fn scan_resistance() {
        use crate::policies::lru::Lru;
        use crate::sim::{simulate, SimConfig};
        // Hot pair referenced repeatedly + long scan of one-shots.
        let mut requests = Vec::new();
        let mut t = 0u64;
        for round in 0..300u64 {
            requests.push(Request::new(t, 1, 10));
            t += 1;
            requests.push(Request::new(t, 2, 10));
            t += 1;
            requests.push(Request::new(t, 1_000 + round, 10));
            t += 1;
        }
        // Capacity 20 holds only two objects: LRU churns the hot pair out
        // on every scan object, LRU-K protects the twice-referenced pair.
        let mut lruk = LruK::new(20, 2);
        let mut lru = Lru::new(20);
        let a = simulate(&mut lruk, &requests, &SimConfig::default());
        let b = simulate(&mut lru, &requests, &SimConfig::default());
        assert!(
            a.ohr() > b.ohr(),
            "LRU-K {} should beat LRU {} under scans",
            a.ohr(),
            b.ohr()
        );
    }

    #[test]
    fn k_equals_one_behaves_like_lru_on_eviction_order() {
        let mut c = LruK::new(20, 1);
        c.handle(&req(1, 10));
        c.handle(&req(2, 10));
        c.handle(&req(1, 10)); // touch 1
        c.handle(&req(3, 10)); // evict 2
        assert!(c.contains(ObjectId(1)));
        assert!(!c.contains(ObjectId(2)));
    }

    #[test]
    fn history_survives_eviction() {
        let mut c = LruK::new(20, 2);
        c.handle(&req(1, 10));
        c.handle(&req(2, 10));
        c.handle(&req(3, 10)); // evicts 1 or 2 (both <K)
                               // Re-request object 1: its history should still count the earlier
                               // reference, giving it a full 2-history now.
        c.handle(&req(1, 10));
        assert!(c.history[&ObjectId(1)].len() == 2);
    }

    #[test]
    fn capacity_respected() {
        let mut c = LruK::new(45, 2);
        for i in 0..300 {
            c.handle(&req(i % 12, 7));
            assert!(c.used() <= 45);
        }
    }

    #[test]
    #[should_panic(expected = "K must be at least 1")]
    fn zero_k_rejected() {
        LruK::new(10, 0);
    }
}
