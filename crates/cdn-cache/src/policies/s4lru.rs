//! S4LRU — quadruply-segmented LRU (Huang et al., "An analysis of Facebook
//! photo caching", SOSP 2013).
//!
//! The cache is split into four equally sized LRU segments L0..L3. Misses
//! insert at the head of L0. A hit in segment Li promotes the object to the
//! head of L(i+1) (capped at L3). When a segment overflows, its LRU tail is
//! demoted to the head of the next lower segment; overflow from L0 leaves
//! the cache. Frequently re-hit objects therefore bubble up and survive
//! scans that flush L0.

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};

use crate::cache::{CachePolicy, RequestOutcome};
use crate::policies::util::{Handle, LruList};

/// Number of segments (the "4" in S4LRU).
const SEGMENTS: usize = 4;

/// Quadruply-segmented LRU.
#[derive(Clone, Debug)]
pub struct S4Lru {
    capacity: u64,
    used: u64,
    /// Per-segment byte budget (capacity / 4).
    segment_capacity: u64,
    segments: [LruList; SEGMENTS],
    segment_used: [u64; SEGMENTS],
    index: HashMap<ObjectId, (u8, Handle)>,
}

impl S4Lru {
    /// Creates an S4LRU cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        S4Lru {
            capacity,
            used: 0,
            segment_capacity: (capacity / SEGMENTS as u64).max(1),
            segments: [
                LruList::new(),
                LruList::new(),
                LruList::new(),
                LruList::new(),
            ],
            segment_used: [0; SEGMENTS],
            index: HashMap::new(),
        }
    }

    /// Inserts at the head of `segment`, then cascades demotions downward.
    fn insert_and_balance(&mut self, segment: usize, object: ObjectId, size: u64) {
        let h = self.segments[segment].push_front(object, size);
        self.index.insert(object, (segment as u8, h));
        self.segment_used[segment] += size;
        self.used += size;

        // Cascade overflow: tail of Li moves to head of L(i-1); overflow of
        // L0 is evicted.
        for level in (0..=segment).rev() {
            while self.segment_used[level] > self.segment_capacity {
                let (demoted, dsize) = self.segments[level]
                    .pop_back()
                    .expect("segment over budget but empty");
                self.segment_used[level] -= dsize;
                if level == 0 {
                    self.index.remove(&demoted);
                    self.used -= dsize;
                } else {
                    let h = self.segments[level - 1].push_front(demoted, dsize);
                    self.index.insert(demoted, ((level - 1) as u8, h));
                    self.segment_used[level - 1] += dsize;
                }
            }
        }
    }
}

impl CachePolicy for S4Lru {
    fn name(&self) -> &'static str {
        "S4LRU"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.index.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        if let Some(&(segment, h)) = self.index.get(&request.object) {
            let segment = segment as usize;
            let (object, size) = self.segments[segment].remove(h);
            self.segment_used[segment] -= size;
            self.used -= size;
            let target = (segment + 1).min(SEGMENTS - 1);
            self.insert_and_balance(target, object, size);
            return RequestOutcome::Hit;
        }
        if request.size > self.segment_capacity {
            // An object must fit its segment; very large objects bypass.
            return RequestOutcome::Miss { admitted: false };
        }
        self.insert_and_balance(0, request.object, request.size);
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn hit_promotes_object() {
        let mut c = S4Lru::new(400);
        c.handle(&req(1, 10));
        assert_eq!(c.index[&ObjectId(1)].0, 0);
        c.handle(&req(1, 10));
        assert_eq!(c.index[&ObjectId(1)].0, 1);
        c.handle(&req(1, 10));
        c.handle(&req(1, 10));
        c.handle(&req(1, 10)); // promotions cap at the top segment
        assert_eq!(c.index[&ObjectId(1)].0, 3);
    }

    #[test]
    fn scan_flushes_only_the_bottom_segment() {
        let mut c = S4Lru::new(80); // 20 bytes per segment
                                    // Promote a hot object to L1.
        c.handle(&req(1, 10));
        c.handle(&req(1, 10));
        // Scan 10 one-shot objects through L0.
        for i in 100..110 {
            c.handle(&req(i, 10));
        }
        assert!(c.contains(ObjectId(1)), "hot object flushed by scan");
    }

    #[test]
    fn demotion_cascades_to_eviction() {
        let mut c = S4Lru::new(40); // 10 bytes per segment
        for i in 0..20 {
            c.handle(&req(i, 10));
            assert!(c.used() <= c.capacity());
        }
        assert!(c.len() <= 4);
    }

    #[test]
    fn object_larger_than_segment_bypasses() {
        let mut c = S4Lru::new(40);
        assert_eq!(
            c.handle(&req(1, 15)),
            RequestOutcome::Miss { admitted: false }
        );
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn beats_lru_under_scan_mix() {
        use crate::policies::lru::Lru;
        use crate::sim::{simulate, SimConfig};
        // Hot objects are touched twice in a row (so S4LRU promotes them
        // out of L0), then a scan longer than the LRU capacity flushes
        // everything LRU knows. S4LRU's upper segments shield the hot set.
        let mut requests = Vec::new();
        let mut t = 0u64;
        for round in 0..200u64 {
            for hot in 0..3u64 {
                requests.push(Request::new(t, hot, 10));
                t += 1;
                requests.push(Request::new(t, hot, 10));
                t += 1;
            }
            for scan in 0..20u64 {
                requests.push(Request::new(t, 10_000 + round * 20 + scan, 10));
                t += 1;
            }
        }
        let mut s4 = S4Lru::new(160);
        let mut lru = Lru::new(160);
        let a = simulate(&mut s4, &requests, &SimConfig::default());
        let b = simulate(&mut lru, &requests, &SimConfig::default());
        assert!(a.ohr() > b.ohr(), "S4LRU {} vs LRU {}", a.ohr(), b.ohr());
    }
}
