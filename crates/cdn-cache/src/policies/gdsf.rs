//! GreedyDual-Size-Frequency (Cherkasova, HP Labs TR, 1998).
//!
//! The heuristic that beats RL caching in Figure 1. Each cached object
//! carries priority `H_i = L + F_i · C_i / S_i` where `F_i` is its hit
//! count, `C_i` its retrieval cost (1 here, the classic setting), `S_i` its
//! size, and `L` the inflation (age) value, raised to the priority of each
//! evicted object. Small, frequently-hit objects earn high priority per
//! byte; stale objects decay relative to the rising `L`.

use std::collections::{BTreeSet, HashMap};

use cdn_trace::{ObjectId, Request};

use crate::cache::{CachePolicy, RequestOutcome};
use crate::policies::util::OrderedF64;

/// GreedyDual-Size-Frequency.
#[derive(Clone, Debug)]
pub struct Gdsf {
    capacity: u64,
    used: u64,
    /// Inflation value L.
    inflation: f64,
    /// (priority, tiebreak, object) ascending; first = victim.
    queue: BTreeSet<(OrderedF64, u64, ObjectId)>,
    entries: HashMap<ObjectId, Entry>,
    tick: u64,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    priority: f64,
    frequency: u64,
    tiebreak: u64,
    size: u64,
}

impl Gdsf {
    /// Creates a GDSF cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Gdsf {
            capacity,
            used: 0,
            inflation: 0.0,
            queue: BTreeSet::new(),
            entries: HashMap::new(),
            tick: 0,
        }
    }

    fn priority(&self, frequency: u64, size: u64) -> f64 {
        // C_i = 1 (object-hit optimization, the policy's classic form).
        self.inflation + frequency as f64 / size as f64
    }
}

impl CachePolicy for Gdsf {
    fn name(&self) -> &'static str {
        "GDSF"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.entries.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        self.tick += 1;
        if let Some(&entry) = self.entries.get(&request.object) {
            let removed =
                self.queue
                    .remove(&(OrderedF64(entry.priority), entry.tiebreak, request.object));
            debug_assert!(removed);
            let frequency = entry.frequency + 1;
            let priority = self.priority(frequency, entry.size);
            let updated = Entry {
                priority,
                frequency,
                tiebreak: entry.tiebreak,
                size: entry.size,
            };
            self.entries.insert(request.object, updated);
            self.queue
                .insert((OrderedF64(priority), updated.tiebreak, request.object));
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.used + request.size > self.capacity {
            let &(OrderedF64(priority), t, victim) = self.queue.iter().next().expect("nonempty");
            self.queue.remove(&(OrderedF64(priority), t, victim));
            let entry = self.entries.remove(&victim).expect("entry exists");
            self.used -= entry.size;
            self.inflation = self.inflation.max(priority);
        }
        let entry = Entry {
            frequency: 1,
            priority: self.priority(1, request.size),
            tiebreak: self.tick,
            size: request.size,
        };
        self.entries.insert(request.object, entry);
        self.queue
            .insert((OrderedF64(entry.priority), entry.tiebreak, request.object));
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn small_objects_outrank_large_at_equal_frequency() {
        let mut c = Gdsf::new(110);
        c.handle(&req(1, 100)); // large
        c.handle(&req(2, 10)); // small
        c.handle(&req(3, 100)); // forces eviction: must evict the large 1
        assert!(!c.contains(ObjectId(1)));
        assert!(c.contains(ObjectId(2)));
        assert!(c.contains(ObjectId(3)));
    }

    #[test]
    fn frequency_rescues_large_objects() {
        let mut c = Gdsf::new(200);
        c.handle(&req(1, 100));
        for _ in 0..50 {
            c.handle(&req(1, 100)); // priority 50/100 = 0.5
        }
        c.handle(&req(2, 100)); // priority 1/100
        c.handle(&req(3, 100)); // evicts 2, not the hot 1
        assert!(c.contains(ObjectId(1)));
        assert!(!c.contains(ObjectId(2)));
    }

    #[test]
    fn beats_lru_on_scan_heavy_mix() {
        // A hot set of small objects plus a scan of one-shot large objects:
        // GDSF should keep the hot set, LRU churns it out.
        use crate::policies::lru::Lru;
        use crate::sim::{simulate, SimConfig};
        let mut requests = Vec::new();
        let mut t = 0u64;
        for round in 0..200u64 {
            for hot in 0..10u64 {
                requests.push(Request::new(t, hot, 10));
                t += 1;
            }
            // scan objects are unique per round
            for scan in 0..5u64 {
                requests.push(Request::new(t, 1_000 + round * 5 + scan, 40));
                t += 1;
            }
        }
        let mut gdsf = Gdsf::new(200);
        let mut lru = Lru::new(200);
        let g = simulate(&mut gdsf, &requests, &SimConfig::default());
        let l = simulate(&mut lru, &requests, &SimConfig::default());
        assert!(
            g.ohr() > l.ohr(),
            "GDSF {} should beat LRU {}",
            g.ohr(),
            l.ohr()
        );
    }

    #[test]
    fn capacity_respected() {
        let mut c = Gdsf::new(64);
        for i in 0..400 {
            c.handle(&req(i % 17, 3 + i % 9));
            assert!(c.used() <= 64);
        }
    }
}
