//! GD-Wheel (Li & Cox, "GD-Wheel: a cost-aware replacement policy for
//! key-value stores", EuroSys 2015).
//!
//! GreedyDual replacement made cheap: instead of a priority queue over
//! `H_i = L + cost_i`, priorities are quantized into the slots of a
//! circular *cost wheel*. The wheel's current position represents the
//! inflation value `L`; inserting an object with (quantized) cost `d`
//! places it `d` slots ahead of the current position; eviction advances the
//! position to the next non-empty slot and pops from it (recency order
//! within a slot). Costs beyond the wheel's range go to an overflow level
//! that is migrated as the wheel wraps — here a sorted overflow map keyed
//! by absolute round.
//!
//! Cost here is a retrieval-latency proxy per *byte*
//! (`(fixed + per_kib·KiB) / size`), i.e. GreedyDual-Size semantics, which
//! is how the HotNets paper positions GD-Wheel among CDN policies.

use std::collections::{BTreeMap, HashMap};

use cdn_trace::{CostModel, ObjectId, Request};

use crate::cache::{CachePolicy, RequestOutcome};
use crate::policies::util::{Handle, LruList};

/// Number of slots in the wheel.
const WHEEL_SLOTS: usize = 256;
/// Quantization: cost units per slot.
const COST_PER_SLOT: f64 = 0.05;

/// GD-Wheel.
pub struct GdWheel {
    capacity: u64,
    used: u64,
    cost_model: CostModel,
    /// Absolute slot index of the wheel's current position (monotone).
    position: u64,
    /// The wheel: slot → recency list of residents in that slot.
    wheel: Vec<LruList>,
    /// Overflow: absolute slot (≥ position + WHEEL_SLOTS) → recency list.
    overflow: BTreeMap<u64, LruList>,
    /// object → where it lives right now.
    index: HashMap<ObjectId, EntryLoc>,
}

/// Index record: which list an entry currently lives in. The location is
/// stored explicitly — deriving it from the wheel position is wrong once
/// the position advances past an overflow entry that has not migrated yet.
#[derive(Clone, Copy, Debug)]
struct EntryLoc {
    abs_slot: u64,
    in_overflow: bool,
    handle: Handle,
    size: u64,
}

impl GdWheel {
    /// Creates a GD-Wheel cache of `capacity` bytes with the default
    /// latency-proxy cost model.
    pub fn new(capacity: u64) -> Self {
        Self::with_cost_model(
            capacity,
            CostModel::PerByteLatency {
                fixed: 100,
                per_kib: 2,
            },
        )
    }

    /// Creates a GD-Wheel with an explicit cost model.
    pub fn with_cost_model(capacity: u64, cost_model: CostModel) -> Self {
        GdWheel {
            capacity,
            used: 0,
            cost_model,
            position: 0,
            wheel: (0..WHEEL_SLOTS).map(|_| LruList::new()).collect(),
            overflow: BTreeMap::new(),
            index: HashMap::new(),
        }
    }

    /// Quantized per-byte cost in wheel slots (at least 1).
    fn cost_slots(&self, size: u64) -> u64 {
        let per_byte = self.cost_model.cost(size) as f64 / size as f64;
        ((per_byte / COST_PER_SLOT).round() as u64).max(1)
    }

    fn place(&mut self, object: ObjectId, size: u64, abs_slot: u64) {
        let in_overflow = abs_slot >= self.position + WHEEL_SLOTS as u64;
        let handle = if in_overflow {
            self.overflow
                .entry(abs_slot)
                .or_default()
                .push_front(object, size)
        } else {
            self.wheel[(abs_slot % WHEEL_SLOTS as u64) as usize].push_front(object, size)
        };
        self.index.insert(
            object,
            EntryLoc {
                abs_slot,
                in_overflow,
                handle,
                size,
            },
        );
    }

    fn remove_entry(&mut self, object: ObjectId) -> u64 {
        let loc = self.index.remove(&object).expect("indexed");
        if loc.in_overflow {
            let list = self.overflow.get_mut(&loc.abs_slot).expect("overflow slot");
            list.remove(loc.handle);
            if list.is_empty() {
                self.overflow.remove(&loc.abs_slot);
            }
        } else {
            self.wheel[(loc.abs_slot % WHEEL_SLOTS as u64) as usize].remove(loc.handle);
        }
        loc.size
    }

    /// Moves every overflow entry whose absolute slot now falls within the
    /// wheel's horizon into the wheel (GD-Wheel's migration step).
    fn migrate_overflow(&mut self) {
        let limit = self.position + WHEEL_SLOTS as u64;
        while let Some((&abs_slot, _)) = self.overflow.iter().next() {
            if abs_slot >= limit {
                break;
            }
            let list = self.overflow.remove(&abs_slot).expect("present");
            // Re-insert LRU-first so recency order within the slot survives.
            let entries: Vec<_> = list.iter().collect();
            for &(object, size) in entries.iter().rev() {
                let slot = (abs_slot % WHEEL_SLOTS as u64) as usize;
                let handle = self.wheel[slot].push_front(object, size);
                self.index.insert(
                    object,
                    EntryLoc {
                        abs_slot,
                        in_overflow: false,
                        handle,
                        size,
                    },
                );
            }
        }
    }

    /// Advances the position to the next non-empty slot and evicts one
    /// object from it.
    fn evict_one(&mut self) {
        loop {
            self.migrate_overflow();
            // Scan the wheel from the current position.
            for step in 0..WHEEL_SLOTS as u64 {
                let abs = self.position + step;
                let slot = (abs % WHEEL_SLOTS as u64) as usize;
                if let Some((victim, size)) = self.wheel[slot].pop_back() {
                    self.position = abs; // L rises to the victim's priority
                    self.index.remove(&victim);
                    self.used -= size;
                    return;
                }
            }
            // Wheel empty: jump to the earliest overflow round and retry.
            let Some((&abs_slot, _)) = self.overflow.iter().next() else {
                unreachable!("evict_one called with an empty cache");
            };
            self.position = abs_slot;
        }
    }
}

impl CachePolicy for GdWheel {
    fn name(&self) -> &'static str {
        "GD-Wheel"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.index.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        if self.index.contains_key(&request.object) {
            // Hit: restore the full priority H = L + cost.
            let size = self.remove_entry(request.object);
            let abs = self.position + self.cost_slots(size);
            self.place(request.object, size, abs);
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.used + request.size > self.capacity {
            self.evict_one();
        }
        let abs = self.position + self.cost_slots(request.size);
        self.place(request.object, request.size, abs);
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn basic_hit_miss() {
        let mut c = GdWheel::new(1000);
        assert!(!c.handle(&req(1, 100)).is_hit());
        assert!(c.handle(&req(1, 100)).is_hit());
        assert_eq!(c.used(), 100);
    }

    #[test]
    fn high_cost_per_byte_objects_survive() {
        // Small objects have far higher per-byte cost under the latency
        // model, so they outlive big ones at equal recency.
        let mut c = GdWheel::new(1100);
        c.handle(&req(1, 1000)); // big: low per-byte cost
        c.handle(&req(2, 50)); // small: high per-byte cost
        c.handle(&req(3, 1000)); // forces eviction of the big object
        assert!(!c.contains(ObjectId(1)));
        assert!(c.contains(ObjectId(2)));
    }

    #[test]
    fn capacity_respected_under_churn() {
        let mut c = GdWheel::new(5000);
        for i in 0..2000u64 {
            c.handle(&req(i % 37, 50 + (i % 13) * 100));
            assert!(c.used() <= c.capacity());
        }
    }

    #[test]
    fn inflation_position_is_monotone() {
        let mut c = GdWheel::new(500);
        let mut last = 0;
        for i in 0..500u64 {
            c.handle(&req(i, 100));
            assert!(c.position >= last, "position moved backwards");
            last = c.position;
        }
        assert!(c.position > 0, "no eviction ever advanced the wheel");
    }

    #[test]
    fn hit_on_unmigrated_overflow_entry_after_position_advance() {
        // Regression: an entry parked in overflow stays there even after
        // the wheel position advances far enough that its slot is "within
        // the wheel horizon"; a hit must still find it in overflow instead
        // of following a stale wheel handle.
        let mut c = GdWheel::with_cost_model(
            400,
            CostModel::PerByteLatency {
                fixed: 100_000,
                per_kib: 0,
            },
        );
        // Insert enough distinct objects to force evictions that advance
        // the position by thousands of slots, then hit an early survivor.
        for i in 0..40u64 {
            c.handle(&req(i, 100));
        }
        // Hit every object still resident: must not panic, must stay sane.
        for i in 0..40u64 {
            if c.contains(ObjectId(i)) {
                assert!(c.handle(&req(i, 100)).is_hit());
            }
        }
        assert!(c.used() <= c.capacity());
    }

    #[test]
    fn overflow_slots_are_recovered() {
        // Cost model with huge fixed cost → priorities far beyond the wheel.
        let mut c = GdWheel::with_cost_model(
            300,
            CostModel::PerByteLatency {
                fixed: 1_000_000,
                per_kib: 0,
            },
        );
        for i in 0..50u64 {
            c.handle(&req(i, 100));
            assert!(c.used() <= 300);
        }
        assert!(c.len() >= 1);
    }
}
