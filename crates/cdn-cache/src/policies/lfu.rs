//! Least-frequently-used eviction.

use std::collections::{BTreeSet, HashMap};

use cdn_trace::{ObjectId, Request};

use crate::cache::{CachePolicy, RequestOutcome};

/// Classic in-cache LFU: evict the resident object with the fewest hits
/// since admission; ties break toward the least recently inserted.
#[derive(Clone, Debug)]
pub struct Lfu {
    capacity: u64,
    used: u64,
    /// (frequency, tiebreak, object) ordered ascending: first = victim.
    queue: BTreeSet<(u64, u64, ObjectId)>,
    entries: HashMap<ObjectId, Entry>,
    tick: u64,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    frequency: u64,
    tiebreak: u64,
    size: u64,
}

impl Lfu {
    /// Creates an LFU cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Lfu {
            capacity,
            used: 0,
            queue: BTreeSet::new(),
            entries: HashMap::new(),
            tick: 0,
        }
    }
}

impl CachePolicy for Lfu {
    fn name(&self) -> &'static str {
        "LFU"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.entries.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&request.object) {
            let removed = self
                .queue
                .remove(&(entry.frequency, entry.tiebreak, request.object));
            debug_assert!(removed);
            entry.frequency += 1;
            self.queue
                .insert((entry.frequency, entry.tiebreak, request.object));
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.used + request.size > self.capacity {
            let &(f, t, victim) = self.queue.iter().next().expect("nonempty");
            self.queue.remove(&(f, t, victim));
            let entry = self.entries.remove(&victim).expect("entry exists");
            self.used -= entry.size;
        }
        let entry = Entry {
            frequency: 1,
            tiebreak: self.tick,
            size: request.size,
        };
        self.entries.insert(request.object, entry);
        self.queue
            .insert((entry.frequency, entry.tiebreak, request.object));
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn evicts_least_frequent() {
        let mut c = Lfu::new(30);
        c.handle(&req(1, 10));
        c.handle(&req(2, 10));
        c.handle(&req(3, 10));
        c.handle(&req(1, 10));
        c.handle(&req(1, 10));
        c.handle(&req(3, 10));
        // Frequencies: 1 → 3, 2 → 1, 3 → 2. Evict 2.
        c.handle(&req(4, 10));
        assert!(c.contains(ObjectId(1)));
        assert!(!c.contains(ObjectId(2)));
        assert!(c.contains(ObjectId(3)));
    }

    #[test]
    fn frequency_ties_break_by_insertion_age() {
        let mut c = Lfu::new(20);
        c.handle(&req(1, 10));
        c.handle(&req(2, 10));
        c.handle(&req(3, 10)); // both have frequency 1 → evict 1 (older)
        assert!(!c.contains(ObjectId(1)));
        assert!(c.contains(ObjectId(2)));
    }

    #[test]
    fn capacity_respected() {
        let mut c = Lfu::new(25);
        for i in 0..200 {
            c.handle(&req(i % 11, 5 + (i % 4)));
            assert!(c.used() <= 25);
        }
    }
}
