//! TinyLFU admission (Einziger & Friedman, "TinyLFU: a highly efficient
//! cache admission policy", IEEE Euromicro PDP 2014).
//!
//! TinyLFU is an *admission* filter layered over any eviction policy (LRU
//! here): on a miss, the candidate is admitted only if its approximate
//! request frequency exceeds that of the object it would displace.
//! Frequencies are tracked in a count–min sketch with a doorkeeper Bloom
//! filter absorbing one-hit wonders, and all counters are halved every
//! *sample window* so the sketch tracks recent popularity ("aging").

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::{CachePolicy, RequestOutcome};
use crate::policies::util::{Handle, LruList};

/// Count–min sketch rows.
const SKETCH_ROWS: usize = 4;
/// Counter cap (4-bit counters in the original; u8 capped at 15 here).
const COUNTER_MAX: u8 = 15;

/// A count–min sketch of request frequencies with periodic halving.
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    width: usize,
    rows: Vec<Vec<u8>>,
    seeds: [u64; SKETCH_ROWS],
    /// Increments since the last halving.
    additions: u64,
    /// Halve all counters when `additions` reaches this.
    sample_window: u64,
}

fn mix(mut x: u64, seed: u64) -> u64 {
    // SplitMix64-style finalizer; cheap and adequate for sketch hashing.
    x = x.wrapping_add(seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl CountMinSketch {
    /// Creates a sketch with the given row width and aging window.
    pub fn new(width: usize, sample_window: u64, seed: u64) -> Self {
        assert!(width.is_power_of_two(), "width must be a power of two");
        CountMinSketch {
            width,
            rows: vec![vec![0; width]; SKETCH_ROWS],
            seeds: [mix(1, seed), mix(2, seed), mix(3, seed), mix(4, seed)],
            additions: 0,
            sample_window,
        }
    }

    /// Records one occurrence of `object`.
    pub fn increment(&mut self, object: ObjectId) {
        for (row, &s) in self.rows.iter_mut().zip(&self.seeds) {
            let idx = (mix(object.0, s) as usize) & (self.width - 1);
            if row[idx] < COUNTER_MAX {
                row[idx] += 1;
            }
        }
        self.additions += 1;
        if self.additions >= self.sample_window {
            self.halve();
            self.additions = 0;
        }
    }

    /// Approximate count of `object` (min over rows).
    pub fn estimate(&self, object: ObjectId) -> u8 {
        self.rows
            .iter()
            .zip(&self.seeds)
            .map(|(row, &s)| row[(mix(object.0, s) as usize) & (self.width - 1)])
            .min()
            .unwrap_or(0)
    }

    fn halve(&mut self) {
        for row in &mut self.rows {
            for c in row.iter_mut() {
                *c >>= 1;
            }
        }
    }
}

/// TinyLFU admission over an LRU cache.
pub struct TinyLfu {
    capacity: u64,
    used: u64,
    sketch: CountMinSketch,
    list: LruList,
    index: HashMap<ObjectId, Handle>,
    /// Small random chance to admit regardless, protecting against
    /// hash-collision starvation (as in production TinyLFU variants).
    rng: StdRng,
}

impl TinyLfu {
    /// Creates a TinyLFU-admission cache of `capacity` bytes.
    pub fn new(capacity: u64, seed: u64) -> Self {
        TinyLfu {
            capacity,
            used: 0,
            sketch: CountMinSketch::new(1 << 16, 1 << 20, seed),
            list: LruList::new(),
            index: HashMap::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF),
        }
    }
}

impl CachePolicy for TinyLfu {
    fn name(&self) -> &'static str {
        "TinyLFU"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.index.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        self.sketch.increment(request.object);
        if let Some(&h) = self.index.get(&request.object) {
            self.list.move_to_front(h);
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        // Admission duel: candidate frequency vs the LRU victim's.
        if self.used + request.size > self.capacity {
            if let Some((victim, _)) = self.list.back() {
                let candidate_freq = self.sketch.estimate(request.object);
                let victim_freq = self.sketch.estimate(victim);
                let lucky = self.rng.gen::<f64>() < 0.01;
                if candidate_freq <= victim_freq && !lucky {
                    return RequestOutcome::Miss { admitted: false };
                }
            }
        }
        while self.used + request.size > self.capacity {
            let (victim, size) = self.list.pop_back().expect("nonempty");
            self.index.remove(&victim);
            self.used -= size;
        }
        let h = self.list.push_front(request.object, request.size);
        self.index.insert(request.object, h);
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn sketch_counts_approximately() {
        let mut s = CountMinSketch::new(1 << 12, u64::MAX, 1);
        for _ in 0..10 {
            s.increment(ObjectId(42));
        }
        s.increment(ObjectId(7));
        assert!(s.estimate(ObjectId(42)) >= 10);
        assert!(s.estimate(ObjectId(7)) >= 1);
        assert_eq!(s.estimate(ObjectId(999_999)), 0);
    }

    #[test]
    fn sketch_counters_saturate() {
        let mut s = CountMinSketch::new(1 << 8, u64::MAX, 2);
        for _ in 0..100 {
            s.increment(ObjectId(1));
        }
        assert_eq!(s.estimate(ObjectId(1)), COUNTER_MAX);
    }

    #[test]
    fn sketch_halving_ages_counts() {
        let mut s = CountMinSketch::new(1 << 8, 10, 3);
        for _ in 0..9 {
            s.increment(ObjectId(1));
        }
        assert!(s.estimate(ObjectId(1)) >= 9);
        s.increment(ObjectId(1)); // triggers halving
        assert!(s.estimate(ObjectId(1)) <= 5);
    }

    #[test]
    fn one_hit_wonders_do_not_displace_the_hot_set() {
        let mut c = TinyLfu::new(100, 4);
        // Build a hot set.
        for _ in 0..20 {
            for id in 0..10u64 {
                c.handle(&req(id, 10));
            }
        }
        // A scan of one-shot objects should mostly be denied admission.
        let mut denied = 0;
        for i in 1_000..1_200u64 {
            if c.handle(&req(i, 10)) == (RequestOutcome::Miss { admitted: false }) {
                denied += 1;
            }
        }
        assert!(denied > 150, "only {denied} scans denied");
        let hot_resident = (0..10u64).filter(|&i| c.contains(ObjectId(i))).count();
        // ~1% "lucky" admissions can displace a couple of hot objects.
        assert!(hot_resident >= 6, "hot set eroded to {hot_resident}");
    }

    #[test]
    fn capacity_respected() {
        let mut c = TinyLfu::new(64, 5);
        for i in 0..1_000u64 {
            c.handle(&req(i % 19, 8));
            assert!(c.used() <= 64);
        }
    }
}
