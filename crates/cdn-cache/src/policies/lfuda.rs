//! LFU with Dynamic Aging (Arlitt, Cherkasova, Dilley, Friedrich & Jin,
//! "Evaluating content management techniques for web proxy caches", 2000).
//!
//! Classic LFU never forgets: an object that was hot last week outranks
//! everything fresh. LFUDA fixes this with an *age factor* `L`: an object's
//! priority is `K_i = F_i + L` (frequency plus the age at insertion/last
//! hit), and whenever something is evicted, `L` is raised to the victim's
//! priority. Newly inserted objects thus start near the current eviction
//! frontier instead of at zero.

use std::collections::{BTreeSet, HashMap};

use cdn_trace::{ObjectId, Request};

use crate::cache::{CachePolicy, RequestOutcome};

/// LFU with dynamic aging.
#[derive(Clone, Debug)]
pub struct Lfuda {
    capacity: u64,
    used: u64,
    /// Global age factor L (the last evicted priority).
    age: u64,
    /// (priority, tiebreak, object), ascending; first = next victim.
    queue: BTreeSet<(u64, u64, ObjectId)>,
    entries: HashMap<ObjectId, Entry>,
    tick: u64,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    priority: u64,
    frequency: u64,
    tiebreak: u64,
    size: u64,
}

impl Lfuda {
    /// Creates an LFUDA cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Lfuda {
            capacity,
            used: 0,
            age: 0,
            queue: BTreeSet::new(),
            entries: HashMap::new(),
            tick: 0,
        }
    }

    /// Current age factor (diagnostics).
    pub fn age_factor(&self) -> u64 {
        self.age
    }
}

impl CachePolicy for Lfuda {
    fn name(&self) -> &'static str {
        "LFUDA"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.entries.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&request.object) {
            let removed = self
                .queue
                .remove(&(entry.priority, entry.tiebreak, request.object));
            debug_assert!(removed);
            entry.frequency += 1;
            // K_i = F_i + L with the *current* age factor.
            entry.priority = entry.frequency + self.age;
            self.queue
                .insert((entry.priority, entry.tiebreak, request.object));
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.used + request.size > self.capacity {
            let &(priority, t, victim) = self.queue.iter().next().expect("nonempty");
            self.queue.remove(&(priority, t, victim));
            let entry = self.entries.remove(&victim).expect("entry exists");
            self.used -= entry.size;
            // Dynamic aging: L rises to the evicted priority.
            self.age = self.age.max(priority);
        }
        let entry = Entry {
            frequency: 1,
            priority: 1 + self.age,
            tiebreak: self.tick,
            size: request.size,
        };
        self.entries.insert(request.object, entry);
        self.queue
            .insert((entry.priority, entry.tiebreak, request.object));
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn behaves_like_lfu_before_any_eviction() {
        let mut c = Lfuda::new(30);
        c.handle(&req(1, 10));
        c.handle(&req(1, 10));
        c.handle(&req(2, 10));
        c.handle(&req(3, 10));
        c.handle(&req(4, 10)); // evict least priority: 2 or 3 (freq 1) → 2 older
        assert!(!c.contains(ObjectId(2)));
        assert!(c.contains(ObjectId(1)));
    }

    #[test]
    fn aging_lets_new_objects_displace_stale_hot_ones() {
        let mut c = Lfuda::new(20);
        // Make object 1 very hot, then stop requesting it.
        c.handle(&req(1, 10));
        for _ in 0..50 {
            c.handle(&req(1, 10));
        }
        // A stream of fresh objects; with pure LFU none could ever displace
        // object 1's partner slot... drive the age factor up via evictions.
        for i in 2..40 {
            c.handle(&req(i, 10));
        }
        assert!(c.age_factor() > 0, "age factor never rose");
        // Eventually even object 1 becomes evictable: hammer new objects
        // until it goes (bounded loop so the test can't hang).
        let mut evicted = false;
        for i in 40..2000 {
            c.handle(&req(i, 10));
            c.handle(&req(i, 10)); // give the newcomer frequency 2
            if !c.contains(ObjectId(1)) {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "stale hot object was never displaced");
    }

    #[test]
    fn capacity_respected() {
        let mut c = Lfuda::new(37);
        for i in 0..300 {
            c.handle(&req(i % 13, 4 + i % 5));
            assert!(c.used() <= 37);
        }
    }
}
