//! Hyperbolic caching (Blankstein, Sen & Freedman, USENIX ATC 2017).
//!
//! Every cached object carries the priority `p_i = n_i / t_i`, where `n_i`
//! counts accesses since admission and `t_i` is the time since admission.
//! Priorities decay *hyperbolically* — unlike LRU's implicit linear decay —
//! which preserves the popularity ordering of items of different ages.
//! Hyperbolic caching maintains no eviction data structure; on eviction it
//! samples `S` random residents and evicts the lowest-priority one, exactly
//! as the paper prescribes (their default `S = 64`).

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::{CachePolicy, RequestOutcome};

/// Eviction sample size (the ATC paper's default).
const SAMPLE: usize = 64;

#[derive(Clone, Copy, Debug)]
struct Entry {
    size: u64,
    accesses: u64,
    admitted_at: u64,
}

/// Hyperbolic caching with sampled eviction.
#[derive(Clone, Debug)]
pub struct Hyperbolic {
    capacity: u64,
    used: u64,
    clock: u64,
    /// Dense resident vector for O(1) sampling.
    objects: Vec<(ObjectId, Entry)>,
    index: HashMap<ObjectId, usize>,
    rng: StdRng,
}

impl Hyperbolic {
    /// Creates a hyperbolic cache of `capacity` bytes.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Hyperbolic {
            capacity,
            used: 0,
            clock: 0,
            objects: Vec::new(),
            index: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn priority(&self, entry: &Entry) -> f64 {
        let age = (self.clock - entry.admitted_at).max(1) as f64;
        entry.accesses as f64 / age
    }

    fn evict_sampled(&mut self) {
        debug_assert!(!self.objects.is_empty());
        let mut victim_slot = 0usize;
        let mut victim_priority = f64::INFINITY;
        let n = self.objects.len();
        // Fewer residents than the sample size: examine all of them (the
        // exact minimum) instead of drawing with replacement.
        for k in 0..SAMPLE.min(n) {
            let slot = if n <= SAMPLE {
                k
            } else {
                self.rng.gen_range(0..n)
            };
            let p = self.priority(&self.objects[slot].1);
            if p < victim_priority {
                victim_priority = p;
                victim_slot = slot;
            }
        }
        let (victim, entry) = self.objects.swap_remove(victim_slot);
        self.index.remove(&victim);
        if let Some((moved, _)) = self.objects.get(victim_slot) {
            self.index.insert(*moved, victim_slot);
        }
        self.used -= entry.size;
    }
}

impl CachePolicy for Hyperbolic {
    fn name(&self) -> &'static str {
        "Hyperbolic"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.index.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        self.clock += 1;
        if let Some(&slot) = self.index.get(&request.object) {
            self.objects[slot].1.accesses += 1;
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.used + request.size > self.capacity {
            self.evict_sampled();
        }
        let entry = Entry {
            size: request.size,
            accesses: 1,
            admitted_at: self.clock,
        };
        self.index.insert(request.object, self.objects.len());
        self.objects.push((request.object, entry));
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn popular_objects_survive_eviction_pressure() {
        let mut c = Hyperbolic::new(100, 1);
        // Make object 1 very popular.
        for _ in 0..100 {
            c.handle(&req(1, 10));
        }
        // Pressure with one-shot objects.
        for i in 10..200 {
            c.handle(&req(i, 10));
        }
        assert!(c.contains(ObjectId(1)), "popular object evicted");
    }

    #[test]
    fn old_unpopular_objects_decay_below_fresh_ones() {
        let mut c = Hyperbolic::new(30, 2);
        c.handle(&req(1, 10));
        // Let object 1 age without hits while 2 and 3 arrive fresh.
        for _ in 0..100 {
            c.clock += 1;
        }
        c.handle(&req(2, 10));
        c.handle(&req(3, 10));
        c.handle(&req(4, 10)); // eviction: 1 has priority 1/100, others ~1
        assert!(!c.contains(ObjectId(1)));
    }

    #[test]
    fn capacity_respected() {
        let mut c = Hyperbolic::new(77, 3);
        for i in 0..500 {
            c.handle(&req(i % 23, 5 + i % 7));
            assert!(c.used() <= 77);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut c = Hyperbolic::new(50, seed);
            (0..400u64)
                .filter(|&i| c.handle(&req(i % 15, 9)).is_hit())
                .count()
        };
        assert_eq!(run(9), run(9));
    }
}
