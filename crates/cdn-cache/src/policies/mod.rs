//! The policy zoo.
//!
//! One module per policy, each implemented from its original paper:
//!
//! | Module | Policy | Source |
//! |---|---|---|
//! | [`rnd`] | random eviction | Figure 1 baseline |
//! | [`fifo`] | first-in first-out | classic |
//! | [`lru`] | least recently used | classic |
//! | [`lru_k`] | LRU-K | O'Neil et al., SIGMOD 1993 |
//! | [`lfu`] | least frequently used | classic |
//! | [`lfuda`] | LFU with dynamic aging | Arlitt et al., 2000 |
//! | [`gdsf`] | GreedyDual-Size-Frequency | Cherkasova, 1998 |
//! | [`gd_wheel`] | GD-Wheel | Li & Cox, EuroSys 2015 |
//! | [`s4lru`] | quadruply-segmented LRU | Huang et al., SOSP 2013 |
//! | [`adaptsize`] | AdaptSize | Berger et al., NSDI 2017 |
//! | [`hyperbolic`] | Hyperbolic caching | Blankstein et al., ATC 2017 |
//! | [`lhd`] | Least Hit Density | Beckmann et al., NSDI 2018 |
//! | [`tinylfu`] | TinyLFU admission | Einziger & Friedman, 2014 |
//! | [`rlc`] | model-free RL caching | Figure 1's RLC bar |
//! | [`infinite`] | unbounded cache | upper-bound diagnostic |
//! | [`opt_replay`] | replay of OPT's offline decisions | Figure 6's OPT bar |

pub mod adaptsize;
pub mod fifo;
pub mod gd_wheel;
pub mod gdsf;
pub mod hyperbolic;
pub mod infinite;
pub mod lfu;
pub mod lfuda;
pub mod lhd;
pub mod lru;
pub mod lru_k;
pub mod opt_replay;
pub mod rlc;
pub mod rnd;
pub mod s4lru;
pub mod tinylfu;
pub mod util;

use crate::cache::CachePolicy;

/// Instantiates a policy by its figure name. Unknown names yield `None`.
///
/// `seed` feeds the randomized policies (RND, Hyperbolic, LHD, RLC); the
/// others ignore it.
pub fn by_name(name: &str, capacity: u64, seed: u64) -> Option<Box<dyn CachePolicy>> {
    Some(match name.to_ascii_uppercase().as_str() {
        "RND" | "RANDOM" => Box::new(rnd::Rnd::new(capacity, seed)),
        "FIFO" => Box::new(fifo::Fifo::new(capacity)),
        "LRU" => Box::new(lru::Lru::new(capacity)),
        "LRU-K" | "LRUK" => Box::new(lru_k::LruK::new(capacity, 2)),
        "LFU" => Box::new(lfu::Lfu::new(capacity)),
        "LFUDA" => Box::new(lfuda::Lfuda::new(capacity)),
        "GDSF" => Box::new(gdsf::Gdsf::new(capacity)),
        "GD-WHEEL" | "GDWHEEL" => Box::new(gd_wheel::GdWheel::new(capacity)),
        "S4LRU" => Box::new(s4lru::S4Lru::new(capacity)),
        "ADAPTSIZE" => Box::new(adaptsize::AdaptSize::new(capacity, seed)),
        "HYPERBOLIC" => Box::new(hyperbolic::Hyperbolic::new(capacity, seed)),
        "LHD" => Box::new(lhd::Lhd::new(capacity, seed)),
        "TINYLFU" => Box::new(tinylfu::TinyLfu::new(capacity, seed)),
        "RLC" => Box::new(rlc::Rlc::new(capacity, seed)),
        "INFINITE" => Box::new(infinite::Infinite::new()),
        _ => return None,
    })
}

/// The Figure 6 lineup (online policies; OPT and LFO are added by the
/// harness).
pub const FIGURE6_POLICIES: [&str; 8] = [
    "LRU",
    "LRU-K",
    "LFUDA",
    "S4LRU",
    "GD-Wheel",
    "AdaptSize",
    "Hyperbolic",
    "LHD",
];

/// The Figure 1 lineup.
pub const FIGURE1_POLICIES: [&str; 4] = ["RND", "LRU", "RLC", "GDSF"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_knows_every_figure_policy() {
        for name in FIGURE6_POLICIES.iter().chain(FIGURE1_POLICIES.iter()) {
            assert!(by_name(name, 1024, 0).is_some(), "missing {name}");
        }
        assert!(by_name("NOPE", 1024, 0).is_none());
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("lru", 1024, 0).is_some());
        assert!(by_name("AdaptSize", 1024, 0).is_some());
    }
}
