//! Shared data structures for the policy implementations.

use cdn_trace::ObjectId;

/// Sentinel for "no slot".
const NIL: u32 = u32::MAX;

/// Handle into an [`LruList`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Handle(pub(crate) u32);

#[derive(Clone, Debug)]
struct Slot {
    prev: u32,
    next: u32,
    object: ObjectId,
    size: u64,
    live: bool,
}

/// An intrusive doubly-linked recency list over slab storage.
///
/// `push_front` is the MRU position, `pop_back` evicts the LRU entry.
/// Handles stay valid until the entry is removed; slots are recycled.
#[derive(Clone, Debug)]
pub struct LruList {
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl LruList {
    /// An empty list.
    pub fn new() -> Self {
        LruList {
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the list holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts at the MRU end, returning a stable handle.
    pub fn push_front(&mut self, object: ObjectId, size: u64) -> Handle {
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Slot {
                    prev: NIL,
                    next: self.head,
                    object,
                    size,
                    live: true,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    prev: NIL,
                    next: self.head,
                    object,
                    size,
                    live: true,
                });
                (self.slots.len() - 1) as u32
            }
        };
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.len += 1;
        Handle(idx)
    }

    /// Moves an entry to the MRU end.
    pub fn move_to_front(&mut self, handle: Handle) {
        let idx = handle.0;
        debug_assert!(self.slots[idx as usize].live, "stale handle");
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        let slot = &mut self.slots[idx as usize];
        slot.prev = NIL;
        slot.next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Removes and returns the LRU entry.
    pub fn pop_back(&mut self) -> Option<(ObjectId, u64)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let (object, size) = {
            let slot = &self.slots[idx as usize];
            (slot.object, slot.size)
        };
        self.remove(Handle(idx));
        Some((object, size))
    }

    /// The LRU entry, if any, without removing it.
    pub fn back(&self) -> Option<(ObjectId, u64)> {
        if self.tail == NIL {
            None
        } else {
            let slot = &self.slots[self.tail as usize];
            Some((slot.object, slot.size))
        }
    }

    /// Removes an arbitrary entry by handle, returning its object and size.
    pub fn remove(&mut self, handle: Handle) -> (ObjectId, u64) {
        let idx = handle.0;
        debug_assert!(self.slots[idx as usize].live, "stale handle");
        self.unlink(idx);
        let slot = &mut self.slots[idx as usize];
        slot.live = false;
        self.free.push(idx);
        self.len -= 1;
        (slot.object, slot.size)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let slot = &self.slots[idx as usize];
            (slot.prev, slot.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        let slot = &mut self.slots[idx as usize];
        slot.prev = NIL;
        slot.next = NIL;
    }

    /// Iterates from MRU to LRU (diagnostics and tests).
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, u64)> + '_ {
        LruIter {
            list: self,
            at: self.head,
        }
    }
}

impl Default for LruList {
    // A derived Default would zero `head`/`tail`, which are NIL-sentinel
    // fields — that once produced a self-linked cycle. Always delegate.
    fn default() -> Self {
        LruList::new()
    }
}

struct LruIter<'a> {
    list: &'a LruList,
    at: u32,
}

impl Iterator for LruIter<'_> {
    type Item = (ObjectId, u64);
    fn next(&mut self) -> Option<Self::Item> {
        if self.at == NIL {
            return None;
        }
        let slot = &self.list.slots[self.at as usize];
        self.at = slot.next;
        Some((slot.object, slot.size))
    }
}

/// `f64` with a total order, usable as a BTree key for priority queues.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrderedF64(pub f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(v: u64) -> ObjectId {
        ObjectId(v)
    }

    #[test]
    fn lru_order_is_maintained() {
        let mut l = LruList::new();
        l.push_front(o(1), 10);
        l.push_front(o(2), 20);
        l.push_front(o(3), 30);
        let order: Vec<u64> = l.iter().map(|(obj, _)| obj.0).collect();
        assert_eq!(order, vec![3, 2, 1]);
        assert_eq!(l.pop_back(), Some((o(1), 10)));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn move_to_front_reorders() {
        let mut l = LruList::new();
        let h1 = l.push_front(o(1), 1);
        l.push_front(o(2), 1);
        l.push_front(o(3), 1);
        l.move_to_front(h1);
        let order: Vec<u64> = l.iter().map(|(obj, _)| obj.0).collect();
        assert_eq!(order, vec![1, 3, 2]);
        assert_eq!(l.back(), Some((o(2), 1)));
    }

    #[test]
    fn remove_middle_keeps_links() {
        let mut l = LruList::new();
        l.push_front(o(1), 1);
        let h2 = l.push_front(o(2), 1);
        l.push_front(o(3), 1);
        assert_eq!(l.remove(h2), (o(2), 1));
        let order: Vec<u64> = l.iter().map(|(obj, _)| obj.0).collect();
        assert_eq!(order, vec![3, 1]);
    }

    #[test]
    fn slots_are_recycled() {
        let mut l = LruList::new();
        let h = l.push_front(o(1), 1);
        l.remove(h);
        let h2 = l.push_front(o(2), 1);
        assert_eq!(h.0, h2.0, "slot not recycled");
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn pop_from_empty_is_none() {
        let mut l = LruList::new();
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
        l.push_front(o(1), 1);
        l.pop_back();
        assert_eq!(l.pop_back(), None);
    }

    #[test]
    fn singleton_move_to_front_is_noop() {
        let mut l = LruList::new();
        let h = l.push_front(o(1), 5);
        l.move_to_front(h);
        assert_eq!(l.back(), Some((o(1), 5)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn default_list_is_truly_empty() {
        // Regression: a derived Default zeroed the NIL sentinels and made
        // the first pushed slot point at itself.
        let mut l = LruList::default();
        l.push_front(o(1), 1);
        l.push_front(o(2), 1);
        let order: Vec<u64> = l.iter().map(|(obj, _)| obj.0).collect();
        assert_eq!(order, vec![2, 1]);
        assert_eq!(l.pop_back(), Some((o(1), 1)));
        assert_eq!(l.pop_back(), Some((o(2), 1)));
        assert_eq!(l.pop_back(), None);
    }

    #[test]
    fn ordered_f64_total_order() {
        let mut v = vec![OrderedF64(2.0), OrderedF64(-1.0), OrderedF64(0.5)];
        v.sort();
        assert_eq!(v, vec![OrderedF64(-1.0), OrderedF64(0.5), OrderedF64(2.0)]);
    }
}
