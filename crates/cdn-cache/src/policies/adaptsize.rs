//! AdaptSize (Berger, Sitaraman & Harchol-Balter, "AdaptSize: Orchestrating
//! the Hot Object Memory Cache in a CDN", USENIX NSDI 2017).
//!
//! AdaptSize admits an object of size `s` with probability `e^(-s/c)` and
//! evicts with LRU. The admission parameter `c` is re-tuned periodically by
//! evaluating a Markov model of the cache over the recent request mix and
//! picking the `c` that maximizes the modeled object hit ratio.
//!
//! The model here is the same fixed-point ("characteristic time")
//! approximation the NSDI paper builds on: for candidate `c`, find `T` such
//! that the expected bytes resident equal the capacity, where an object of
//! rate `λ_i` and size `s_i` is resident with probability
//! `p_in(i) = p_adm(i) · (1 − e^(−λ_i T))`, `p_adm(i) = e^(−s_i/c)`; the
//! modeled OHR is the request-weighted mean of `1 − e^(−λ_i T)` gated by
//! admission. Candidates are powers of two; the best one becomes the new
//! `c`, exactly mirroring AdaptSize's "global search over the parameter
//! space of the model".

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::{CachePolicy, RequestOutcome};
use crate::policies::util::{Handle, LruList};

/// Requests between re-tunings of `c`.
const TUNE_INTERVAL: u64 = 50_000;
/// Minimum distinct objects in the interval stats before tuning.
const MIN_TUNE_OBJECTS: usize = 500;

/// AdaptSize: probabilistic size-aware admission over an LRU cache.
pub struct AdaptSize {
    capacity: u64,
    used: u64,
    /// Admission parameter `c` in bytes.
    c: f64,
    list: LruList,
    index: HashMap<ObjectId, Handle>,
    /// Interval statistics: object → (request count, size).
    window: HashMap<ObjectId, (u64, u64)>,
    requests_in_window: u64,
    rng: StdRng,
}

impl AdaptSize {
    /// Creates an AdaptSize cache of `capacity` bytes.
    pub fn new(capacity: u64, seed: u64) -> Self {
        AdaptSize {
            capacity,
            used: 0,
            // Initial c: a generous 1 MiB so the cold cache admits freely.
            c: 1024.0 * 1024.0,
            list: LruList::new(),
            index: HashMap::new(),
            window: HashMap::new(),
            requests_in_window: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The current admission parameter `c` (diagnostics).
    pub fn admission_parameter(&self) -> f64 {
        self.c
    }

    /// Modeled OHR for a candidate `c` over the interval statistics; see
    /// the module docs for the fixed point being solved.
    fn model_ohr(&self, candidate: f64) -> f64 {
        let window = self.requests_in_window.max(1) as f64;
        let items: Vec<(f64, f64, f64)> = self
            .window
            .values()
            .map(|&(count, size)| {
                let rate = count as f64 / window;
                let p_adm = (-(size as f64) / candidate).exp();
                (rate, size as f64, p_adm)
            })
            .collect();

        // Bisection on T: expected resident bytes are monotone in T.
        let expected_bytes = |t: f64| -> f64 {
            items
                .iter()
                .map(|&(rate, size, p_adm)| size * p_adm * (1.0 - (-rate * t).exp()))
                .sum()
        };
        let mut lo = 1.0f64;
        let mut hi = window * 64.0;
        if expected_bytes(hi) < self.capacity as f64 {
            // Everything fits even at enormous T: no capacity pressure.
            hi = f64::INFINITY;
        }
        let t = if hi.is_infinite() {
            f64::INFINITY
        } else {
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if expected_bytes(mid) > self.capacity as f64 {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            0.5 * (lo + hi)
        };

        // Request-weighted hit probability under (T, c).
        let mut hit_rate = 0.0;
        let mut total_rate = 0.0;
        for &(rate, _, p_adm) in &items {
            let p_hit_given_in = if t.is_infinite() {
                1.0
            } else {
                1.0 - (-rate * t).exp()
            };
            hit_rate += rate * p_adm * p_hit_given_in;
            total_rate += rate;
        }
        if total_rate == 0.0 {
            0.0
        } else {
            hit_rate / total_rate
        }
    }

    fn tune(&mut self) {
        if self.window.len() < MIN_TUNE_OBJECTS {
            return;
        }
        let mut best_c = self.c;
        let mut best_ohr = f64::NEG_INFINITY;
        // Candidates: powers of two from 256 B to 4 GiB.
        for exp in 8..=32 {
            let candidate = (1u64 << exp) as f64;
            let ohr = self.model_ohr(candidate);
            if ohr > best_ohr {
                best_ohr = ohr;
                best_c = candidate;
            }
        }
        self.c = best_c;
    }

    fn record(&mut self, request: &Request) {
        let entry = self
            .window
            .entry(request.object)
            .or_insert((0, request.size));
        entry.0 += 1;
        self.requests_in_window += 1;
        if self.requests_in_window >= TUNE_INTERVAL {
            self.tune();
            self.window.clear();
            self.requests_in_window = 0;
        }
    }
}

impl CachePolicy for AdaptSize {
    fn name(&self) -> &'static str {
        "AdaptSize"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.index.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        self.record(request);
        if let Some(&h) = self.index.get(&request.object) {
            self.list.move_to_front(h);
            return RequestOutcome::Hit;
        }
        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        // Probabilistic size-aware admission.
        let p_admit = (-(request.size as f64) / self.c).exp();
        if self.rng.gen::<f64>() >= p_admit {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.used + request.size > self.capacity {
            let (victim, size) = self.list.pop_back().expect("nonempty");
            self.index.remove(&victim);
            self.used -= size;
        }
        let h = self.list.push_front(request.object, request.size);
        self.index.insert(request.object, h);
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, size: u64) -> Request {
        Request::new(0, id, size)
    }

    #[test]
    fn small_objects_admitted_more_readily() {
        let mut c = AdaptSize::new(1 << 20, 1);
        c.c = 10_000.0;
        let mut small_admits = 0;
        let mut large_admits = 0;
        for i in 0..200 {
            if let RequestOutcome::Miss { admitted } = c.handle(&req(1_000 + i, 1_000)) {
                small_admits += admitted as u32;
            }
        }
        for i in 0..200 {
            if let RequestOutcome::Miss { admitted } = c.handle(&req(10_000 + i, 100_000)) {
                large_admits += admitted as u32;
            }
        }
        assert!(
            small_admits > large_admits + 50,
            "small {small_admits} vs large {large_admits}"
        );
    }

    #[test]
    fn tuning_shrinks_c_under_pressure_from_large_one_shots() {
        let mut cache = AdaptSize::new(200_000, 2);
        let before = cache.admission_parameter();
        // Hot small objects + a flood of one-shot large ones: the model
        // should learn to keep the small hot set by lowering c.
        for round in 0..TUNE_INTERVAL {
            let r = if round % 3 == 0 {
                req(round % 50, 2_000) // hot set of 50 small objects
            } else {
                req(1_000_000 + round, 150_000) // one-shot large
            };
            let _ = cache.handle(&Request::new(round, r.object, r.size));
        }
        let after = cache.admission_parameter();
        assert!(
            after < before,
            "c should shrink: before {before}, after {after}"
        );
    }

    #[test]
    fn model_prefers_capacity_respecting_c() {
        let mut cache = AdaptSize::new(100_000, 3);
        // Populate window stats directly: 1000 small hot + 1000 large cold.
        for i in 0..1000u64 {
            cache.window.insert(ObjectId(i), (20, 1_000));
            cache.window.insert(ObjectId(100_000 + i), (1, 200_000));
        }
        cache.requests_in_window = 1000 * 21;
        let small_c = cache.model_ohr(4096.0);
        let huge_c = cache.model_ohr((1u64 << 32) as f64);
        assert!(
            small_c > huge_c,
            "model: small-c OHR {small_c} <= huge-c OHR {huge_c}"
        );
    }

    #[test]
    fn capacity_respected() {
        let mut c = AdaptSize::new(5_000, 4);
        for i in 0..2_000u64 {
            c.handle(&req(i % 40, 200 + (i % 9) * 100));
            assert!(c.used() <= c.capacity());
        }
    }
}
