//! The trace-replay simulator.

use cdn_trace::Request;

use crate::cache::{CachePolicy, RequestOutcome};
use crate::metrics::{IntervalMetrics, SimResult};

/// Simulation options.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimConfig {
    /// Requests excluded from the measured metrics while the cache fills.
    /// The paper's evaluation trains on one trace part and measures on the
    /// next, which plays the same role.
    pub warmup: usize,
    /// Emit an [`IntervalMetrics`] entry every `interval` measured
    /// requests; 0 disables the series.
    pub interval: usize,
}

/// Replays `requests` against `policy`, collecting hit metrics.
///
/// In debug builds, asserts after every request that the policy respects
/// its byte capacity and that hit reporting is consistent with
/// [`CachePolicy::contains`].
pub fn simulate(
    policy: &mut dyn CachePolicy,
    requests: &[Request],
    config: &SimConfig,
) -> SimResult {
    let mut result = SimResult {
        policy: policy.name().to_string(),
        ..Default::default()
    };
    let mut current_interval = IntervalMetrics::default();

    for (k, request) in requests.iter().enumerate() {
        #[cfg(debug_assertions)]
        let resident_before = policy.contains(request.object);

        let outcome = policy.handle(request);

        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                outcome.is_hit(),
                resident_before,
                "{}: hit report inconsistent with contains() at request {k}",
                policy.name()
            );
            debug_assert!(
                policy.used() <= policy.capacity(),
                "{}: capacity exceeded ({} > {}) at request {k}",
                policy.name(),
                policy.used(),
                policy.capacity()
            );
        }

        let hit = outcome.is_hit();
        if k < config.warmup {
            result.warmup.record(request.size, hit);
            continue;
        }
        result.measured.record(request.size, hit);
        if let RequestOutcome::Miss { admitted } = outcome {
            if admitted {
                result.admitted_misses += 1;
            } else {
                result.bypassed_misses += 1;
            }
        }
        if config.interval > 0 {
            current_interval.record(request.size, hit);
            if current_interval.requests as usize >= config.interval {
                result.series.push(current_interval);
                current_interval = IntervalMetrics::default();
            }
        }
    }
    if config.interval > 0 && current_interval.requests > 0 {
        result.series.push(current_interval);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::lru::Lru;
    use cdn_trace::Request;

    fn reqs(ids: &[u64]) -> Vec<Request> {
        ids.iter()
            .enumerate()
            .map(|(i, &id)| Request::new(i as u64, id, 10))
            .collect()
    }

    #[test]
    fn counts_hits_and_misses() {
        let r = reqs(&[1, 2, 1, 3, 1]);
        let mut lru = Lru::new(100);
        let res = simulate(&mut lru, &r, &SimConfig::default());
        assert_eq!(res.measured.requests, 5);
        assert_eq!(res.measured.hits, 2);
        assert_eq!(res.admitted_misses, 3);
        assert_eq!(res.bypassed_misses, 0);
    }

    #[test]
    fn warmup_is_excluded() {
        let r = reqs(&[1, 2, 1, 1]);
        let mut lru = Lru::new(100);
        let res = simulate(
            &mut lru,
            &r,
            &SimConfig {
                warmup: 2,
                interval: 0,
            },
        );
        assert_eq!(res.warmup.requests, 2);
        assert_eq!(res.measured.requests, 2);
        assert_eq!(res.measured.hits, 2);
        assert_eq!(res.ohr(), 1.0);
    }

    #[test]
    fn interval_series_partitions_measured_requests() {
        let r = reqs(&[1, 2, 3, 1, 2, 3, 1]);
        let mut lru = Lru::new(1000);
        let res = simulate(
            &mut lru,
            &r,
            &SimConfig {
                warmup: 0,
                interval: 3,
            },
        );
        assert_eq!(res.series.len(), 3); // 3 + 3 + 1
        let total: u64 = res.series.iter().map(|s| s.requests).sum();
        assert_eq!(total, 7);
    }
}
