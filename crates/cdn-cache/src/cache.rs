//! The policy interface every cache implements.

use cdn_trace::{ObjectId, Request};

/// What happened when a policy handled one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The object was fully resident: a cache hit.
    Hit,
    /// The object was not resident.
    Miss {
        /// Whether the policy admitted the object after the miss.
        admitted: bool,
    },
}

impl RequestOutcome {
    /// True for [`RequestOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, RequestOutcome::Hit)
    }
}

/// A cache admission + eviction policy over a byte-capacity cache.
///
/// Implementations must uphold:
///
/// - [`CachePolicy::used`] never exceeds [`CachePolicy::capacity`] after
///   [`CachePolicy::handle`] returns (the simulator asserts this in debug
///   builds);
/// - `handle` returns [`RequestOutcome::Hit`] iff `contains` would have
///   returned `true` immediately before the call;
/// - objects larger than the capacity are never admitted.
pub trait CachePolicy {
    /// Short policy name as used in the paper's figures (e.g. `"LRU"`).
    fn name(&self) -> &'static str;

    /// Capacity in bytes.
    fn capacity(&self) -> u64;

    /// Bytes currently cached.
    fn used(&self) -> u64;

    /// Whether the object is currently fully resident.
    fn contains(&self, object: ObjectId) -> bool;

    /// Processes one request: records the hit or miss, performs admission
    /// and any evictions, and reports what happened.
    fn handle(&mut self, request: &Request) -> RequestOutcome;

    /// Number of objects currently resident (diagnostics).
    fn len(&self) -> usize;

    /// True when nothing is cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        assert!(RequestOutcome::Hit.is_hit());
        assert!(!RequestOutcome::Miss { admitted: true }.is_hit());
    }
}
