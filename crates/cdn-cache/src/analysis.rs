//! Analytical cache modeling: Che's approximation.
//!
//! CDN capacity planning (the paper cites Sundarrajan et al.'s footprint
//! descriptors as the CDN-scale version of this) predicts a cache's hit
//! ratio from workload statistics without simulating. Che's approximation
//! models an LRU cache by its *characteristic time* `T`: an object is
//! resident iff it was requested within the last `T` time units, where `T`
//! solves
//!
//! `sum_i size_i · (1 − exp(−rate_i · T)) = capacity`.
//!
//! The predicted hit probability of object `i` is then
//! `1 − exp(−rate_i · T)`. The same machinery drives AdaptSize's admission
//! tuning (see `policies::adaptsize`); this module exposes it directly for
//! cache sizing and is validated against the LRU simulator in tests.

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};

/// Per-object workload statistics extracted from a window.
#[derive(Clone, Debug)]
pub struct WorkloadModel {
    /// (request rate per request-slot, size in bytes) per object.
    objects: Vec<(f64, u64)>,
    /// Total requests in the window.
    pub window: u64,
}

impl WorkloadModel {
    /// Builds the model from a request window.
    pub fn from_requests(requests: &[Request]) -> Self {
        let mut counts: HashMap<ObjectId, (u64, u64)> = HashMap::new();
        for r in requests {
            let e = counts.entry(r.object).or_insert((0, r.size));
            e.0 += 1;
        }
        let window = requests.len() as u64;
        let objects = counts
            .into_values()
            .map(|(c, s)| (c as f64 / window.max(1) as f64, s))
            .collect();
        WorkloadModel { objects, window }
    }

    /// Number of distinct objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Expected resident bytes at characteristic time `t`.
    fn expected_bytes(&self, t: f64) -> f64 {
        self.objects
            .iter()
            .map(|&(rate, size)| size as f64 * (1.0 - (-rate * t).exp()))
            .sum()
    }

    /// Solves for the characteristic time of an LRU cache of
    /// `capacity` bytes. Returns `f64::INFINITY` when everything fits.
    pub fn characteristic_time(&self, capacity: u64) -> f64 {
        let total: f64 = self.objects.iter().map(|&(_, s)| s as f64).sum();
        if total <= capacity as f64 {
            return f64::INFINITY;
        }
        let mut lo = 0.0f64;
        let mut hi = self.window.max(1) as f64 * 64.0;
        // Expected bytes is monotone increasing in T.
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.expected_bytes(mid) > capacity as f64 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Predicted LRU object hit ratio at `capacity` (Che's approximation).
    pub fn predicted_ohr(&self, capacity: u64) -> f64 {
        let t = self.characteristic_time(capacity);
        let mut hit_rate = 0.0;
        let mut total_rate = 0.0;
        for &(rate, _) in &self.objects {
            let p_hit = if t.is_infinite() {
                1.0
            } else {
                1.0 - (-rate * t).exp()
            };
            hit_rate += rate * p_hit;
            total_rate += rate;
        }
        if total_rate == 0.0 {
            0.0
        } else {
            hit_rate / total_rate
        }
    }

    /// Predicted LRU byte hit ratio at `capacity`.
    pub fn predicted_bhr(&self, capacity: u64) -> f64 {
        let t = self.characteristic_time(capacity);
        let mut hit_bytes = 0.0;
        let mut total_bytes = 0.0;
        for &(rate, size) in &self.objects {
            let p_hit = if t.is_infinite() {
                1.0
            } else {
                1.0 - (-rate * t).exp()
            };
            hit_bytes += rate * size as f64 * p_hit;
            total_bytes += rate * size as f64;
        }
        if total_bytes == 0.0 {
            0.0
        } else {
            hit_bytes / total_bytes
        }
    }

    /// Hit-ratio curve over a set of capacities (for sizing plots).
    pub fn hit_ratio_curve(&self, capacities: &[u64]) -> Vec<(u64, f64)> {
        capacities
            .iter()
            .map(|&c| (c, self.predicted_ohr(c)))
            .collect()
    }

    /// The smallest capacity whose predicted OHR reaches `target`
    /// (binary search over the monotone curve); `None` if unreachable.
    pub fn capacity_for_ohr(&self, target: f64) -> Option<u64> {
        let total: u64 = self.objects.iter().map(|&(_, s)| s).sum();
        if self.predicted_ohr(total) < target {
            return None;
        }
        let mut lo = 0u64;
        let mut hi = total;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.predicted_ohr(mid) >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::lru::Lru;
    use crate::sim::{simulate, SimConfig};
    use cdn_trace::{GeneratorConfig, TraceGenerator, TraceStats};

    #[test]
    fn infinite_capacity_predicts_compulsory_limit() {
        let trace = TraceGenerator::new(GeneratorConfig::small(1, 10_000)).generate();
        let model = WorkloadModel::from_requests(trace.requests());
        let stats = TraceStats::from_trace(&trace);
        let ohr = model.predicted_ohr(u64::MAX / 2);
        // With everything resident, the model predicts OHR 1.0 under its
        // stationary assumption; the trace's actual ceiling is
        // 1 - unique/requests. The model must not exceed 1.
        assert!(ohr <= 1.0 + 1e-9);
        assert!(ohr > 1.0 - stats.unique_objects as f64 / stats.requests as f64 - 0.05);
    }

    #[test]
    fn curve_is_monotone_in_capacity() {
        let trace = TraceGenerator::new(GeneratorConfig::small(2, 20_000)).generate();
        let model = WorkloadModel::from_requests(trace.requests());
        let stats = TraceStats::from_trace(&trace);
        let caps: Vec<u64> = (1..=8).map(|i| stats.unique_bytes * i / 8).collect();
        let curve = model.hit_ratio_curve(&caps);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "curve not monotone: {curve:?}");
        }
    }

    #[test]
    fn prediction_tracks_simulated_lru() {
        let trace = TraceGenerator::new(GeneratorConfig::small(3, 40_000)).generate();
        let stats = TraceStats::from_trace(&trace);
        let model = WorkloadModel::from_requests(trace.requests());
        for fraction in [0.05, 0.2, 0.5] {
            let cap = stats.cache_size_for_fraction(fraction);
            let predicted = model.predicted_ohr(cap);
            let mut lru = Lru::new(cap);
            // Warm up on the first half, measure the second.
            let simmed = simulate(
                &mut lru,
                trace.requests(),
                &SimConfig {
                    warmup: 20_000,
                    interval: 0,
                },
            )
            .ohr();
            assert!(
                (predicted - simmed).abs() < 0.15,
                "fraction {fraction}: predicted {predicted:.3} vs simulated {simmed:.3}"
            );
        }
    }

    #[test]
    fn capacity_for_target_inverts_the_curve() {
        let trace = TraceGenerator::new(GeneratorConfig::small(4, 20_000)).generate();
        let model = WorkloadModel::from_requests(trace.requests());
        let cap = model.capacity_for_ohr(0.3).expect("reachable");
        let ohr = model.predicted_ohr(cap);
        assert!(ohr >= 0.3 - 1e-6);
        // One byte less should fall below target (within search tolerance).
        if cap > 1 {
            assert!(model.predicted_ohr(cap / 2) < ohr);
        }
        assert!(model.capacity_for_ohr(1.1).is_none());
    }

    #[test]
    fn empty_window_is_safe() {
        let model = WorkloadModel::from_requests(&[]);
        assert_eq!(model.num_objects(), 0);
        assert_eq!(model.predicted_ohr(100), 0.0);
        assert_eq!(model.predicted_bhr(100), 0.0);
    }
}
