//! Simulation metrics.

use serde::{Deserialize, Serialize};

/// Hit/miss counters for one measurement interval.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalMetrics {
    /// Requests in the interval.
    pub requests: u64,
    /// Full-object hits.
    pub hits: u64,
    /// Bytes requested.
    pub total_bytes: u64,
    /// Bytes served from cache.
    pub hit_bytes: u64,
}

impl IntervalMetrics {
    /// Object hit ratio of the interval.
    pub fn ohr(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Byte hit ratio of the interval.
    pub fn bhr(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.hit_bytes as f64 / self.total_bytes as f64
        }
    }

    pub(crate) fn record(&mut self, size: u64, hit: bool) {
        self.requests += 1;
        self.total_bytes += size;
        if hit {
            self.hits += 1;
            self.hit_bytes += size;
        }
    }
}

/// The outcome of replaying a trace against one policy.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimResult {
    /// Policy name the result belongs to.
    pub policy: String,
    /// Counters over the measured portion (after warmup).
    pub measured: IntervalMetrics,
    /// Counters over the warmup portion.
    pub warmup: IntervalMetrics,
    /// Misses that the policy chose to admit (measured portion).
    pub admitted_misses: u64,
    /// Misses that the policy declined to admit (measured portion).
    pub bypassed_misses: u64,
    /// Optional per-interval series (see [`crate::SimConfig::interval`]).
    pub series: Vec<IntervalMetrics>,
}

impl SimResult {
    /// Object hit ratio over the measured portion.
    pub fn ohr(&self) -> f64 {
        self.measured.ohr()
    }

    /// Byte hit ratio over the measured portion.
    pub fn bhr(&self) -> f64 {
        self.measured.bhr()
    }

    /// Fraction of misses the policy admitted.
    pub fn admission_rate(&self) -> f64 {
        let misses = self.admitted_misses + self.bypassed_misses;
        if misses == 0 {
            0.0
        } else {
            self.admitted_misses as f64 / misses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty() {
        let m = IntervalMetrics::default();
        assert_eq!(m.ohr(), 0.0);
        assert_eq!(m.bhr(), 0.0);
        let r = SimResult::default();
        assert_eq!(r.admission_rate(), 0.0);
    }

    #[test]
    fn record_accumulates() {
        let mut m = IntervalMetrics::default();
        m.record(10, true);
        m.record(30, false);
        assert_eq!(m.requests, 2);
        assert_eq!(m.hits, 1);
        assert_eq!(m.total_bytes, 40);
        assert_eq!(m.hit_bytes, 10);
        assert!((m.ohr() - 0.5).abs() < 1e-12);
        assert!((m.bhr() - 0.25).abs() < 1e-12);
    }
}
