//! Criterion microbenches for the GBDT substrate: training cost at the
//! paper's configuration (30 iterations) and single-row prediction latency
//! (the quantity behind Figure 7's per-thread ~300K predictions/s).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gbdt::{train, Dataset, GbdtParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic(n: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..features).map(|_| rng.gen::<f32>()).collect())
        .collect();
    let labels: Vec<f32> = rows
        .iter()
        .map(|r| ((r[0] + r[1] * 0.5) > 0.75) as u8 as f32)
        .collect();
    Dataset::from_rows(rows, labels).unwrap()
}

fn gbdt_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("gbdt_train");
    group.sample_size(10);
    for &n in &[5_000usize, 20_000] {
        let data = synthetic(n, 53, 1); // 53 = LFO's feature count
        group.bench_with_input(BenchmarkId::new("paper_params", n), &n, |b, _| {
            b.iter(|| train(&data, &GbdtParams::lfo_paper()).trees().len())
        });
    }
    group.finish();

    let data = synthetic(20_000, 53, 2);
    let model = train(&data, &GbdtParams::lfo_paper());
    let rows: Vec<Vec<f32>> = (0..256).map(|r| data.row(r)).collect();
    let mut group = c.benchmark_group("gbdt_predict");
    group.bench_function("single_row", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % rows.len();
            model.predict_proba(&rows[i])
        })
    });
    group.bench_function("batch_256", |b| b.iter(|| model.predict_batch(&rows)));
    group.finish();
}

criterion_group!(benches, gbdt_benches);
criterion_main!(benches);
