//! Criterion macrobench: one full LFO window cycle (record → OPT → label →
//! train), the recurring cost a production deployment pays per retraining
//! interval, plus the serving-side LfoCache request cost.

use criterion::{criterion_group, criterion_main, Criterion};

use cdn_cache::{simulate, SimConfig};
use cdn_trace::{GeneratorConfig, TraceGenerator, TraceStats};
use lfo::features::FeatureTracker;
use lfo::labels::build_training_set;
use lfo::pipeline::{run_pipeline, PipelineConfig};
use lfo::policy::LfoCache;
use lfo::train::train_window;
use lfo::LfoConfig;
use opt::{compute_opt, OptConfig};
use std::sync::Arc;

fn pipeline_benches(c: &mut Criterion) {
    let trace = TraceGenerator::new(GeneratorConfig::production(13, 12_000)).generate();
    let cache = TraceStats::from_trace(&trace).cache_size_for_fraction(0.10);
    let window = &trace.requests()[..4_000];

    let mut group = c.benchmark_group("lfo_window_cycle");
    group.sample_size(10);
    group.bench_function("opt_label_train_4k", |b| {
        b.iter(|| {
            let lfo_config = LfoConfig::default();
            let opt = compute_opt(window, &OptConfig::bhr(cache)).unwrap();
            let mut tracker = FeatureTracker::new(lfo_config.num_gaps, lfo_config.cost_model);
            let data = build_training_set(window, &opt, &mut tracker, cache);
            train_window(&data, &lfo_config).train_accuracy
        })
    });
    group.finish();

    // Serving path: requests/second through a trained LfoCache.
    let lfo_config = LfoConfig::default();
    let opt = compute_opt(window, &OptConfig::bhr(cache)).unwrap();
    let mut tracker = FeatureTracker::new(lfo_config.num_gaps, lfo_config.cost_model);
    let data = build_training_set(window, &opt, &mut tracker, cache);
    let trained = train_window(&data, &lfo_config);
    let model = Arc::new(trained.model);
    let serve_window = &trace.requests()[4_000..12_000];

    let mut group = c.benchmark_group("lfo_serving");
    group.sample_size(10);
    group.bench_function("cache_replay_8k", |b| {
        b.iter(|| {
            let mut cache_policy = LfoCache::new(cache, lfo_config.clone());
            cache_policy.install_model(Arc::clone(&model));
            simulate(&mut cache_policy, serve_window, &SimConfig::default())
                .measured
                .hits
        })
    });
    group.finish();

    let mut group = c.benchmark_group("lfo_end_to_end");
    group.sample_size(10);
    group.bench_function("pipeline_3_windows", |b| {
        b.iter(|| {
            let config = PipelineConfig {
                window: 4_000,
                cache_size: cache,
                ..Default::default()
            };
            run_pipeline(trace.requests(), &config)
                .unwrap()
                .live_total
                .hits
        })
    });
    group.finish();
}

criterion_group!(benches, pipeline_benches);
criterion_main!(benches);
