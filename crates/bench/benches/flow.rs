//! Criterion microbenches for the min-cost flow OPT computation: exact vs
//! time-segmented vs rank-pruned, across window sizes. Backs the §2.1
//! "save 90% of the calculation time" claim with controlled measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cdn_trace::{GeneratorConfig, TraceGenerator};
use opt::{compute_opt, compute_opt_pruned, compute_opt_segmented, OptConfig};

fn flow_benches(c: &mut Criterion) {
    let trace = TraceGenerator::new(GeneratorConfig::production(7, 5_000)).generate();
    let stats = cdn_trace::TraceStats::from_trace(&trace);
    let cache = stats.cache_size_for_fraction(0.10);
    let config = OptConfig::bhr(cache);

    let mut group = c.benchmark_group("opt_solve");
    group.sample_size(10);
    for &n in &[1_000usize, 2_000, 5_000] {
        let window = &trace.requests()[..n];
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| compute_opt(window, &config).unwrap().hit_bytes)
        });
        group.bench_with_input(BenchmarkId::new("segmented_1k", n), &n, |b, _| {
            b.iter(|| {
                compute_opt_segmented(window, &config, 1_000)
                    .unwrap()
                    .hit_bytes
            })
        });
        group.bench_with_input(BenchmarkId::new("pruned_10pct", n), &n, |b, _| {
            b.iter(|| {
                compute_opt_pruned(window, &config, 0.1)
                    .unwrap()
                    .result
                    .hit_bytes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, flow_benches);
criterion_main!(benches);
