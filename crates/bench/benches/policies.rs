//! Criterion microbenches: per-request processing cost of every cache
//! policy. CDN servers handle 40+ Gbit/s, so constant factors matter; this
//! bench shows where each policy's bookkeeping sits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cdn_cache::policies::by_name;
use cdn_cache::{simulate, SimConfig};
use cdn_trace::{GeneratorConfig, TraceGenerator};

fn policy_benches(c: &mut Criterion) {
    let trace = TraceGenerator::new(GeneratorConfig::production(11, 30_000)).generate();
    let stats = cdn_trace::TraceStats::from_trace(&trace);
    let cache = stats.cache_size_for_fraction(0.10);

    let mut group = c.benchmark_group("policy_replay_30k");
    group.sample_size(10);
    for name in [
        "LRU",
        "FIFO",
        "RND",
        "LRU-K",
        "LFU",
        "LFUDA",
        "GDSF",
        "GD-Wheel",
        "S4LRU",
        "AdaptSize",
        "Hyperbolic",
        "LHD",
        "TinyLFU",
        "RLC",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let mut policy = by_name(name, cache, 1).expect("known policy");
                simulate(policy.as_mut(), trace.requests(), &SimConfig::default())
                    .measured
                    .hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, policy_benches);
criterion_main!(benches);
