//! Shared experiment plumbing: scales, output files, common traces.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use cdn_trace::{GeneratorConfig, Trace, TraceGenerator, TraceStats};

/// How big to run the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-level: the CI smoke configuration (tiny traces, just enough
    /// to exercise every code path end to end).
    Smoke,
    /// Minutes-level: smaller traces, fewer seeds. The default.
    Quick,
    /// The full configuration used for EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Scales a (quick, full) pair; smoke runs use the quick value unless
    /// an experiment opts into [`Scale::pick3`].
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Smoke | Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Scales a (smoke, quick, full) triple.
    pub fn pick3<T>(self, smoke: T, quick: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Experiment context: output directory and scale.
pub struct Context {
    /// Where CSVs are written.
    pub out_dir: PathBuf,
    /// Experiment scale.
    pub scale: Scale,
}

impl Context {
    /// Creates a context, ensuring the output directory exists.
    pub fn new(out_dir: impl AsRef<Path>, scale: Scale) -> std::io::Result<Self> {
        fs::create_dir_all(out_dir.as_ref())?;
        Ok(Context {
            out_dir: out_dir.as_ref().to_path_buf(),
            scale,
        })
    }

    /// Writes a CSV file: a header line plus rows.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) -> std::io::Result<PathBuf> {
        let path = self.out_dir.join(name);
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{header}")?;
        for row in rows {
            writeln!(f, "{row}")?;
        }
        Ok(path)
    }

    /// The standard evaluation trace: a seeded production-like mix.
    pub fn standard_trace(&self, seed: u64) -> Trace {
        let n = self.scale.pick3(12_000, 60_000, 400_000);
        TraceGenerator::new(GeneratorConfig::production(seed, n)).generate()
    }

    /// The standard cache size: 10% of a trace's unique bytes (the paper's
    /// 256 GB server cache is likewise a modest fraction of a week-long
    /// trace's footprint).
    pub fn standard_cache_size(&self, trace: &Trace) -> u64 {
        TraceStats::from_trace(trace).cache_size_for_fraction(0.10)
    }

    /// Window size for pipeline experiments.
    pub fn window(&self) -> usize {
        self.scale.pick3(4_000, 15_000, 50_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn csv_writing_roundtrip() {
        let dir = std::env::temp_dir().join("lfo-bench-test");
        let ctx = Context::new(&dir, Scale::Quick).unwrap();
        let path = ctx
            .write_csv("t.csv", "a,b", &["1,2".into(), "3,4".into()])
            .unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
    }
}
