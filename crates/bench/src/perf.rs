//! The machine-readable perf summary: `results/BENCH_serve.json`.
//!
//! Both serving benchmarks write into one file so CI can upload a single
//! artifact: `repro fig7` fills the `fig7` section (prediction throughput
//! vs threads) and `repro serve` fills the `serve` section (end-to-end
//! sharded request throughput). Each writer loads the existing file,
//! replaces only its own section, and writes the merged result back, so
//! running the experiments in either order produces the same file.

use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use crate::harness::Context;

/// File name inside the results directory.
pub const BENCH_SERVE_FILE: &str = "BENCH_serve.json";

/// File name of the restart/durability summary.
pub const BENCH_RESTART_FILE: &str = "BENCH_restart.json";

/// One row of the Figure 7 thread sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Predictor threads.
    pub threads: usize,
    /// Single predictions scored per second across all threads.
    pub preds_per_sec: f64,
    /// Implied serving bandwidth at 32 KB objects.
    pub gbps_at_32kb: f64,
}

/// One row of the sharded serving sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeRow {
    /// Cache shards (one worker thread each).
    pub shards: usize,
    /// Requests replayed per second, admission + eviction included.
    pub reqs_per_sec: f64,
    /// Implied serving bandwidth at 32 KB objects.
    pub gbps_at_32kb: f64,
    /// Aggregate byte hit ratio over the replay.
    pub bhr: f64,
    /// `bhr` minus the unsharded single-cache reference BHR.
    pub bhr_delta_vs_unsharded: f64,
}

/// The whole `BENCH_serve.json` document. Both sections are always
/// present (possibly empty) so partial files round-trip through the
/// vendored serde_json without optional-field handling.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BenchServe {
    /// Host cores observed by the writing run (0 if unknown).
    pub host_cores: usize,
    /// `repro fig7` output.
    pub fig7: Vec<Fig7Row>,
    /// `repro serve` output.
    pub serve: Vec<ServeRow>,
}

impl BenchServe {
    /// Loads the current file, or a default document if it is missing or
    /// unreadable (e.g. written by an older layout).
    pub fn load(ctx: &Context) -> BenchServe {
        let path = ctx.out_dir.join(BENCH_SERVE_FILE);
        fs::read_to_string(path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_default()
    }

    /// Writes the document back, pretty-printed.
    pub fn store(&self, ctx: &Context) -> std::io::Result<PathBuf> {
        let path = ctx.out_dir.join(BENCH_SERVE_FILE);
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("BENCH_serve encode: {e:?}")))?;
        fs::write(&path, json)?;
        Ok(path)
    }

    /// The core count to record; 0 when the host does not report one.
    pub fn detect_cores() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    }
}

/// The `BENCH_restart.json` document: `repro restart` kills the staged
/// pipeline mid-trace and restarts it from the artifact store, comparing a
/// warm (restored-model) restart against a cold (LRU) restart and against
/// the uninterrupted run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BenchRestart {
    /// Requests in the trace.
    pub requests: usize,
    /// Requests per pipeline window.
    pub window: usize,
    /// Window index at which the first run was killed.
    pub kill_window: usize,
    /// Models persisted by the killed run before it died.
    pub persisted_before_kill: usize,
    /// Whether the warm restart actually restored a model from disk.
    pub warm_restored: bool,
    /// Restore decision (`Deployed`, `RejectedDrift`, ... as debug text).
    pub restore_decision: String,
    /// First-window BHR of the restarted run without warm start.
    pub cold_first_window_bhr: f64,
    /// First-window BHR of the restarted run with warm start.
    pub warm_first_window_bhr: f64,
    /// Full-trace BHR of the uninterrupted run.
    pub uninterrupted_bhr: f64,
    /// Full-trace BHR of killed-run prefix + warm-restarted suffix.
    pub restarted_bhr: f64,
    /// `restarted_bhr - uninterrupted_bhr`.
    pub bhr_delta: f64,
}

impl BenchRestart {
    /// Writes the document, pretty-printed (single writer, no merge).
    pub fn store(&self, ctx: &Context) -> std::io::Result<PathBuf> {
        let path = ctx.out_dir.join(BENCH_RESTART_FILE);
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("BENCH_restart encode: {e:?}")))?;
        fs::write(&path, json)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn sections_merge_across_writers() {
        let dir = std::env::temp_dir().join("lfo-bench-serve-json");
        let _ = fs::remove_dir_all(&dir);
        let ctx = Context::new(&dir, Scale::Smoke).unwrap();

        // Missing file loads as empty.
        let mut doc = BenchServe::load(&ctx);
        assert!(doc.fig7.is_empty() && doc.serve.is_empty());

        // fig7 writes its section first...
        doc.fig7 = vec![Fig7Row {
            threads: 1,
            preds_per_sec: 250_000.0,
            gbps_at_32kb: 65.5,
        }];
        doc.store(&ctx).unwrap();

        // ...then serve loads, adds its own, and fig7's rows survive.
        let mut doc = BenchServe::load(&ctx);
        assert_eq!(doc.fig7.len(), 1);
        doc.serve = vec![ServeRow {
            shards: 4,
            reqs_per_sec: 1_000_000.0,
            gbps_at_32kb: 262.1,
            bhr: 0.71,
            bhr_delta_vs_unsharded: -0.003,
        }];
        doc.store(&ctx).unwrap();

        let doc = BenchServe::load(&ctx);
        assert_eq!(doc.fig7.len(), 1);
        assert_eq!(doc.serve.len(), 1);
        assert_eq!(doc.fig7[0].threads, 1);
        assert_eq!(doc.serve[0].shards, 4);
    }

    #[test]
    fn unreadable_files_fall_back_to_default() {
        let dir = std::env::temp_dir().join("lfo-bench-serve-json-bad");
        let _ = fs::remove_dir_all(&dir);
        let ctx = Context::new(&dir, Scale::Smoke).unwrap();
        fs::write(ctx.out_dir.join(BENCH_SERVE_FILE), "not json").unwrap();
        let doc = BenchServe::load(&ctx);
        assert!(doc.fig7.is_empty() && doc.serve.is_empty());
    }
}
