//! The machine-readable perf summary: `results/BENCH_serve.json`.
//!
//! Both serving benchmarks write into one file so CI can upload a single
//! artifact: `repro fig7` fills the `fig7` section (prediction throughput
//! vs threads) and `repro serve` fills the `serve` section (end-to-end
//! sharded request throughput). Each writer loads the existing file,
//! replaces only its own section, and writes the merged result back, so
//! running the experiments in either order produces the same file.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use gbdt::{train, train_continued, BinMap, BinnedDataset, Dataset, GbdtParams};
use serde::{Deserialize, Serialize};

use crate::harness::Context;

/// File name inside the results directory.
pub const BENCH_SERVE_FILE: &str = "BENCH_serve.json";

/// File name of the engine-comparison summary (`repro fig7`).
pub const BENCH_FIG7_FILE: &str = "BENCH_fig7.json";

/// File name of the restart/durability summary.
pub const BENCH_RESTART_FILE: &str = "BENCH_restart.json";

/// File name of the incremental-retraining summary.
pub const BENCH_RETRAIN_FILE: &str = "BENCH_retrain.json";

/// File name of the adversarial guardrail summary.
pub const BENCH_ADVERSARIAL_FILE: &str = "BENCH_adversarial.json";

/// File name of the memory-bounded serving-state summary (`repro memory`).
pub const BENCH_MEMORY_FILE: &str = "BENCH_memory.json";

/// File the multi-PoP topology comparison writes.
pub const BENCH_POPS_FILE: &str = "BENCH_pops.json";

/// File the shard-scaling shared-doorkeeper sweep writes.
pub const BENCH_CONCURRENCY_FILE: &str = "BENCH_concurrency.json";

/// This process's peak resident set size in bytes: `VmHWM` from
/// `/proc/self/status` on Linux, `None` where the kernel does not expose
/// it. A whole-process high-water mark — it includes every experiment run
/// earlier in the same `repro` invocation, so compare rows within one run,
/// not across runs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// One row of the Figure 7 thread sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Predictor threads.
    pub threads: usize,
    /// Single predictions scored per second across all threads.
    pub preds_per_sec: f64,
    /// Implied serving bandwidth at 32 KB objects.
    pub gbps_at_32kb: f64,
}

/// One row of the sharded serving sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeRow {
    /// Serving engine the shard fleet scored through
    /// (`flat` / `quantized+pruned`).
    pub engine: String,
    /// Cache shards (one worker thread each).
    pub shards: usize,
    /// Requests replayed per second, admission + eviction included.
    pub reqs_per_sec: f64,
    /// Implied serving bandwidth at 32 KB objects.
    pub gbps_at_32kb: f64,
    /// Aggregate byte hit ratio over the replay.
    pub bhr: f64,
    /// `bhr` minus the unsharded single-cache reference BHR.
    pub bhr_delta_vs_unsharded: f64,
    /// Feature-tracker bytes summed across shards at shutdown.
    pub tracker_bytes: u64,
    /// Admission-index bytes (resident map + eviction queue) summed
    /// across shards at shutdown.
    pub index_bytes: u64,
    /// Compiled-model bytes, counted once (the fleet shares one slot).
    pub model_bytes: u64,
    /// `(tracker + index + model) / resident objects` at shutdown — the
    /// metadata cost of serving one cached object.
    pub metadata_bytes_per_object: f64,
    /// The tracker component of `metadata_bytes_per_object`.
    pub tracker_bytes_per_object: f64,
    /// The admission-index component of `metadata_bytes_per_object`.
    pub index_bytes_per_object: f64,
    /// The compiled-model component of `metadata_bytes_per_object`.
    pub model_bytes_per_object: f64,
    /// Process peak RSS when the row was measured ([`peak_rss_bytes`];
    /// `None` where the kernel does not report it).
    pub peak_rss_bytes: Option<u64>,
    /// Guardrail mode across the fleet at shutdown (`off` when the sweep
    /// ran without a guardrail, else `learned` / `lru-forced` / `mixed`).
    pub guardrail_mode: String,
    /// Guardrail trips summed across shards over the replay.
    pub guardrail_trips: u64,
    /// Shadow ghost-LRU BHR on the sampled substream (0 when off).
    pub shadow_lru_bhr: f64,
    /// Realized BHR on the same sampled substream (0 when off).
    pub shadow_realized_bhr: f64,
}

/// The whole `BENCH_serve.json` document. Both sections are always
/// present (possibly empty) so partial files round-trip through the
/// vendored serde_json without optional-field handling.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BenchServe {
    /// Host cores observed by the writing run (0 if unknown).
    pub host_cores: usize,
    /// `repro fig7` output.
    pub fig7: Vec<Fig7Row>,
    /// `repro serve` output.
    pub serve: Vec<ServeRow>,
}

impl BenchServe {
    /// Loads the current file, or a default document if it is missing or
    /// unreadable (e.g. written by an older layout).
    pub fn load(ctx: &Context) -> BenchServe {
        let path = ctx.out_dir.join(BENCH_SERVE_FILE);
        fs::read_to_string(path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_default()
    }

    /// Writes the document back, pretty-printed.
    pub fn store(&self, ctx: &Context) -> std::io::Result<PathBuf> {
        let path = ctx.out_dir.join(BENCH_SERVE_FILE);
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("BENCH_serve encode: {e:?}")))?;
        fs::write(&path, json)?;
        Ok(path)
    }

    /// The core count to record; 0 when the host does not report one.
    pub fn detect_cores() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    }
}

/// One cell of the engine-comparison matrix: one serving engine at one
/// thread count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7EngineRow {
    /// Engine label ([`gbdt::EngineKind::label`]).
    pub engine: String,
    /// Predictor threads.
    pub threads: usize,
    /// Single predictions scored per second across all threads.
    pub preds_per_sec: f64,
    /// This engine's rate divided by the flat engine's rate at the same
    /// thread count.
    pub speedup_vs_flat: f64,
}

/// The `BENCH_fig7.json` document: `repro fig7`'s engine comparison —
/// recursive vs flat vs quantized vs quantized+pruned, each at the same
/// thread counts over the same packed row set.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BenchFig7 {
    /// Host cores observed by the writing run (0 if unknown).
    pub host_cores: usize,
    /// The engine × threads matrix.
    pub rows: Vec<Fig7EngineRow>,
    /// Best quantized-over-flat speedup across the swept thread counts
    /// (the headline the acceptance gate checks: >= 3x).
    pub quantized_speedup_max: f64,
}

impl BenchFig7 {
    /// Writes the document, pretty-printed (single writer, no merge).
    pub fn store(&self, ctx: &Context) -> std::io::Result<PathBuf> {
        let path = ctx.out_dir.join(BENCH_FIG7_FILE);
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("BENCH_fig7 encode: {e:?}")))?;
        fs::write(&path, json)?;
        Ok(path)
    }
}

/// The `BENCH_restart.json` document: `repro restart` kills the staged
/// pipeline mid-trace and restarts it from the artifact store, comparing a
/// warm (restored-model) restart against a cold (LRU) restart and against
/// the uninterrupted run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BenchRestart {
    /// Requests in the trace.
    pub requests: usize,
    /// Requests per pipeline window.
    pub window: usize,
    /// Window index at which the first run was killed.
    pub kill_window: usize,
    /// Models persisted by the killed run before it died.
    pub persisted_before_kill: usize,
    /// Whether the warm restart actually restored a model from disk.
    pub warm_restored: bool,
    /// Restore decision (`Deployed`, `RejectedDrift`, ... as debug text).
    pub restore_decision: String,
    /// First-window BHR of the restarted run without warm start.
    pub cold_first_window_bhr: f64,
    /// First-window BHR of the restarted run with warm start.
    pub warm_first_window_bhr: f64,
    /// Full-trace BHR of the uninterrupted run.
    pub uninterrupted_bhr: f64,
    /// Full-trace BHR of killed-run prefix + warm-restarted suffix.
    pub restarted_bhr: f64,
    /// `restarted_bhr - uninterrupted_bhr`.
    pub bhr_delta: f64,
}

impl BenchRestart {
    /// Writes the document, pretty-printed (single writer, no merge).
    pub fn store(&self, ctx: &Context) -> std::io::Result<PathBuf> {
        let path = ctx.out_dir.join(BENCH_RESTART_FILE);
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("BENCH_restart encode: {e:?}")))?;
        fs::write(&path, json)?;
        Ok(path)
    }
}

/// One adversarial scenario replayed with the guardrail off and on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdversarialRow {
    /// Scenario name (`benign`, `burst-thrash`, ...).
    pub scenario: String,
    /// Exact full-replay LRU BHR on the same stream ([`lfo::lru_reference_bhr`]).
    pub lru_bhr: f64,
    /// The runtime bound `(1 - epsilon) * lru_bhr - delta`.
    pub bound: f64,
    /// Realized BHR with the guardrail disabled (pure learned policy).
    pub off_bhr: f64,
    /// Realized BHR with the guardrail enforcing.
    pub on_bhr: f64,
    /// Whether the guardrail-off replay held the bound.
    pub off_holds: bool,
    /// Whether the guardrail-on replay held the bound.
    pub on_holds: bool,
    /// Guardrail trips over the guardrail-on replay.
    pub trips: u64,
    /// Requests served under guardrail-forced LRU in the on replay.
    pub forced_requests: u64,
    /// Replay throughput with the guardrail off.
    pub off_reqs_per_sec: f64,
    /// Replay throughput with the guardrail on.
    pub on_reqs_per_sec: f64,
    /// Process peak RSS when the row was measured ([`peak_rss_bytes`];
    /// `None` where the kernel does not report it).
    pub peak_rss_bytes: Option<u64>,
}

/// `BENCH_adversarial.json` — the guardrail bound checked scenario by
/// scenario, plus the no-adversary overhead (single writer, no merge).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BenchAdversarial {
    /// Requests per replay.
    pub requests: usize,
    /// Guardrail `epsilon` used for the bound.
    pub epsilon: f64,
    /// Guardrail `delta` used for the bound.
    pub delta: f64,
    /// Guardrail evaluation window (sampled requests).
    pub guardrail_window: u64,
    /// SHARDS-style sampling shift (rate `1 / 2^shift`).
    pub sample_shift: u32,
    /// Per-scenario bound checks.
    pub rows: Vec<AdversarialRow>,
    /// `|on_bhr - off_bhr|` on the benign trace.
    pub benign_bhr_delta: f64,
    /// `on_reqs_per_sec / off_reqs_per_sec` on the benign trace (best-of-N).
    pub benign_rate_ratio: f64,
}

impl BenchAdversarial {
    /// Writes the document, pretty-printed (single writer, no merge).
    pub fn store(&self, ctx: &Context) -> std::io::Result<PathBuf> {
        let path = ctx.out_dir.join(BENCH_ADVERSARIAL_FILE);
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("BENCH_adversarial encode: {e:?}")))?;
        fs::write(&path, json)?;
        Ok(path)
    }
}

/// One configuration of the memory-bounded serving-state sweep: a tracker
/// budget × sample-K pairing replayed over the huge-catalog trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemoryRow {
    /// Row label (`exact` for the reference replay, else `b{budget}/k{K}`).
    pub label: String,
    /// Eviction discipline ([`lfo::LfoCache::eviction_label`]).
    pub eviction: String,
    /// Tracker object budget (0 = unbounded exact tracker).
    pub tracker_budget: u64,
    /// Aggregate byte hit ratio over the replay.
    pub bhr: f64,
    /// `exact bhr − this bhr`; positive = hits given up for the savings.
    pub bhr_cost_vs_exact: f64,
    /// Requests replayed per second (single warm pass).
    pub reqs_per_sec: f64,
    /// Feature-tracker bytes at shutdown.
    pub tracker_bytes: u64,
    /// Admission-index bytes (resident map + eviction index) at shutdown.
    pub index_bytes: u64,
    /// Compiled-model bytes.
    pub model_bytes: u64,
    /// `(tracker + index + model) / resident objects` at shutdown.
    pub metadata_bytes_per_object: f64,
    /// Exact row's `metadata_bytes_per_object` over this row's (>1 = this
    /// row is cheaper).
    pub metadata_reduction_vs_exact: f64,
    /// Cache residents at shutdown.
    pub resident_objects: u64,
    /// Objects holding an exact gap history at shutdown.
    pub tracked_objects: u64,
    /// Process peak RSS when the row was measured ([`peak_rss_bytes`]).
    pub peak_rss_bytes: Option<u64>,
}

/// `BENCH_memory.json` — the memory-bounded serving-state sweep (single
/// writer, no merge).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BenchMemory {
    /// Requests in the replayed huge-catalog trace.
    pub requests: usize,
    /// Unique objects in the trace (the catalog pressure).
    pub unique_objects: u64,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Whether the acceptance gates were asserted (quick/full scales).
    pub gates_enforced: bool,
    /// Best sampled-config reqs/s over the exact baseline's, from the
    /// interleaved best-of-N timing duel (gate: ≥ 1.0 when enforced).
    pub hit_path_speedup: f64,
    /// Per-configuration rows; the first is the exact baseline.
    pub rows: Vec<MemoryRow>,
}

impl BenchMemory {
    /// Writes the document, pretty-printed (single writer, no merge).
    pub fn store(&self, ctx: &Context) -> std::io::Result<PathBuf> {
        let path = ctx.out_dir.join(BENCH_MEMORY_FILE);
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("BENCH_memory encode: {e:?}")))?;
        fs::write(&path, json)?;
        Ok(path)
    }
}

/// One topology variant of the multi-PoP comparison (`repro pops`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PopsRow {
    /// Variant label (`independent`, `two-tier per-PoP`, `two-tier
    /// federated`).
    pub label: String,
    /// Per-edge cache bytes.
    pub edge_bytes: u64,
    /// Regional cache bytes (0 for the independent single tier).
    pub regional_bytes: u64,
    /// Total cache bytes across the topology (matched across variants).
    pub total_cache_bytes: u64,
    /// Fraction of demanded bytes kept off the origin.
    pub origin_offload: f64,
    /// Aggregate byte hit ratio across both tiers.
    pub aggregate_bhr: f64,
    /// Byte hit ratio of the edge tier alone.
    pub edge_bhr: f64,
    /// Bytes fetched from the origin.
    pub origin_bytes: u64,
    /// Mean per-PoP trainer wall-clock in milliseconds (the recurring
    /// per-rollout-cycle cost one PoP pays; excludes the shared federated
    /// base).
    pub mean_pop_train_ms: f64,
    /// Shared base-model training milliseconds (federated only, paid once
    /// per fleet rollout).
    pub base_train_ms: f64,
    /// Per-PoP rollout kinds (`Scratch`, `Incremental`,
    /// `ScratchFallback`).
    pub rollout_kinds: Vec<String>,
    /// Process peak RSS when the row was measured ([`peak_rss_bytes`];
    /// `None` where the kernel does not report it).
    pub peak_rss_bytes: Option<u64>,
}

/// `BENCH_pops.json` — the multi-PoP topology comparison (single writer,
/// no merge).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BenchPops {
    /// Edge PoPs in the topology.
    pub num_pops: usize,
    /// Requests in the merged multi-PoP trace.
    pub requests: usize,
    /// Catalog overlap fraction of the trace.
    pub overlap: f64,
    /// Per-PoP popularity skew of the trace.
    pub skew: f64,
    /// Matched total cache bytes every variant is given.
    pub total_cache_bytes: u64,
    /// Wall-clock cost of training the shared regional tier's admission
    /// model (paid once, shared by both two-tier variants).
    pub regional_train_ms: f64,
    /// Whether the acceptance gates were asserted (quick/full scales).
    pub gates_enforced: bool,
    /// Shared grid fingerprint of the federated rollout.
    pub federated_fingerprint: Option<String>,
    /// Per-variant rows.
    pub rows: Vec<PopsRow>,
}

impl BenchPops {
    /// Writes the document, pretty-printed (single writer, no merge).
    pub fn store(&self, ctx: &Context) -> std::io::Result<PathBuf> {
        let path = ctx.out_dir.join(BENCH_POPS_FILE);
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("BENCH_pops encode: {e:?}")))?;
        fs::write(&path, json)?;
        Ok(path)
    }
}

/// One cell of the shard-scaling doorkeeper sweep: a shard count × sketch
/// placement (fleet-shared pool vs one private sketch per shard) replaying
/// the same bounded-budget trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConcurrencyRow {
    /// Sketch placement: `shared` (one fleet pool) or `per-shard`.
    pub sketch: String,
    /// Cache shards (one worker thread each).
    pub shards: usize,
    /// Requests replayed per second, best of the interleaved passes.
    pub reqs_per_sec: f64,
    /// Aggregate byte hit ratio over the replay.
    pub bhr: f64,
    /// Fleet doorkeeper metadata at shutdown: per-shard tracker bytes
    /// summed, plus the shared sketch counted once (`per-shard` rows carry
    /// the sketch inside every shard's tracker bytes — that is the point).
    pub fleet_tracker_bytes: u64,
    /// Fleet metadata (tracker + index + one model + one shared sketch)
    /// per resident object at shutdown.
    pub metadata_bytes_per_object: f64,
    /// Shared-pool CAS sketch writes over the replay (0 for `per-shard`).
    pub sketch_updates: u64,
    /// Shared-pool CAS retries — the contention signal on the lock-free
    /// slot path (0 for `per-shard`).
    pub cas_retries: u64,
    /// Times a stripe sweep found its ring lock held (0 for `per-shard`).
    pub stripe_contention: u64,
    /// Estimated guardrail ghost bytes saved by borrowing the shared
    /// doorkeeper (0 for `per-shard` rows and guardrail-off sweeps).
    pub ghost_saved_bytes: u64,
    /// Process peak RSS when the row was measured ([`peak_rss_bytes`]).
    pub peak_rss_bytes: Option<u64>,
}

/// `BENCH_concurrency.json` — the fleet-shared doorkeeper scaling sweep
/// (single writer, no merge). The gates compare the shared and per-shard
/// placements at `gate_shards` shards: fleet doorkeeper memory must stay
/// ≤ 1.2× the single-cache budget while BHR stays within 0.01 and reqs/s
/// within 0.95× of the per-shard baseline.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BenchConcurrency {
    /// Requests in the replayed trace.
    pub requests: usize,
    /// Unique objects in the trace.
    pub unique_objects: u64,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Tracker object budget every configuration runs under.
    pub tracker_budget: u64,
    /// Doorkeeper metadata bytes of the 1-shard per-shard reference — the
    /// "single-cache budget" the memory gate is phrased against.
    pub single_cache_tracker_bytes: u64,
    /// Shard count the gates are evaluated at.
    pub gate_shards: usize,
    /// Shared-sketch fleet doorkeeper bytes over
    /// `single_cache_tracker_bytes` at `gate_shards` (gate: ≤ 1.2).
    pub shared_memory_ratio: f64,
    /// Same ratio for the per-shard placement (the ~N× the pool removes).
    pub per_shard_memory_ratio: f64,
    /// `|shared bhr − per-shard bhr|` at `gate_shards` (gate: ≤ 0.01).
    pub bhr_delta: f64,
    /// Shared reqs/s over per-shard reqs/s at `gate_shards`, best-of-N
    /// interleaved (gate: ≥ 0.95).
    pub rate_ratio: f64,
    /// Whether the acceptance gates were asserted (quick/full scales).
    pub gates_enforced: bool,
    /// Per-configuration rows.
    pub rows: Vec<ConcurrencyRow>,
}

impl BenchConcurrency {
    /// Writes the document, pretty-printed (single writer, no merge).
    pub fn store(&self, ctx: &Context) -> std::io::Result<PathBuf> {
        let path = ctx.out_dir.join(BENCH_CONCURRENCY_FILE);
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("BENCH_concurrency encode: {e:?}")))?;
        fs::write(&path, json)?;
        Ok(path)
    }
}

/// One window of the scratch-vs-incremental pipeline comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RetrainWindowRow {
    /// Window index.
    pub window: usize,
    /// Trainer-stage wall-clock of the scratch-per-window run.
    pub scratch_train_ms: f64,
    /// Trainer-stage wall-clock of the incremental run.
    pub incremental_train_ms: f64,
    /// How the incremental run trained this window
    /// (`Scratch` / `Incremental` / `ScratchFallback`, as debug text).
    pub incremental_kind: String,
    /// Trees in the incremental run's candidate ensemble.
    pub incremental_trees: usize,
}

/// Micro-benchmark section: the two mechanisms the incremental path is
/// built on, timed in isolation on one window's training set.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RetrainMicro {
    /// Rows in the dataset the micro-benchmarks ran on.
    pub rows: usize,
    /// [`BinnedDataset::build`]: quantile fit + apply from scratch.
    pub bin_build_ms: f64,
    /// [`BinnedDataset::from_map`]: apply against a pre-fitted frozen grid.
    pub bin_frozen_ms: f64,
    /// Full scratch fit at the configured iteration count.
    pub scratch_train_ms: f64,
    /// Warm-start continuation appending `delta_trees` to that model.
    pub warm_train_ms: f64,
    /// Delta trees appended by the warm-start measurement.
    pub delta_trees: usize,
}

/// Times binned-dataset construction with and without a frozen [`BinMap`]
/// and a scratch fit vs. a warm-start continuation, on `data`.
pub fn retrain_micro(data: &Dataset, params: &GbdtParams, delta_trees: usize) -> RetrainMicro {
    let ms = |t: Instant| t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let built = BinnedDataset::build(data, params.max_bins);
    let bin_build_ms = ms(t);
    std::hint::black_box(&built);

    let map = BinMap::fit(data, params.max_bins);
    let t = Instant::now();
    let frozen = BinnedDataset::from_map(data, &map);
    let bin_frozen_ms = ms(t);
    std::hint::black_box(&frozen);

    let t = Instant::now();
    let base = train(data, params);
    let scratch_train_ms = ms(t);

    let mut delta = params.clone();
    delta.num_iterations = delta_trees;
    let t = Instant::now();
    let warm = train_continued(&base, data, &delta, Some(&map));
    let warm_train_ms = ms(t);
    std::hint::black_box(&warm);

    RetrainMicro {
        rows: data.num_rows(),
        bin_build_ms,
        bin_frozen_ms,
        scratch_train_ms,
        warm_train_ms,
        delta_trees,
    }
}

/// The `BENCH_retrain.json` document: `repro retrain` runs the staged
/// pipeline twice over the same trace — scratch-per-window vs. incremental
/// warm-start retraining — and records the per-window trainer cost, the
/// cumulative speedup, and the BHR parity check.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BenchRetrain {
    /// Requests in the trace.
    pub requests: usize,
    /// Requests per pipeline window.
    pub window: usize,
    /// Delta trees appended per incremental window.
    pub delta_trees: usize,
    /// Full rebuild every Nth deployed window.
    pub full_refresh: usize,
    /// Ensemble cap (0 = unbounded).
    pub max_trees: usize,
    /// Per-window comparison.
    pub windows: Vec<RetrainWindowRow>,
    /// Mean trainer-stage ms after window 0, scratch run.
    pub scratch_mean_train_ms: f64,
    /// Mean trainer-stage ms after window 0, incremental run.
    pub incremental_mean_train_ms: f64,
    /// `scratch_mean_train_ms / incremental_mean_train_ms`.
    pub train_speedup: f64,
    /// Full-trace live BHR of the scratch run.
    pub scratch_bhr: f64,
    /// Full-trace live BHR of the incremental run.
    pub incremental_bhr: f64,
    /// `incremental_bhr - scratch_bhr` (parity check: within ±0.01).
    pub bhr_delta: f64,
    /// Isolated micro-benchmarks on one window's training set.
    pub micro: RetrainMicro,
}

impl BenchRetrain {
    /// Writes the document, pretty-printed (single writer, no merge).
    pub fn store(&self, ctx: &Context) -> std::io::Result<PathBuf> {
        let path = ctx.out_dir.join(BENCH_RETRAIN_FILE);
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("BENCH_retrain encode: {e:?}")))?;
        fs::write(&path, json)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn sections_merge_across_writers() {
        let dir = std::env::temp_dir().join("lfo-bench-serve-json");
        let _ = fs::remove_dir_all(&dir);
        let ctx = Context::new(&dir, Scale::Smoke).unwrap();

        // Missing file loads as empty.
        let mut doc = BenchServe::load(&ctx);
        assert!(doc.fig7.is_empty() && doc.serve.is_empty());

        // fig7 writes its section first...
        doc.fig7 = vec![Fig7Row {
            threads: 1,
            preds_per_sec: 250_000.0,
            gbps_at_32kb: 65.5,
        }];
        doc.store(&ctx).unwrap();

        // ...then serve loads, adds its own, and fig7's rows survive.
        let mut doc = BenchServe::load(&ctx);
        assert_eq!(doc.fig7.len(), 1);
        doc.serve = vec![ServeRow {
            engine: "quantized+pruned".into(),
            shards: 4,
            reqs_per_sec: 1_000_000.0,
            gbps_at_32kb: 262.1,
            bhr: 0.71,
            bhr_delta_vs_unsharded: -0.003,
            tracker_bytes: 1 << 20,
            index_bytes: 1 << 18,
            model_bytes: 1 << 16,
            metadata_bytes_per_object: 96.0,
            tracker_bytes_per_object: 64.0,
            index_bytes_per_object: 28.0,
            model_bytes_per_object: 4.0,
            peak_rss_bytes: peak_rss_bytes(),
            guardrail_mode: "learned".into(),
            guardrail_trips: 0,
            shadow_lru_bhr: 0.69,
            shadow_realized_bhr: 0.71,
        }];
        doc.store(&ctx).unwrap();

        let doc = BenchServe::load(&ctx);
        assert_eq!(doc.fig7.len(), 1);
        assert_eq!(doc.serve.len(), 1);
        assert_eq!(doc.fig7[0].threads, 1);
        assert_eq!(doc.serve[0].shards, 4);
    }

    #[test]
    fn retrain_micro_measures_both_mechanisms() {
        let rows: Vec<Vec<f32>> = (0..240)
            .map(|i| vec![(i % 17) as f32, (i % 5) as f32, (i % 29) as f32])
            .collect();
        let labels: Vec<f32> = (0..240).map(|i| ((i % 3) == 0) as u8 as f32).collect();
        let data = Dataset::from_rows(rows, labels).unwrap();
        let mut params = GbdtParams::lfo_paper();
        params.num_iterations = 4;
        params.num_threads = 1;
        let micro = retrain_micro(&data, &params, 2);
        assert_eq!(micro.rows, 240);
        assert_eq!(micro.delta_trees, 2);
        assert!(micro.bin_build_ms >= 0.0);
        assert!(micro.bin_frozen_ms >= 0.0);
        assert!(micro.scratch_train_ms > 0.0);
        assert!(micro.warm_train_ms > 0.0);
    }

    #[test]
    fn fig7_engine_document_round_trips() {
        let dir = std::env::temp_dir().join("lfo-bench-fig7-json");
        let _ = fs::remove_dir_all(&dir);
        let ctx = Context::new(&dir, Scale::Smoke).unwrap();
        let doc = BenchFig7 {
            host_cores: 8,
            rows: vec![Fig7EngineRow {
                engine: "quantized".into(),
                threads: 4,
                preds_per_sec: 9_000_000.0,
                speedup_vs_flat: 3.4,
            }],
            quantized_speedup_max: 3.4,
        };
        let path = doc.store(&ctx).unwrap();
        let back: BenchFig7 = serde_json::from_str(&fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(back.host_cores, 8);
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.rows[0].engine, "quantized");
        assert!((back.quantized_speedup_max - 3.4).abs() < 1e-12);
    }

    #[test]
    fn memory_document_round_trips() {
        let dir = std::env::temp_dir().join("lfo-bench-memory-json");
        let _ = fs::remove_dir_all(&dir);
        let ctx = Context::new(&dir, Scale::Smoke).unwrap();
        let doc = BenchMemory {
            requests: 60_000,
            unique_objects: 35_000,
            cache_bytes: 1 << 24,
            gates_enforced: true,
            hit_path_speedup: 1.2,
            rows: vec![MemoryRow {
                label: "b512/k16".into(),
                eviction: "sample16".into(),
                tracker_budget: 512,
                bhr: 0.41,
                bhr_cost_vs_exact: 0.004,
                reqs_per_sec: 900_000.0,
                tracker_bytes: 1 << 16,
                index_bytes: 1 << 14,
                model_bytes: 1 << 12,
                metadata_bytes_per_object: 52.0,
                metadata_reduction_vs_exact: 12.5,
                resident_objects: 1_500,
                tracked_objects: 512,
                peak_rss_bytes: peak_rss_bytes(),
            }],
        };
        let path = doc.store(&ctx).unwrap();
        let back: BenchMemory = serde_json::from_str(&fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.rows[0].label, "b512/k16");
        assert!((back.rows[0].metadata_reduction_vs_exact - 12.5).abs() < 1e-12);
        assert!(back.gates_enforced);
    }

    #[test]
    fn concurrency_document_round_trips() {
        let dir = std::env::temp_dir().join("lfo-bench-concurrency-json");
        let _ = fs::remove_dir_all(&dir);
        let ctx = Context::new(&dir, Scale::Smoke).unwrap();
        let doc = BenchConcurrency {
            requests: 80_000,
            unique_objects: 30_000,
            cache_bytes: 1 << 24,
            tracker_budget: 4_096,
            single_cache_tracker_bytes: 1 << 18,
            gate_shards: 4,
            shared_memory_ratio: 1.08,
            per_shard_memory_ratio: 3.9,
            bhr_delta: 0.002,
            rate_ratio: 1.01,
            gates_enforced: true,
            rows: vec![ConcurrencyRow {
                sketch: "shared".into(),
                shards: 4,
                reqs_per_sec: 800_000.0,
                bhr: 0.43,
                fleet_tracker_bytes: 1 << 18,
                metadata_bytes_per_object: 74.0,
                sketch_updates: 80_000,
                cas_retries: 12,
                stripe_contention: 3,
                ghost_saved_bytes: 10_000,
                peak_rss_bytes: peak_rss_bytes(),
            }],
        };
        let path = doc.store(&ctx).unwrap();
        let back: BenchConcurrency =
            serde_json::from_str(&fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.rows[0].sketch, "shared");
        assert_eq!(back.gate_shards, 4);
        assert!((back.shared_memory_ratio - 1.08).abs() < 1e-12);
        assert!(back.gates_enforced);
    }

    #[test]
    fn peak_rss_probe_reports_plausible_bytes_on_linux() {
        // On Linux the probe must parse VmHWM; elsewhere it returns None.
        // Either way it must not panic.
        let probed = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            let bytes = probed.expect("Linux must report VmHWM");
            assert!(
                (1 << 20..1u64 << 42).contains(&bytes),
                "implausible peak RSS: {bytes}"
            );
        } else {
            assert_eq!(probed, None, "VmHWM probe must not guess off-Linux");
        }
    }

    #[test]
    fn unreadable_files_fall_back_to_default() {
        let dir = std::env::temp_dir().join("lfo-bench-serve-json-bad");
        let _ = fs::remove_dir_all(&dir);
        let ctx = Context::new(&dir, Scale::Smoke).unwrap();
        fs::write(ctx.out_dir.join(BENCH_SERVE_FILE), "not json").unwrap();
        let doc = BenchServe::load(&ctx);
        assert!(doc.fig7.is_empty() && doc.serve.is_empty());
    }
}
