//! `repro serve`: end-to-end sharded serving throughput.
//!
//! Figure 7 measures the model in isolation; this experiment measures the
//! whole serving path — feature extraction, admission scoring, eviction
//! ranking, and metric accounting — by replaying the standard trace
//! through a [`ShardedLfoCache`] at 1/2/4/8 shards, once per serving
//! engine (the flat f32 walk vs the quantized+pruned integer kernel).
//! Alongside requests/s (and the implied Gbit/s at the paper's 32 KB
//! average object) it reports the aggregate BHR against an unsharded
//! single-cache reference, and the metadata bytes carried per cached
//! object (feature tracker + admission index + compiled model).
//!
//! Two gates run here: the quantized engine's full-trace BHR must stay
//! within ±0.005 of the flat engine on the deterministic single-shard
//! replay (multi-shard replays carry ~±0.01 of timing noise for either
//! engine, bounded separately against the unsharded reference), and (on
//! hosts with >= 4 cores, when the sweep reaches 4 shards) 4 quantized
//! shards must serve at least 1.5x the requests/s of 1 shard.

use std::sync::Arc;
use std::time::Instant;

use cdn_cache::cache::CachePolicy;
use cdn_trace::Request;
use gbdt::{BinMap, GbdtParams, Model};
use lfo::{
    ArtifactStore, CacheMetrics, GuardrailConfig, LfoArtifact, LfoCache, LfoConfig, ModelSlot,
    Provenance, ShardParams, ShardedLfoCache,
};

use crate::experiments::common::train_and_eval;
use crate::harness::Context;
use crate::perf::{peak_rss_bytes, BenchServe, ServeRow};

/// Implied serving bandwidth in Gbit/s at 32 KB average objects.
fn gbps(reqs_per_sec: f64) -> f64 {
    reqs_per_sec * 32.0 * 1024.0 * 8.0 / 1e9
}

/// Replays the trace through one unsharded `LfoCache`, producing the same
/// counters the sharded report aggregates.
fn replay_unsharded(requests: &[Request], capacity: u64, model: &Arc<Model>) -> CacheMetrics {
    let mut cache = LfoCache::new(capacity, LfoConfig::default());
    cache.install_model(model.clone());
    let mut metrics = CacheMetrics::default();
    for request in requests {
        let outcome = cache.handle(request);
        metrics.record(request.size, outcome);
    }
    metrics.evictions = cache.evictions;
    metrics.used_bytes = cache.used();
    metrics.resident_objects = cache.len() as u64;
    metrics
}

/// The engine a published artifact actually serves through, observed on a
/// probe cache subscribed to a fresh slot (the same publish path the shard
/// fleet uses).
fn published_engine(capacity: u64, artifact: &LfoArtifact) -> &'static str {
    let slot = ModelSlot::new();
    artifact.publish_to(&slot);
    let cache = LfoCache::with_slot(capacity, artifact.config.clone(), slot);
    cache.engine_label()
}

/// Runs the shard-scaling sweep under both serving engines.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(107);
    let cache_size = ctx.standard_cache_size(&trace);
    let w = ctx.window();
    let reqs = trace.requests();
    // One model serves the whole trace (the paper's protocol: learn on the
    // first window); training time is not part of the serving measurement.
    // The model round-trips through the artifact store: a previous run's
    // artifact for the same trace is cold-started instead of retraining,
    // and a fresh train persists its artifact for the next run. Artifacts
    // without a verified quantization fingerprint (written before the
    // quantized engine existed) are retrained rather than silently served
    // flat-only.
    let trace_id = format!("production-seed107-n{}", reqs.len());
    let store = ArtifactStore::open(ctx.out_dir.join("artifacts/serve")).ok();
    let restored = store.as_ref().and_then(|s| match s.load_latest() {
        Ok(a) if a.provenance.trace_id == trace_id && a.quantization_map().is_some() => Some(a),
        _ => None,
    });
    let artifact = match restored {
        Some(artifact) => {
            println!(
                "  cold start: reusing persisted artifact ({})",
                artifact.provenance.note
            );
            artifact
        }
        None => {
            let params = GbdtParams::lfo_paper();
            let te = train_and_eval(&reqs[..w], &reqs[w..2 * w], cache_size, &params);
            // Freeze the training grid alongside the model: with_bin_map
            // stamps the map's fingerprint into the lineage, which is what
            // authorizes publish-time quantization.
            let map = BinMap::fit(&te.train_data, params.max_bins);
            let artifact = LfoArtifact::new(
                LfoConfig::default(),
                te.model,
                0.5,
                Provenance {
                    trace_id: trace_id.clone(),
                    window: 0,
                    slot_version: 0,
                    note: format!("repro serve, first-window model, n={}", reqs.len()),
                    lineage: None,
                    pop: None,
                },
            )
            .with_bin_map(Some(map));
            match store.as_ref().map(|s| s.save(&artifact)) {
                Some(Ok(path)) => println!("  artifact saved: {}", path.display()),
                Some(Err(e)) => println!("  artifact save failed (non-fatal): {e}"),
                None => {}
            }
            artifact
        }
    };
    let model = Arc::new(artifact.model.clone());

    // The flat-engine variant: same model, same cutoff, no bin map — the
    // publish path compiles no quantized layout, so the fleet scores
    // through the f32 walk.
    let flat_artifact = {
        let mut a = artifact.clone();
        a.bin_map = None;
        a
    };
    assert_eq!(published_engine(cache_size, &flat_artifact), "flat");
    assert_eq!(
        published_engine(cache_size, &artifact),
        "quantized+pruned",
        "the fingerprinted artifact must compile the quantized engine"
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\n== serve: end-to-end sharded LFO throughput ({cores} cores) ==");
    println!(
        "  trace: {} requests, cache {} MB",
        reqs.len(),
        cache_size / (1024 * 1024)
    );

    // Unsharded reference: one cache, one thread, same model, flat engine.
    let started = Instant::now();
    let reference = replay_unsharded(reqs, cache_size, &model);
    let ref_secs = started.elapsed().as_secs_f64();
    let ref_rate = reqs.len() as f64 / ref_secs.max(1e-9);
    println!(
        "  unsharded reference: {:>9.0} reqs/s  BHR {:.4}  (admit {} bypass {} evict {})",
        ref_rate,
        reference.bhr(),
        reference.admitted_misses,
        reference.bypassed_misses,
        reference.evictions
    );

    println!(
        "  engine            shards   reqs/s      Gbit/s @32KB  BHR     dBHR    meta B/obj  \
         guard    trips  shadow lru/real"
    );
    let mut csv = Vec::new();
    let mut rows: Vec<ServeRow> = Vec::new();
    let shard_counts: &[usize] = ctx.scale.pick3(&[1, 2], &[1, 2, 4, 8], &[1, 2, 4, 8]);
    for (engine, variant) in [("flat", &flat_artifact), ("quantized+pruned", &artifact)] {
        for &shards in shard_counts {
            // Small batches keep the shards tightly coupled to trace order,
            // so the pool's deferred-eviction overshoot stays a short
            // transient (large batches let a worker run far ahead of the
            // frontier owner, which serves the replay with more than the
            // budgeted memory).
            // The guardrail rides along observe-only (`enforce: false`):
            // the shadow estimator runs and its state lands in the table,
            // but serving decisions stay bit-identical to a guardrail-free
            // sweep, so the engine gates below are unaffected. The
            // enforcing path is measured by `repro adversarial`.
            let params = ShardParams {
                batch_size: 8,
                queue_depth: 1,
                guardrail: Some(GuardrailConfig {
                    enforce: false,
                    ..GuardrailConfig::default()
                }),
                ..ShardParams::with_shards(shards)
            };
            // Every shard fleet cold-starts from the artifact: model +
            // cutoff are live in the slot before the first request hits a
            // shard.
            let mut cache = ShardedLfoCache::from_artifact(cache_size, params, variant);
            let started = Instant::now();
            for request in reqs {
                cache.handle(request);
            }
            let report = cache.finish();
            let secs = started.elapsed().as_secs_f64();

            let total = report.total();
            assert_eq!(total.requests, reqs.len() as u64, "lost requests");
            let rate = reqs.len() as f64 / secs.max(1e-9);
            let bhr = total.bhr();
            let delta = bhr - reference.bhr();
            let tracker_bytes: u64 = report.shards.iter().map(|s| s.tracker_bytes).sum();
            let index_bytes: u64 = report.shards.iter().map(|s| s.index_bytes).sum();
            let model_bytes = report
                .shards
                .iter()
                .map(|s| s.model_bytes)
                .max()
                .unwrap_or(0);
            let meta_per_obj = report.metadata_bytes_per_object();
            let residents = total.resident_objects.max(1) as f64;
            let guard_mode = report.guardrail_mode_label();
            println!(
                "  {engine:<16}  {shards:>6}  {rate:>9.0}  {:>12.1}  {bhr:.4}  {delta:>+.4}  \
                 {meta_per_obj:>8.1}  {guard_mode:<8} {:>5}  {:.4}/{:.4}  (admit {} bypass {} evict {})",
                gbps(rate),
                total.guardrail_trips,
                total.shadow_lru_bhr(),
                total.shadow_realized_bhr(),
                total.admitted_misses,
                total.bypassed_misses,
                total.evictions
            );
            csv.push(format!(
                "{engine},{shards},{rate:.0},{:.2},{bhr:.6},{delta:.6},{meta_per_obj:.1},\
                 {guard_mode},{},{:.6},{:.6}",
                gbps(rate),
                total.guardrail_trips,
                total.shadow_lru_bhr(),
                total.shadow_realized_bhr()
            ));
            rows.push(ServeRow {
                engine: engine.to_string(),
                shards,
                reqs_per_sec: rate,
                gbps_at_32kb: gbps(rate),
                bhr,
                bhr_delta_vs_unsharded: delta,
                tracker_bytes,
                index_bytes,
                model_bytes,
                metadata_bytes_per_object: meta_per_obj,
                tracker_bytes_per_object: tracker_bytes as f64 / residents,
                index_bytes_per_object: index_bytes as f64 / residents,
                model_bytes_per_object: model_bytes as f64 / residents,
                peak_rss_bytes: peak_rss_bytes(),
                guardrail_mode: guard_mode.to_string(),
                guardrail_trips: total.guardrail_trips,
                shadow_lru_bhr: total.shadow_lru_bhr(),
                shadow_realized_bhr: total.shadow_realized_bhr(),
            });
        }
    }
    ctx.write_csv(
        "serve_throughput.csv",
        "engine,shards,reqs_per_sec,gbps_at_32kb,bhr,bhr_delta_vs_unsharded,\
         metadata_bytes_per_object,guardrail_mode,guardrail_trips,shadow_lru_bhr,shadow_realized_bhr",
        &csv,
    )?;

    let mut doc = BenchServe::load(ctx);
    doc.host_cores = BenchServe::detect_cores();
    doc.serve = rows.clone();
    let path = doc.store(ctx)?;
    println!("  json: {}", path.display());

    // Gate 1: the quantized engine's full-trace BHR stays within ±0.005
    // of the flat engine's — quantization may move individual
    // boundary-window scores, not the hit ratio. The engine effect is
    // isolated on the single-shard replay, which is deterministic (one
    // worker, trace order preserved); multi-shard replays are timing
    // sensitive (deferred-eviction overshoot varies with worker
    // interleaving, moving BHR by ~±0.01 for *either* engine run to run),
    // so across shards each engine only has to stay inside a shard-noise
    // envelope of the unsharded reference.
    let find = |engine: &str, shards: usize| {
        rows.iter()
            .find(|r| r.engine == engine && r.shards == shards)
            .expect("both engines swept every shard count")
    };
    let delta = (find("quantized+pruned", 1).bhr - find("flat", 1).bhr).abs();
    assert!(
        delta <= 0.005,
        "quantized BHR drifted {delta:.4} from the flat engine on the deterministic \
         single-shard replay ({:.4} vs {:.4})",
        find("quantized+pruned", 1).bhr,
        find("flat", 1).bhr
    );
    for row in &rows {
        assert!(
            row.bhr_delta_vs_unsharded.abs() <= 0.03,
            "{} at {} shard(s): BHR {:.4} strayed {:+.4} from the unsharded reference \
             (replay-noise envelope: ±0.03)",
            row.engine,
            row.shards,
            row.bhr,
            row.bhr_delta_vs_unsharded
        );
    }

    // Gate 2: end-to-end scaling. Only meaningful when the host actually
    // has the cores (the smoke sweep stops at 2 shards, so CI smoke skips
    // this by construction).
    let quant_at = |shards: usize| {
        rows.iter()
            .find(|r| r.engine == "quantized+pruned" && r.shards == shards)
            .map(|r| r.reqs_per_sec)
    };
    if let (Some(one), Some(four)) = (quant_at(1), quant_at(4)) {
        if cores >= 4 {
            let scaling = four / one.max(1e-9);
            assert!(
                scaling >= 1.5,
                "4 quantized shards served only {scaling:.2}x the requests/s of 1 shard \
                 on {cores} cores (acceptance floor: 1.5x)"
            );
        }
    }

    if let (Some(one), Some(best)) = (
        rows.iter().find(|r| r.engine == "quantized+pruned"),
        rows.iter().rfind(|r| r.engine == "quantized+pruned"),
    ) {
        println!(
            "  shape: {} quantized shards give {:.1}x over 1 shard on {cores} core(s); \
             aggregate BHR within {:+.4} of unsharded; {:.0} metadata bytes/object",
            best.shards,
            best.reqs_per_sec / one.reqs_per_sec.max(1e-9),
            rows.iter()
                .map(|r| r.bhr_delta_vs_unsharded)
                .fold(0.0f64, |a, d| if d.abs() > a.abs() { d } else { a }),
            best.metadata_bytes_per_object
        );
        if cores == 1 {
            println!(
                "  note: single-core host — shard workers time-slice one core, so \
                 reqs/s stays flat; on >=4 cores 4 shards should give >=2x"
            );
        }
    }
    Ok(())
}
