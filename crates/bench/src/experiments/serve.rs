//! `repro serve`: end-to-end sharded serving throughput.
//!
//! Figure 7 measures the model in isolation; this experiment measures the
//! whole serving path — feature extraction, admission scoring, eviction
//! ranking, and metric accounting — by replaying the standard trace
//! through a [`ShardedLfoCache`] at 1/2/4/8 shards. Alongside requests/s
//! (and the implied Gbit/s at the paper's 32 KB average object) it reports
//! the aggregate BHR against an unsharded single-cache reference: hash
//! partitioning changes each shard's eviction frontier, so the aggregate
//! BHR may drift slightly, and the drift is part of the result.

use std::sync::Arc;
use std::time::Instant;

use cdn_cache::cache::CachePolicy;
use cdn_trace::Request;
use gbdt::{GbdtParams, Model};
use lfo::{
    ArtifactStore, CacheMetrics, LfoArtifact, LfoCache, LfoConfig, Provenance, ShardParams,
    ShardedLfoCache,
};

use crate::experiments::common::train_and_eval;
use crate::harness::Context;
use crate::perf::{BenchServe, ServeRow};

/// Implied serving bandwidth in Gbit/s at 32 KB average objects.
fn gbps(reqs_per_sec: f64) -> f64 {
    reqs_per_sec * 32.0 * 1024.0 * 8.0 / 1e9
}

/// Replays the trace through one unsharded `LfoCache`, producing the same
/// counters the sharded report aggregates.
fn replay_unsharded(requests: &[Request], capacity: u64, model: &Arc<Model>) -> CacheMetrics {
    let mut cache = LfoCache::new(capacity, LfoConfig::default());
    cache.install_model(model.clone());
    let mut metrics = CacheMetrics::default();
    for request in requests {
        let outcome = cache.handle(request);
        metrics.record(request.size, outcome);
    }
    metrics.evictions = cache.evictions;
    metrics.used_bytes = cache.used();
    metrics.resident_objects = cache.len() as u64;
    metrics
}

/// Runs the shard-scaling sweep.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(107);
    let cache_size = ctx.standard_cache_size(&trace);
    let w = ctx.window();
    let reqs = trace.requests();
    // One model serves the whole trace (the paper's protocol: learn on the
    // first window); training time is not part of the serving measurement.
    // The model round-trips through the artifact store: a previous run's
    // artifact for the same trace is cold-started instead of retraining,
    // and a fresh train persists its artifact for the next run.
    let trace_id = format!("production-seed107-n{}", reqs.len());
    let store = ArtifactStore::open(ctx.out_dir.join("artifacts/serve")).ok();
    let restored = store.as_ref().and_then(|s| match s.load_latest() {
        Ok(a) if a.provenance.trace_id == trace_id => Some(a),
        _ => None,
    });
    let artifact = match restored {
        Some(artifact) => {
            println!(
                "  cold start: reusing persisted artifact ({})",
                artifact.provenance.note
            );
            artifact
        }
        None => {
            let te = train_and_eval(
                &reqs[..w],
                &reqs[w..2 * w],
                cache_size,
                &GbdtParams::lfo_paper(),
            );
            let artifact = LfoArtifact::new(
                LfoConfig::default(),
                te.model,
                0.5,
                Provenance {
                    trace_id: trace_id.clone(),
                    window: 0,
                    slot_version: 0,
                    note: format!("repro serve, first-window model, n={}", reqs.len()),
                    lineage: None,
                },
            );
            match store.as_ref().map(|s| s.save(&artifact)) {
                Some(Ok(path)) => println!("  artifact saved: {}", path.display()),
                Some(Err(e)) => println!("  artifact save failed (non-fatal): {e}"),
                None => {}
            }
            artifact
        }
    };
    let model = Arc::new(artifact.model.clone());

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\n== serve: end-to-end sharded LFO throughput ({cores} cores) ==");
    println!(
        "  trace: {} requests, cache {} MB",
        reqs.len(),
        cache_size / (1024 * 1024)
    );

    // Unsharded reference: one cache, one thread, same model.
    let started = Instant::now();
    let reference = replay_unsharded(reqs, cache_size, &model);
    let ref_secs = started.elapsed().as_secs_f64();
    let ref_rate = reqs.len() as f64 / ref_secs.max(1e-9);
    println!(
        "  unsharded reference: {:>9.0} reqs/s  BHR {:.4}  (admit {} bypass {} evict {})",
        ref_rate,
        reference.bhr(),
        reference.admitted_misses,
        reference.bypassed_misses,
        reference.evictions
    );

    println!("  shards   reqs/s      Gbit/s @32KB  BHR     dBHR");
    let mut csv = Vec::new();
    let mut rows = Vec::new();
    let shard_counts: &[usize] = ctx.scale.pick3(&[1, 2], &[1, 2, 4, 8], &[1, 2, 4, 8]);
    for &shards in shard_counts {
        // Small batches keep the shards tightly coupled to trace order, so
        // the pool's deferred-eviction overshoot stays a short transient
        // (large batches let a worker run far ahead of the frontier owner,
        // which serves the replay with more than the budgeted memory).
        let params = ShardParams {
            batch_size: 8,
            queue_depth: 1,
            ..ShardParams::with_shards(shards)
        };
        // Every shard fleet cold-starts from the artifact: model + cutoff
        // are live in the slot before the first request hits a shard.
        let mut cache = ShardedLfoCache::from_artifact(cache_size, params, &artifact);
        let started = Instant::now();
        for request in reqs {
            cache.handle(request);
        }
        let report = cache.finish();
        let secs = started.elapsed().as_secs_f64();

        let total = report.total();
        assert_eq!(total.requests, reqs.len() as u64, "lost requests");
        let rate = reqs.len() as f64 / secs.max(1e-9);
        let bhr = total.bhr();
        let delta = bhr - reference.bhr();
        println!(
            "  {shards:>6}  {rate:>9.0}  {:>12.1}  {bhr:.4}  {delta:>+.4}  \
             (admit {} bypass {} evict {})",
            gbps(rate),
            total.admitted_misses,
            total.bypassed_misses,
            total.evictions
        );
        csv.push(format!(
            "{shards},{rate:.0},{:.2},{bhr:.6},{delta:.6}",
            gbps(rate)
        ));
        rows.push(ServeRow {
            shards,
            reqs_per_sec: rate,
            gbps_at_32kb: gbps(rate),
            bhr,
            bhr_delta_vs_unsharded: delta,
        });
    }
    ctx.write_csv(
        "serve_throughput.csv",
        "shards,reqs_per_sec,gbps_at_32kb,bhr,bhr_delta_vs_unsharded",
        &csv,
    )?;

    let mut doc = BenchServe::load(ctx);
    doc.host_cores = BenchServe::detect_cores();
    doc.serve = rows.clone();
    let path = doc.store(ctx)?;
    println!("  json: {}", path.display());

    if let (Some(one), Some(best)) = (rows.first(), rows.last()) {
        println!(
            "  shape: {} shards give {:.1}x over 1 shard on {cores} core(s); \
             aggregate BHR within {:+.4} of unsharded",
            best.shards,
            best.reqs_per_sec / one.reqs_per_sec.max(1e-9),
            rows.iter()
                .map(|r| r.bhr_delta_vs_unsharded)
                .fold(0.0f64, |a, d| if d.abs() > a.abs() { d } else { a })
        );
        if cores == 1 {
            println!(
                "  note: single-core host — shard workers time-slice one core, so \
                 reqs/s stays flat; on >=4 cores 4 shards should give >=2x"
            );
        }
    }
    Ok(())
}
