//! Staged pipeline architecture: serial vs staged wall-clock and the
//! per-window stage breakdown (Collector → Labeler → Trainer → Deployer).
//!
//! The staged pipeline labels and trains window *t* on background threads
//! while the collector serves it, and additionally parallelizes segmented
//! OPT solves and the GBDT split search. With boundary deploy the per-window
//! metrics are bit-identical to the serial reference, so any wall-clock gap
//! is pure architecture. Speedup requires a multi-core host; on one core the
//! staged run degrades gracefully to ~serial time.

use std::time::Instant;

use lfo::{run_pipeline, run_pipeline_serial, DeployMode, PipelineConfig, RetrainConfig};

use crate::harness::Context;

/// Runs the serial-vs-staged wall-clock comparison.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(205);
    let cache_size = ctx.standard_cache_size(&trace);
    let config = PipelineConfig {
        window: ctx.window(),
        cache_size,
        opt_segment: ctx.window() / 10,
        ..Default::default()
    };

    println!("\n== staged pipeline: off-path training + atomic model rollout ==");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("  host cores: {cores} (wall-clock gains need >1; metrics never depend on it)");

    let start = Instant::now();
    let serial = run_pipeline_serial(trace.requests(), &config).expect("serial pipeline");
    let serial_time = start.elapsed();

    let mut staged_cfg = config.clone();
    staged_cfg.threads = 0; // one per available core
    let start = Instant::now();
    let staged = run_pipeline(trace.requests(), &staged_cfg).expect("staged pipeline");
    let staged_time = start.elapsed();
    assert_eq!(
        serial.live_total.hit_bytes, staged.live_total.hit_bytes,
        "boundary deploy must reproduce serial metrics"
    );

    let mut async_cfg = staged_cfg.clone();
    async_cfg.deploy = DeployMode::Async;
    let start = Instant::now();
    let asynced = run_pipeline(trace.requests(), &async_cfg).expect("async pipeline");
    let async_time = start.elapsed();

    // Incremental mode: same boundary-deploy schedule, but windows after
    // the first append delta trees to the incumbent instead of rebuilding —
    // the train(ms) column is where the drop shows (`repro retrain` runs
    // the full comparison).
    let mut incremental_cfg = staged_cfg.clone();
    incremental_cfg.retrain = RetrainConfig {
        delta_trees: 6,
        full_refresh: 8,
        max_trees: 60,
    };
    let start = Instant::now();
    let incremental =
        run_pipeline(trace.requests(), &incremental_cfg).expect("incremental pipeline");
    let incremental_time = start.elapsed();

    println!("  per-window stage wall-clock (staged, boundary deploy):");
    println!("  mode         window  requests  serve(ms)  label(ms)  train(ms)  deploy-wait(ms)");
    let mut timing_csv = Vec::new();
    for (mode, report) in [("scratch", &staged), ("incremental", &incremental)] {
        for w in &report.windows {
            let (serve, label, train, wait) = (
                w.timing.serve.as_secs_f64() * 1e3,
                w.timing.label.as_secs_f64() * 1e3,
                w.timing.train.as_secs_f64() * 1e3,
                w.timing.deploy_wait.as_secs_f64() * 1e3,
            );
            println!(
                "  {mode:<11}  {:>6}  {:>8}  {serve:>9.1}  {label:>9.1}  {train:>9.1}  {wait:>15.1}",
                w.index, w.requests
            );
            timing_csv.push(format!(
                "{mode},{},{},{serve:.2},{label:.2},{train:.2},{wait:.2}",
                w.index, w.requests
            ));
        }
    }
    ctx.write_csv(
        "staged_stage_timing.csv",
        "mode,window,requests,serve_ms,label_ms,train_ms,deploy_wait_ms",
        &timing_csv,
    )?;

    let staged_speedup = serial_time.as_secs_f64() / staged_time.as_secs_f64().max(1e-9);
    let async_speedup = serial_time.as_secs_f64() / async_time.as_secs_f64().max(1e-9);
    let incremental_speedup = serial_time.as_secs_f64() / incremental_time.as_secs_f64().max(1e-9);
    let serial_ms = serial_time.as_secs_f64() * 1e3;
    let staged_ms = staged_time.as_secs_f64() * 1e3;
    let async_ms = async_time.as_secs_f64() * 1e3;
    let incremental_ms = incremental_time.as_secs_f64() * 1e3;
    println!("  mode         time(ms)  speedup  overall BHR");
    println!(
        "  serial       {serial_ms:>8.0}    1.00x    {:.4}",
        serial.live_total.bhr()
    );
    println!(
        "  staged       {staged_ms:>8.0}  {staged_speedup:>6.2}x    {:.4}  (boundary deploy: bit-identical)",
        staged.live_total.bhr()
    );
    println!(
        "  async        {async_ms:>8.0}  {async_speedup:>6.2}x    {:.4}  (mid-window rollout)",
        asynced.live_total.bhr()
    );
    println!(
        "  incremental  {incremental_ms:>8.0}  {incremental_speedup:>6.2}x    {:.4}  (delta trees, boundary deploy)",
        incremental.live_total.bhr()
    );
    ctx.write_csv(
        "staged_speedup.csv",
        "mode,time_ms,speedup_vs_serial,live_bhr",
        &[
            format!("serial,{serial_ms:.1},1.0,{:.6}", serial.live_total.bhr()),
            format!(
                "staged,{staged_ms:.1},{staged_speedup:.3},{:.6}",
                staged.live_total.bhr()
            ),
            format!(
                "async,{async_ms:.1},{async_speedup:.3},{:.6}",
                asynced.live_total.bhr()
            ),
            format!(
                "incremental,{incremental_ms:.1},{incremental_speedup:.3},{:.6}",
                incremental.live_total.bhr()
            ),
        ],
    )?;
    println!("  shape: a multi-core host should reach >=1.3x staged-over-serial");
    Ok(())
}
