//! Figure 5c: impact of random seeds (and trace subsets).
//!
//! Paper shape: "LFO's error varies across 100 seeds on 100 different trace
//! subsets. LFO's accuracy remains within a range of .5% and is thus not
//! sensitive to random seeds."
//!
//! Two sources of randomness are separated here: (a) the GBDT seed alone on
//! a fixed trace subset (with light bagging enabled so the seed matters at
//! all — without subsampling our histogram GBDT is fully deterministic),
//! and (b) seed *and* subset together, the paper's setup.

use cdn_trace::{GeneratorConfig, TraceGenerator};
use gbdt::GbdtParams;

use crate::experiments::common::train_and_eval;
use crate::harness::Context;

fn seeded_params(seed: u64) -> GbdtParams {
    GbdtParams {
        seed,
        bagging_fraction: 0.8,
        bagging_freq: 1,
        feature_fraction: 0.9,
        ..GbdtParams::lfo_paper()
    }
}

/// Runs the seed-sensitivity experiment.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let seeds = ctx.scale.pick(20, 100);
    let w = ctx.window();
    let eval = ctx.scale.pick(10_000, 30_000);

    println!("\n== Figure 5c: error across {seeds} seeds / trace subsets ==");
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for seed in 0..seeds {
        let trace = TraceGenerator::new(GeneratorConfig::production(
            900 + seed as u64,
            (w + eval) as u64,
        ))
        .generate();
        let cache_size = ctx.standard_cache_size(&trace);
        let reqs = trace.requests();
        let te = train_and_eval(
            &reqs[..w],
            &reqs[w..],
            cache_size,
            &seeded_params(seed as u64),
        );
        let err = te.error(0.5) * 100.0;
        rows.push(format!("{seed},{err:.4}"));
        errors.push(err);
    }
    ctx.write_csv("fig5c_seeds.csv", "seed,error_pct", &rows)?;

    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let min = errors.iter().cloned().fold(f64::MAX, f64::min);
    let max = errors.iter().cloned().fold(f64::MIN, f64::max);
    let std =
        (errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errors.len() as f64).sqrt();
    println!("  error: mean {mean:.2}%, min {min:.2}%, max {max:.2}%, std {std:.2}pp");

    // Seed-only sensitivity on one fixed subset.
    let trace = TraceGenerator::new(GeneratorConfig::production(901, (w + eval) as u64)).generate();
    let cache_size = ctx.standard_cache_size(&trace);
    let reqs = trace.requests();
    let mut seed_only = Vec::new();
    for seed in 0..ctx.scale.pick(5, 20) {
        let te = train_and_eval(&reqs[..w], &reqs[w..], cache_size, &seeded_params(seed));
        seed_only.push(te.error(0.5) * 100.0);
    }
    let so_min = seed_only.iter().cloned().fold(f64::MAX, f64::min);
    let so_max = seed_only.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "  seed-only spread on a fixed subset: {:.2}pp ({so_min:.2}%..{so_max:.2}%)",
        so_max - so_min
    );
    println!(
        "  shape: paper reports a ~.5% band; seed-only spread {} that band",
        if so_max - so_min <= 1.0 {
            "is within"
        } else {
            "EXCEEDS"
        }
    );
    Ok(())
}
