//! Figure 1: object hit ratio of RND, LRU, RLC (model-free RL caching),
//! and GDSF.
//!
//! Paper shape: "RL-based caching (RLC) performs similar to random (RND)
//! and least-recently-used (LRU). All three are outperformed by a simple
//! heuristic (GDSF)."

use cdn_cache::policies::{by_name, FIGURE1_POLICIES};
use cdn_cache::{simulate, SimConfig};

use crate::harness::Context;

/// Runs the Figure 1 comparison.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(101);
    let cache_size = ctx.standard_cache_size(&trace);
    let warmup = ctx.window();

    println!("\n== Figure 1: OHR of RND / LRU / RLC / GDSF ==");
    println!("{} requests, cache {} MiB", trace.len(), cache_size >> 20);
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for name in FIGURE1_POLICIES {
        let mut policy = by_name(name, cache_size, 1).expect("known policy");
        let r = simulate(
            policy.as_mut(),
            trace.requests(),
            &SimConfig {
                warmup,
                interval: 0,
            },
        );
        println!("  {:<6} OHR {:.3}", name, r.ohr());
        rows.push(format!("{},{:.6}", name, r.ohr()));
        results.push((name, r.ohr()));
    }
    ctx.write_csv("fig1_ohr.csv", "policy,ohr", &rows)?;

    // Shape check: GDSF clearly on top.
    let gdsf = results.iter().find(|(n, _)| *n == "GDSF").unwrap().1;
    let best_other = results
        .iter()
        .filter(|(n, _)| *n != "GDSF")
        .map(|(_, o)| *o)
        .fold(0.0f64, f64::max);
    println!(
        "  shape: GDSF {} the other policies ({:.3} vs best-other {:.3})",
        if gdsf > best_other {
            "beats"
        } else {
            "DOES NOT beat"
        },
        gdsf,
        best_other
    );
    Ok(())
}
