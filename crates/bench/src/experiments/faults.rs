//! Fault tolerance: the staged pipeline under a scripted [`FaultPlan`],
//! demonstrating bounded degradation (DESIGN.md §8).
//!
//! The paper's robustness claim is that the cache keeps serving even when
//! the learning loop misbehaves. This experiment runs the same trace twice:
//! once fault-free, once with a trainer crash-loop in window 2 (exhausting
//! the retry budget → the window is skipped) and corrupted training rows in
//! window 4 (the PSI drift gate rejects the poisoned model). Both degraded
//! windows keep serving on the incumbent model; the printed per-window BHR
//! comparison shows the cost is bounded, not a crash or a collapse.

use lfo::{run_pipeline, FaultKind, FaultPlan, PipelineConfig, RolloutDecision};

use crate::harness::Context;

/// Runs the scripted-fault degradation comparison.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(305);
    let cache_size = ctx.standard_cache_size(&trace);
    // Six windows so the scripted faults (windows 2 and 4) have healthy
    // neighbours on both sides.
    let window = (trace.len() / 6).max(1);
    let mut config = PipelineConfig {
        window,
        cache_size,
        ..Default::default()
    };
    // The drift gate samples live features on both runs; it only bites on
    // the run where window 4's training rows are poisoned.
    config.gates.drift = Some(Default::default());

    println!("\n== fault injection: bounded degradation under a scripted FaultPlan ==");
    let clean = run_pipeline(trace.requests(), &config).expect("fault-free pipeline");

    let mut faulted_cfg = config.clone();
    // Window 2: the trainer panics on every attempt the retry budget allows
    // (1 + max_retries), so supervision gives up and skips the window.
    // Window 4: 70% of the training rows are scrambled; the trained model
    // is poisoned and must be stopped by the PSI drift gate.
    let attempts = 1 + config.supervision.max_retries as usize;
    faulted_cfg.faults = FaultPlan::with_seed(305)
        .inject_n(2, FaultKind::TrainerPanic, attempts)
        .inject(4, FaultKind::CorruptRows { fraction: 0.7 });
    // The injected panics are caught by stage supervision, but the default
    // panic hook would still splat a backtrace into the report; swap in a
    // one-line hook for the faulted run.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| println!("  [injected trainer panic caught]")));
    let faulted = run_pipeline(trace.requests(), &faulted_cfg).expect("faulted pipeline");
    std::panic::set_hook(default_hook);

    println!("  (window 2: trainer crash-loop; window 4: poisoned training rows)");
    println!("  window  clean BHR  faulted BHR  rollout            retries  drift PSI");
    let mut csv = Vec::new();
    for (c, f) in clean.windows.iter().zip(&faulted.windows) {
        let psi = f
            .drift_psi
            .map(|p| format!("{p:.3}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:>6}  {:>9.3}  {:>11.3}  {:<17}  {:>7}  {:>9}",
            c.index,
            c.live.bhr(),
            f.live.bhr(),
            format!("{:?}", f.rollout),
            f.retries,
            psi
        );
        csv.push(format!(
            "{},{:.4},{:.4},{:?},{},{}",
            c.index,
            c.live.bhr(),
            f.live.bhr(),
            f.rollout,
            f.retries,
            f.drift_psi.unwrap_or(f64::NAN)
        ));
    }
    ctx.write_csv(
        "faults_windows.csv",
        "window,clean_bhr,faulted_bhr,rollout,retries,drift_psi",
        &csv,
    )?;

    let skipped = faulted
        .windows
        .iter()
        .filter(|w| w.rollout == RolloutDecision::SkippedFault)
        .count();
    let rejected = faulted
        .windows
        .iter()
        .filter(|w| w.rollout == RolloutDecision::RejectedDrift)
        .count();
    assert!(skipped >= 1, "the window-2 crash-loop must skip a window");
    assert!(rejected >= 1, "the poisoned model must be drift-rejected");

    let clean_bhr = clean.live_total.bhr();
    let faulted_bhr = faulted.live_total.bhr();
    println!(
        "\n  degraded windows: {} of {} ({} skipped-fault, {} rejected-drift), {} retries",
        faulted.degraded_windows(),
        faulted.windows.len(),
        skipped,
        rejected,
        faulted.total_retries()
    );
    println!(
        "  overall BHR: clean {:.3} vs faulted {:.3} (delta {:+.3}) — the run completed\n\
         \x20 and degraded windows kept serving on the incumbent model",
        clean_bhr,
        faulted_bhr,
        faulted_bhr - clean_bhr
    );
    Ok(())
}
