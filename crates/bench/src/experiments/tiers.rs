//! §5 hierarchical-model experiment: two-level LFO over RAM/SSD/HDD.
//!
//! "We could apply our 'single cache' model to the aggregate cache space of
//! a CDN server (RAM, SSD, HDD) [...] We first learn whether to cache an
//! object at all. A second level of the model then learns rules on where to
//! place the object." This experiment compares three level-2 placements
//! under the same level-1 admission model: pin-everything-to-HDD, a size
//! heuristic, and the learned re-reference placement.

use std::sync::Arc;

use cdn_cache::CachePolicy;
use lfo::features::FeatureTracker;
use lfo::hierarchy::{train_placement_model, Placement, TierSpec, TieredLfoCache};
use lfo::labels::build_training_set;
use lfo::train::train_window;
use lfo::LfoConfig;
use opt::{compute_opt, OptConfig};

use crate::harness::Context;

/// Runs the tiered-cache comparison.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(110);
    let total_cache = ctx.standard_cache_size(&trace);
    let window = ctx.window();
    let reqs = trace.requests();
    let lfo_config = LfoConfig::default();

    // Level-1 admission model, trained once on the first window.
    let opt = compute_opt(&reqs[..window], &OptConfig::bhr(total_cache)).expect("opt");
    let mut tracker = FeatureTracker::new(lfo_config.num_gaps, lfo_config.cost_model);
    let data = build_training_set(&reqs[..window], &opt, &mut tracker, total_cache);
    let admission = Arc::new(train_window(&data, &lfo_config).model);

    // Level-2 learned placement, trained on the same window.
    let placement_model = Arc::new(train_placement_model(
        &reqs[..window],
        vec![window as u64 / 20, window as u64 / 2],
        &lfo_config,
    ));

    // RAM:SSD:HDD = 5% : 25% : 70% of the aggregate capacity.
    let specs = TierSpec::standard(
        total_cache / 20,
        total_cache / 4,
        total_cache - total_cache / 20 - total_cache / 4,
    );

    println!("\n== §5: two-level tiered LFO (RAM/SSD/HDD) ==");
    println!(
        "  {:<16} {:>7} {:>12} {:>14} {:>12}",
        "placement", "BHR", "latency(us)", "ram/ssd/hdd hits", "ssd writes(MB)"
    );

    let variants: Vec<(&str, Placement)> = vec![
        ("pin to HDD", Placement::Pin(2)),
        (
            "size heuristic",
            Placement::SizeThresholds(vec![32 * 1024, 1024 * 1024]),
        ),
        ("learned", Placement::Learned(Arc::clone(&placement_model))),
    ];

    let mut csv = Vec::new();
    let mut latencies = Vec::new();
    for (label, placement) in variants {
        let mut cache = TieredLfoCache::new(specs.clone(), placement, lfo_config.clone());
        cache.install_admission_model(Arc::clone(&admission));
        for r in &reqs[window..] {
            cache.handle(r);
        }
        let report = cache.report.clone();
        let latency = report.mean_hit_latency_us(&specs);
        let ssd_mb = report.bytes_written_per_tier[1] as f64 / 1e6;
        println!(
            "  {:<16} {:>7.3} {:>12.1} {:>4}/{}/{} {:>12.0}",
            label,
            report.bhr(),
            latency,
            report.hits_per_tier[0],
            report.hits_per_tier[1],
            report.hits_per_tier[2],
            ssd_mb
        );
        csv.push(format!(
            "{label},{:.6},{latency:.2},{},{},{},{ssd_mb:.1}",
            report.bhr(),
            report.hits_per_tier[0],
            report.hits_per_tier[1],
            report.hits_per_tier[2]
        ));
        latencies.push((label, latency));
    }
    ctx.write_csv(
        "tiers_hierarchy.csv",
        "placement,bhr,mean_hit_latency_us,ram_hits,ssd_hits,hdd_hits,ssd_writes_mb",
        &csv,
    )?;

    let hdd = latencies[0].1;
    let learned = latencies[2].1;
    println!(
        "  shape: learned placement cuts mean hit latency {:.1}x vs pin-to-HDD",
        hdd / learned.max(1e-9)
    );
    Ok(())
}
