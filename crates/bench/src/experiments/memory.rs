//! `repro memory`: memory-bounded serving state at huge-catalog scale.
//!
//! The paper pitches *lightweight* ML for CDN caching, but exact serving
//! state scales with the catalog, not the cache: an unbounded gap tracker
//! keeps a history for every object ever seen, and the exact eviction
//! queue pays O(log n) on every hit. This experiment replays a
//! huge-catalog trace (unique objects ≫ residents) through the bounded
//! alternatives from DESIGN.md §14 — doorkeeper-sketch tracker budgets ×
//! sample-K eviction — and reports the metadata bytes carried per cached
//! object, split into tracker / index / model components, plus replay
//! throughput and process peak RSS.
//!
//! Two gates run at quick/full scale (smoke traces are too small for the
//! catalog to dwarf the tracker): at least one bounded configuration must
//! cut metadata bytes per cached object by ≥10× while giving up ≤0.01
//! BHR versus the exact baseline, and the best such configuration must
//! serve at least the exact baseline's requests/s in an interleaved
//! best-of-3 timing duel (sample-K removes the per-hit queue reorder, so
//! the hit path should get *faster* as state shrinks).

use std::time::Instant;

use cdn_cache::cache::{CachePolicy, RequestOutcome};
use cdn_trace::{GeneratorConfig, Request, TraceGenerator, TraceStats};
use gbdt::{BinMap, GbdtParams};
use lfo::labels::build_training_set;
use lfo::{
    EvictionStrategy, LfoArtifact, LfoCache, LfoConfig, ModelSlot, Provenance, TrackerBudget,
};
use opt::{compute_opt, OptConfig};

use crate::experiments::common::Gates;
use crate::harness::Context;
use crate::perf::{peak_rss_bytes, BenchMemory, MemoryRow};

/// One replay's observables: hit accounting plus end-state byte breakdown.
struct Replay {
    bhr: f64,
    reqs_per_sec: f64,
    tracker_bytes: u64,
    index_bytes: u64,
    model_bytes: u64,
    resident_objects: u64,
    tracked_objects: u64,
}

impl Replay {
    /// Per-object serving metadata: tracker plus eviction index, matching
    /// [`lfo::LfoCache::metadata_bytes`]. The model footprint is reported
    /// as its own component but stays out of the per-object ratio — it is
    /// shared state, identical in kind for exact and bounded rows.
    fn metadata_bytes_per_object(&self) -> f64 {
        if self.resident_objects == 0 {
            return 0.0;
        }
        (self.tracker_bytes + self.index_bytes) as f64 / self.resident_objects as f64
    }
}

/// Replays the trace through one cache built from `config`, model already
/// live in `slot`.
fn replay(requests: &[Request], capacity: u64, config: &LfoConfig, slot: &ModelSlot) -> Replay {
    let mut cache = LfoCache::with_slot(capacity, config.clone(), slot.clone());
    let mut total = 0u64;
    let mut hit = 0u64;
    let started = Instant::now();
    for request in requests {
        total += request.size;
        if cache.handle(request) == RequestOutcome::Hit {
            hit += request.size;
        }
    }
    let secs = started.elapsed().as_secs_f64();
    Replay {
        bhr: if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        },
        reqs_per_sec: requests.len() as f64 / secs.max(1e-9),
        tracker_bytes: cache.tracker().approximate_bytes() as u64,
        index_bytes: cache.approximate_index_bytes() as u64,
        model_bytes: cache.model_footprint_bytes() as u64,
        resident_objects: cache.len() as u64,
        tracked_objects: cache.tracker().tracked_objects() as u64,
    }
}

/// The bounded configuration for one (budget, K) cell of the sweep. On
/// top of the tracker budget and sampled eviction, bounded rows thin the
/// gap schedule to powers of two capped at gap 16 — Figure 8's
/// exponential thinning, cut at the depth where each history's ring slot
/// stays near a hundred bytes. The per-budget model is trained on exactly
/// these features, so serving stays self-consistent.
fn bounded_config(budget: usize, k: usize) -> LfoConfig {
    LfoConfig {
        tracker_budget: Some(TrackerBudget::capped(budget)),
        eviction: Some(EvictionStrategy::sample(k)),
        gap_schedule: Some(vec![1, 2, 4, 8, 16]),
        ..LfoConfig::default()
    }
}

/// Runs the tracker-budget × sample-K sweep and the acceptance gates.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let n = ctx.scale.pick3(12_000, 60_000, 300_000);
    let trace = TraceGenerator::new(GeneratorConfig::huge_catalog(211, n as u64)).generate();
    let stats = TraceStats::from_trace(&trace);
    let reqs = trace.requests();
    // 5% of the footprint: at huge-catalog scale the interesting regime
    // is residents ≪ unique objects, so exact tracker state dwarfs the
    // resident index and the bounded forms have something real to cut.
    let cache_size = stats.cache_size_for_fraction(0.05);

    println!("\n== memory: bounded serving state at huge-catalog scale ==");
    println!(
        "  trace: {} requests over {} unique objects; cache {:.1} MB",
        reqs.len(),
        stats.unique_objects,
        cache_size as f64 / (1024.0 * 1024.0)
    );

    // One set of first-window OPT labels feeds every configuration, but
    // each tracker budget trains its *own* model on the features its
    // bounded tracker actually emits (sketched coarse gaps, missing rows
    // for unpromoted objects). Serving bounded features to an
    // exact-trained model is a distribution shift that wrecks admission —
    // the model leans on deep gaps the bounded tracker no longer has.
    // Models publish with their frozen bin map so every replay scores
    // through the quantized engine, same kernel as `repro serve`.
    let w = ctx.window().min(reqs.len() / 2);
    let params = GbdtParams::lfo_paper();
    let opt_a = compute_opt(&reqs[..w], &OptConfig::bhr(cache_size)).expect("first-window OPT");
    let publish = |config: &LfoConfig, note: &str| -> ModelSlot {
        let mut tracker = config.tracker();
        let data = build_training_set(&reqs[..w], &opt_a, &mut tracker, cache_size);
        let model = gbdt::train(&data, &params);
        // Calibrate each model's admission cutoff on its own training
        // probabilities: a fixed 0.5 lands differently on every tracker's
        // feature distribution (bounded trackers emit coarser gaps, which
        // shifts the score mass), and the sweep compares configurations to
        // within 0.01 BHR — cutoff placement noise would swamp that.
        let probs: Vec<f64> = (0..data.num_rows())
            .map(|r| model.predict_proba(&data.row(r)))
            .collect();
        let cutoff = lfo::train::equalize_cutoff(&probs, data.labels());
        let map = BinMap::fit(&data, params.max_bins);
        let artifact = LfoArtifact::new(
            config.clone(),
            model,
            cutoff,
            Provenance {
                trace_id: format!("huge-catalog-seed211-n{}", reqs.len()),
                window: 0,
                slot_version: 0,
                note: format!("repro memory, {note}, n={}", reqs.len()),
                lineage: None,
                pop: None,
            },
        )
        .with_bin_map(Some(map));
        let slot = ModelSlot::new();
        artifact.publish_to(&slot);
        slot
    };

    // Exact baseline: unbounded tracker, fully ordered queue.
    let exact_config = LfoConfig::default();
    let exact_slot = publish(&exact_config, "exact tracker");
    let exact = replay(reqs, cache_size, &exact_config, &exact_slot);
    let exact_meta = exact.metadata_bytes_per_object();
    println!(
        "  exact baseline: {:>9.0} reqs/s  BHR {:.4}  {:.0} metadata B/obj \
         ({} residents, {} tracked)",
        exact.reqs_per_sec, exact.bhr, exact_meta, exact.resident_objects, exact.tracked_objects
    );
    // Budgets derive from what the baseline actually kept resident. The
    // top budget (5× residents) covers the resident set plus the
    // mid-popularity candidates contending for admission — the knee where
    // BHR holds; the smaller budgets chart how fast it degrades when the
    // ring can no longer cover the contenders.
    let residents = exact.resident_objects.max(1) as usize;
    let mut budgets: Vec<usize> = [5 * residents, 2 * residents, residents]
        .iter()
        .map(|&b| b.max(64))
        .collect();
    budgets.dedup();
    let ks = [8usize, 16, 64];

    let row_of = |label: String, eviction: String, budget: u64, r: &Replay| MemoryRow {
        label,
        eviction,
        tracker_budget: budget,
        bhr: r.bhr,
        bhr_cost_vs_exact: exact.bhr - r.bhr,
        reqs_per_sec: r.reqs_per_sec,
        tracker_bytes: r.tracker_bytes,
        index_bytes: r.index_bytes,
        model_bytes: r.model_bytes,
        metadata_bytes_per_object: r.metadata_bytes_per_object(),
        metadata_reduction_vs_exact: if r.metadata_bytes_per_object() > 0.0 {
            exact_meta / r.metadata_bytes_per_object()
        } else {
            0.0
        },
        resident_objects: r.resident_objects,
        tracked_objects: r.tracked_objects,
        peak_rss_bytes: peak_rss_bytes(),
    };

    let mut rows = vec![row_of("exact".into(), "exact".into(), 0, &exact)];
    println!("  label           eviction   reqs/s     BHR     cost    meta B/obj  reduction");
    let mut slots = Vec::new();
    for &budget in &budgets {
        // One model per budget: the features depend on the tracker bound,
        // not on K, so the three K replays share it.
        let budget_slot = publish(&bounded_config(budget, 8), &format!("budget {budget}"));
        for &k in &ks {
            let config = bounded_config(budget, k);
            let r = replay(reqs, cache_size, &config, &budget_slot);
            let row = row_of(
                format!("b{budget}/k{k}"),
                format!("sample{k}"),
                budget as u64,
                &r,
            );
            println!(
                "  {:<14}  {:<9}  {:>8.0}  {:.4}  {:+.4}  {:>9.1}  {:>8.1}x",
                row.label,
                row.eviction,
                row.reqs_per_sec,
                row.bhr,
                row.bhr_cost_vs_exact,
                row.metadata_bytes_per_object,
                row.metadata_reduction_vs_exact
            );
            rows.push(row);
        }
        slots.push((budget, budget_slot));
    }

    // The winning configuration: cheapest metadata among rows inside the
    // BHR envelope (every sampled row when none qualify yet, so smoke
    // still exercises the duel path).
    let qualifying: Vec<&MemoryRow> = rows[1..]
        .iter()
        .filter(|r| r.bhr_cost_vs_exact <= 0.01 && r.metadata_reduction_vs_exact >= 10.0)
        .collect();
    let best = qualifying
        .iter()
        .copied()
        .max_by(|a, b| {
            a.metadata_reduction_vs_exact
                .total_cmp(&b.metadata_reduction_vs_exact)
        })
        .unwrap_or(&rows[1]);
    let best_budget = best.tracker_budget as usize;
    let best_k: usize = best.eviction.trim_start_matches("sample").parse().unwrap();

    // Interleaved best-of-3 timing duel on the winning configuration —
    // alternating the two replays inside each round cancels thermal and
    // scheduler drift that a back-to-back pair would fold into one side.
    let best_config = bounded_config(best_budget, best_k);
    let best_slot = &slots
        .iter()
        .find(|(b, _)| *b == best_budget)
        .expect("every swept budget published a slot")
        .1;
    let mut exact_rate = 0.0f64;
    let mut sampled_rate = 0.0f64;
    for _ in 0..3 {
        exact_rate =
            exact_rate.max(replay(reqs, cache_size, &exact_config, &exact_slot).reqs_per_sec);
        sampled_rate =
            sampled_rate.max(replay(reqs, cache_size, &best_config, best_slot).reqs_per_sec);
    }
    let speedup = sampled_rate / exact_rate.max(1e-9);
    println!(
        "  duel ({}): sampled {:>9.0} vs exact {:>9.0} reqs/s ({speedup:.2}x)",
        best.label, sampled_rate, exact_rate
    );

    let gates = Gates::at(ctx.scale, "catalog too small to dwarf the tracker");
    let doc = BenchMemory {
        requests: reqs.len(),
        unique_objects: stats.unique_objects,
        cache_bytes: cache_size,
        gates_enforced: gates.enforced(),
        hit_path_speedup: speedup,
        rows: rows.clone(),
    };
    let path = doc.store(ctx)?;
    println!("  json: {}", path.display());
    ctx.write_csv(
        "memory.csv",
        "label,eviction,tracker_budget,bhr,bhr_cost_vs_exact,reqs_per_sec,tracker_bytes,\
         index_bytes,model_bytes,metadata_bytes_per_object,metadata_reduction_vs_exact,\
         resident_objects,tracked_objects,peak_rss_bytes",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{:.6},{:.6},{:.0},{},{},{},{:.1},{:.2},{},{},{}",
                    r.label,
                    r.eviction,
                    r.tracker_budget,
                    r.bhr,
                    r.bhr_cost_vs_exact,
                    r.reqs_per_sec,
                    r.tracker_bytes,
                    r.index_bytes,
                    r.model_bytes,
                    r.metadata_bytes_per_object,
                    r.metadata_reduction_vs_exact,
                    r.resident_objects,
                    r.tracked_objects,
                    r.peak_rss_bytes.unwrap_or(0)
                )
            })
            .collect::<Vec<_>>(),
    )?;

    gates.require(!qualifying.is_empty(), || {
        format!(
            "no bounded configuration reached 10x lower metadata bytes per cached object \
             within 0.01 BHR of the exact baseline (exact: {exact_meta:.1} B/obj)"
        )
    });
    gates.require(speedup >= 1.0, || {
        format!(
            "sample-K hit path served only {speedup:.2}x the exact queue's requests/s \
             (sampled {sampled_rate:.0} vs exact {exact_rate:.0})"
        )
    });
    if gates.enforced() {
        println!(
            "  gates: {} config(s) at >=10x / <=0.01 BHR; best {} at {:.1}x reduction, \
             duel {speedup:.2}x",
            qualifying.len(),
            best.label,
            best.metadata_reduction_vs_exact
        );
    }
    Ok(())
}
