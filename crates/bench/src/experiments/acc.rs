//! §3 headline claim: "LFO matches OPT's prediction for over 93% of the
//! requests" — measured over the full sliding-window pipeline.

use lfo::pipeline::{run_pipeline, PipelineConfig};

use crate::harness::Context;

/// Runs the accuracy measurement.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(105);
    let cache_size = ctx.standard_cache_size(&trace);
    let config = PipelineConfig {
        window: ctx.window(),
        cache_size,
        ..Default::default()
    };
    let report = run_pipeline(trace.requests(), &config).expect("pipeline");

    println!("\n== §3: prediction accuracy over the pipeline ==");
    println!("  window  pred.acc%   FP%    FN%   train.acc%");
    let mut csv = Vec::new();
    for w in &report.windows {
        if let (Some(e), Some(fp), Some(fn_), Some(train)) = (
            w.prediction_error,
            w.false_positive,
            w.false_negative,
            w.train_accuracy,
        ) {
            println!(
                "  {:>6}  {:>8.2}  {:>5.2}  {:>5.2}  {:>9.2}",
                w.index,
                (1.0 - e) * 100.0,
                fp * 100.0,
                fn_ * 100.0,
                train * 100.0
            );
            csv.push(format!(
                "{},{:.4},{:.4},{:.4},{:.4}",
                w.index,
                (1.0 - e) * 100.0,
                fp * 100.0,
                fn_ * 100.0,
                train * 100.0
            ));
        }
    }
    ctx.write_csv(
        "acc_windows.csv",
        "window,prediction_accuracy_pct,false_positive_pct,false_negative_pct,train_accuracy_pct",
        &csv,
    )?;
    let acc = report.mean_prediction_accuracy().unwrap_or(0.0);
    println!(
        "  mean prediction accuracy: {:.2}% (paper: >93%); FP bias expected (LFO is\n\
         \x20 conservative, admitting too much rather than too little)",
        acc * 100.0
    );
    Ok(())
}
