//! `repro restart`: durability of the staged pipeline across a crash.
//!
//! Three runs over the same trace answer "what does a restart cost, and
//! what does the artifact store buy back?":
//!
//! 1. **uninterrupted** — the whole trace in one pipeline (reference);
//! 2. **killed + cold restart** — the pipeline dies mid-window at the kill
//!    point, then a fresh pipeline serves the rest of the trace from the
//!    LRU fallback (no trained model until its own first boundary);
//! 3. **killed + warm restart** — the fresh pipeline instead restores the
//!    last persisted artifact through the gated warm-start path
//!    ([`PipelineConfig::warm_start`]), so window 0 after the restart is
//!    served by the pre-crash model.
//!
//! The warm restart should match or beat the cold restart on the first
//! post-restart window, and the killed-prefix + warm-suffix BHR should
//! land within ±0.01 of the uninterrupted run (the restart's only lasting
//! cost is refilling the cache, not relearning the policy).

use lfo::{run_pipeline, AccuracyGate, DriftGate, GateConfig, PersistConfig, PipelineConfig};

use crate::harness::{Context, Scale};
use crate::perf::BenchRestart;

/// Runs the kill/restart comparison.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(411);
    let cache_size = ctx.standard_cache_size(&trace);
    let w = ctx.window();
    let reqs = trace.requests();
    let num_windows = reqs.len().div_ceil(w);
    // Kill mid-window, far enough in that at least one model was accepted
    // (and therefore persisted) before the crash.
    let kill_window = (num_windows / 2).max(2);
    let split = (kill_window * w + w / 2).min(reqs.len().saturating_sub(w));

    let store_dir = ctx.out_dir.join("artifacts").join("restart");
    let _ = std::fs::remove_dir_all(&store_dir);

    // Gates on for every run: the warm restart re-validates the artifact
    // through this exact GateConfig before publishing it.
    let config = PipelineConfig {
        window: w,
        cache_size,
        opt_segment: w / 10,
        gates: GateConfig {
            accuracy: Some(AccuracyGate::default()),
            drift: Some(DriftGate::default()),
        },
        ..Default::default()
    };

    println!("\n== restart: kill the pipeline mid-run, restore from disk ==");
    println!(
        "  trace: {} requests, {num_windows} windows of {w}, cache {} MB",
        reqs.len(),
        cache_size / (1024 * 1024)
    );
    println!("  kill point: request {split} (mid window {kill_window})");

    // Reference: the whole trace in one uninterrupted pipeline.
    let uninterrupted = run_pipeline(reqs, &config).expect("uninterrupted pipeline");

    // The run that dies: persistence on, trace truncated at the kill point.
    let mut killed_cfg = config.clone();
    killed_cfg.persist = Some(PersistConfig::new(&store_dir).with_trace_id("restart-seed411"));
    let killed = run_pipeline(&reqs[..split], &killed_cfg).expect("killed-run prefix");
    let persisted = killed.persisted_windows();
    println!("  killed run persisted {persisted} model(s) before dying");

    // Cold restart: a fresh pipeline with no artifact store — LRU fallback
    // until its own first window boundary.
    let cold = run_pipeline(&reqs[split..], &config).expect("cold restart");

    // Warm restart: same fresh pipeline, but warm-started from the store
    // (persistence stays on, as it would in a real redeployment).
    let mut warm_cfg = killed_cfg.clone();
    warm_cfg.warm_start = Some(store_dir.clone());
    let warm = run_pipeline(&reqs[split..], &warm_cfg).expect("warm restart");

    print_windows("uninterrupted", &uninterrupted);
    print_windows("killed", &killed);
    print_windows("cold", &cold);
    print_windows("warm", &warm);
    let restore = warm.restore.as_ref().expect("warm_start was configured");
    println!("  restore: {:?} — {}", restore.decision, restore.detail);
    if let (Some(psi), Some(acc)) = (restore.drift_psi, restore.holdout_accuracy) {
        println!("  restore gates: drift PSI {psi:.4}, holdout accuracy {acc:.4}");
    }

    let cold0 = &cold.windows[0];
    let warm0 = &warm.windows[0];
    println!(
        "  first post-restart window: cold BHR {:.4} (model {}), warm BHR {:.4} (model {})",
        cold0.live.bhr(),
        cold0.had_model,
        warm0.live.bhr(),
        warm0.had_model
    );

    // Killed prefix + warm suffix = the trace as a restarted deployment
    // actually served it.
    let restarted_hit = killed.live_total.hit_bytes + warm.live_total.hit_bytes;
    let restarted_total = killed.live_total.total_bytes + warm.live_total.total_bytes;
    let restarted_bhr = restarted_hit as f64 / restarted_total.max(1) as f64;
    let delta = restarted_bhr - uninterrupted.live_total.bhr();
    println!(
        "  full trace: uninterrupted BHR {:.4}, restarted BHR {restarted_bhr:.4} ({delta:+.4})",
        uninterrupted.live_total.bhr()
    );

    ctx.write_csv(
        "restart_bhr.csv",
        "run,requests,first_window_bhr,first_window_had_model,total_bhr",
        &[
            format!(
                "uninterrupted,{},{:.6},{},{:.6}",
                reqs.len(),
                uninterrupted.windows[0].live.bhr(),
                uninterrupted.windows[0].had_model,
                uninterrupted.live_total.bhr()
            ),
            format!(
                "killed_prefix,{split},{:.6},{},{:.6}",
                killed.windows[0].live.bhr(),
                killed.windows[0].had_model,
                killed.live_total.bhr()
            ),
            format!(
                "cold_restart,{},{:.6},{},{:.6}",
                reqs.len() - split,
                cold0.live.bhr(),
                cold0.had_model,
                cold.live_total.bhr()
            ),
            format!(
                "warm_restart,{},{:.6},{},{:.6}",
                reqs.len() - split,
                warm0.live.bhr(),
                warm0.had_model,
                warm.live_total.bhr()
            ),
        ],
    )?;

    let doc = BenchRestart {
        requests: reqs.len(),
        window: w,
        kill_window,
        persisted_before_kill: persisted,
        warm_restored: restore.restored(),
        restore_decision: format!("{:?}", restore.decision),
        cold_first_window_bhr: cold0.live.bhr(),
        warm_first_window_bhr: warm0.live.bhr(),
        uninterrupted_bhr: uninterrupted.live_total.bhr(),
        restarted_bhr,
        bhr_delta: delta,
    };
    let path = doc.store(ctx)?;
    println!("  json: {}", path.display());

    if ctx.scale == Scale::Smoke {
        // Smoke traces are a few windows long, so the post-restart cache
        // refill dominates; report the shape without asserting on it.
        println!("  (smoke scale: shape checks only)");
        assert!(persisted > 0, "killed run persisted nothing");
        assert!(
            restore.restored(),
            "warm restart did not restore: {restore:?}"
        );
        assert!(warm0.had_model, "restored model not live at window 0");
    } else {
        assert!(persisted > 0, "killed run persisted nothing");
        assert!(
            restore.restored(),
            "warm restart did not restore: {restore:?}"
        );
        assert!(warm0.had_model, "restored model not live at window 0");
        assert!(
            warm0.live.bhr() >= cold0.live.bhr(),
            "warm first-window BHR {:.4} below cold {:.4}",
            warm0.live.bhr(),
            cold0.live.bhr()
        );
        assert!(
            delta.abs() <= 0.01,
            "restarted BHR {restarted_bhr:.4} drifted {delta:+.4} from uninterrupted"
        );
    }
    println!(
        "  shape: warm restart serves its first window with the pre-crash \
         model; the restart costs cache refill, not relearning"
    );
    Ok(())
}

/// Per-window BHR trajectory of one run, with a model-live marker.
fn print_windows(tag: &str, report: &lfo::PipelineReport) {
    let bhrs: Vec<String> = report
        .windows
        .iter()
        .map(|w| format!("w{}:{:.4}(m={})", w.index, w.live.bhr(), w.had_model))
        .collect();
    println!("  [{tag}] {}", bhrs.join(" "));
}
