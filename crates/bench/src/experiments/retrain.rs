//! `repro retrain`: window-over-window retraining cost, scratch vs.
//! incremental (DESIGN.md §11).
//!
//! Two staged-pipeline runs over the same trace and the same rollout
//! gates:
//!
//! 1. **scratch** — the default: every window rebuilds the full 30-tree
//!    ensemble from nothing (re-binning included);
//! 2. **incremental** — delta trees appended to the incumbent against the
//!    frozen bin map, with a periodic full refresh and an ensemble cap.
//!
//! The claim under test: after window 0 the incremental trainer-stage cost
//! drops by >=2x while the full-trace BHR stays within ±0.01 of the
//! scratch run — the model the cache serves is just as good, it is merely
//! cheaper to keep fresh. A micro-benchmark section isolates the two
//! underlying mechanisms (frozen-grid binning and warm-start boosting).

use lfo::{
    run_pipeline, AccuracyGate, DriftGate, FeatureTracker, GateConfig, PipelineConfig,
    PipelineReport, RetrainConfig,
};
use opt::{compute_opt, OptConfig};

use crate::experiments::common::Gates;
use crate::harness::Context;
use crate::perf::{retrain_micro, BenchRetrain, RetrainWindowRow};

/// Runs the scratch-vs-incremental retraining comparison.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(523);
    let cache_size = ctx.standard_cache_size(&trace);
    let w = ctx.window();
    let reqs = trace.requests();
    let retrain = RetrainConfig {
        delta_trees: 6,
        full_refresh: 8,
        max_trees: 60,
    };

    // Gates on for both runs: incremental candidates face the same drift
    // and accuracy checks as scratch ones (and fall back to a scratch
    // retrain when rejected), so the comparison is like for like.
    let config = PipelineConfig {
        window: w,
        cache_size,
        opt_segment: w / 10,
        gates: GateConfig {
            accuracy: Some(AccuracyGate::default()),
            drift: Some(DriftGate::default()),
        },
        ..Default::default()
    };

    println!("\n== retrain: scratch-per-window vs incremental warm start ==");
    println!(
        "  trace: {} requests, {} windows of {w}, cache {} MB",
        reqs.len(),
        reqs.len().div_ceil(w),
        cache_size / (1024 * 1024)
    );
    println!(
        "  incremental: {} delta trees, full refresh every {} deploys, cap {}",
        retrain.delta_trees, retrain.full_refresh, retrain.max_trees
    );

    let scratch = run_pipeline(reqs, &config).expect("scratch pipeline");
    let mut inc_config = config.clone();
    inc_config.retrain = retrain;
    let incremental = run_pipeline(reqs, &inc_config).expect("incremental pipeline");
    assert_eq!(scratch.windows.len(), incremental.windows.len());

    println!("  window  scratch train(ms)  incremental train(ms)  kind              trees");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (s, i) in scratch.windows.iter().zip(&incremental.windows) {
        let row = RetrainWindowRow {
            window: s.index,
            scratch_train_ms: s.timing.train.as_secs_f64() * 1e3,
            incremental_train_ms: i.timing.train.as_secs_f64() * 1e3,
            incremental_kind: format!("{:?}", i.train_kind),
            incremental_trees: i.model_trees.unwrap_or(0),
        };
        println!(
            "  {:>6}  {:>17.1}  {:>21.1}  {:<16}  {:>5}",
            row.window,
            row.scratch_train_ms,
            row.incremental_train_ms,
            row.incremental_kind,
            row.incremental_trees
        );
        csv.push(format!(
            "{},{:.2},{:.2},{},{}",
            row.window,
            row.scratch_train_ms,
            row.incremental_train_ms,
            row.incremental_kind,
            row.incremental_trees
        ));
        rows.push(row);
    }
    ctx.write_csv(
        "retrain_window_train_ms.csv",
        "window,scratch_train_ms,incremental_train_ms,incremental_kind,incremental_trees",
        &csv,
    )?;

    // The claim excludes window 0: both runs pay a full rebuild there (the
    // incremental run has no incumbent to continue from yet).
    let mean_after_first = |report: &PipelineReport| {
        let tail = &report.windows[1..];
        tail.iter()
            .map(|w| w.timing.train.as_secs_f64() * 1e3)
            .sum::<f64>()
            / tail.len().max(1) as f64
    };
    let scratch_mean = mean_after_first(&scratch);
    let incremental_mean = mean_after_first(&incremental);
    let speedup = scratch_mean / incremental_mean.max(1e-9);
    let scratch_bhr = scratch.live_total.bhr();
    let incremental_bhr = incremental.live_total.bhr();
    let bhr_delta = incremental_bhr - scratch_bhr;
    println!("  mean train(ms) after window 0: scratch {scratch_mean:.1}, incremental {incremental_mean:.1} ({speedup:.2}x)");
    println!(
        "  full-trace BHR: scratch {scratch_bhr:.4}, incremental {incremental_bhr:.4} (delta {bhr_delta:+.4})"
    );

    // Micro-benchmarks on window 0's training set: frozen-grid binning vs.
    // a fresh quantile fit, and warm-start boosting vs. a scratch fit.
    let head = &reqs[..w.min(reqs.len())];
    let opt = compute_opt(head, &OptConfig::bhr(cache_size)).expect("opt for micro-bench");
    let lfo_cfg = &config.lfo;
    let mut tracker = FeatureTracker::new(lfo_cfg.num_gaps, lfo_cfg.cost_model);
    let data = lfo::labels::build_training_set(head, &opt, &mut tracker, cache_size);
    let micro = retrain_micro(&data, &lfo_cfg.gbdt, retrain.delta_trees);
    println!(
        "  micro ({} rows): bin build {:.1} ms vs frozen {:.1} ms; train scratch {:.1} ms vs warm {:.1} ms (+{} trees)",
        micro.rows,
        micro.bin_build_ms,
        micro.bin_frozen_ms,
        micro.scratch_train_ms,
        micro.warm_train_ms,
        micro.delta_trees
    );

    let doc = BenchRetrain {
        requests: reqs.len(),
        window: w,
        delta_trees: retrain.delta_trees,
        full_refresh: retrain.full_refresh,
        max_trees: retrain.max_trees,
        windows: rows,
        scratch_mean_train_ms: scratch_mean,
        incremental_mean_train_ms: incremental_mean,
        train_speedup: speedup,
        scratch_bhr,
        incremental_bhr,
        bhr_delta,
        micro,
    };
    let path = doc.store(ctx)?;
    println!("  wrote {}", path.display());

    // Smoke runs only prove the path end to end; the tiny windows make
    // wall-clock ratios (and gate behavior) too noisy to assert on.
    let gates = Gates::at(ctx.scale, "tiny windows make wall-clock ratios too noisy");
    gates.require(speedup >= 2.0, || {
        format!(
            "incremental retraining must cut mean trainer cost >=2x after window 0 \
             (scratch {scratch_mean:.1} ms, incremental {incremental_mean:.1} ms)"
        )
    });
    gates.require(bhr_delta.abs() <= 0.01, || {
        format!("incremental retraining must hold BHR parity within ±0.01 (delta {bhr_delta:+.4})")
    });
    if gates.enforced() {
        println!("  shape: >=2x trainer speedup with BHR parity within ±0.01 — OK");
    }
    Ok(())
}
