//! Figures 3 & 4: the worked example — the twelve-request trace and its
//! min-cost flow translation, solved.

use cdn_trace::example;
use opt::flow_model::FlowModel;
use opt::{compute_opt, OptConfig};

use crate::harness::Context;

/// Runs the Figure 3/4 worked example.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = example::figure3_trace();
    let config = OptConfig::bhr(example::FIGURE4_CACHE_SIZE);
    let model = FlowModel::build(trace.requests(), &config);
    let result = compute_opt(trace.requests(), &config).expect("figure 4 instance solves");

    println!("\n== Figure 3/4: worked example (cache = 3 bytes) ==");
    println!(
        "graph: {} nodes, {} arcs; solver augmentations: {}",
        model.graph.num_nodes(),
        model.graph.num_arcs(),
        result.augmentations
    );
    let names = ["a", "b", "c", "b", "d", "a", "c", "d", "a", "b", "b", "a"];
    let mut rows = Vec::new();
    println!("  t  obj  size  admit  hit");
    for (k, r) in trace.iter().enumerate() {
        println!(
            "  {:>2}  {:>3}  {:>4}  {:>5}  {:>3}",
            k, names[k], r.size, result.admit[k], result.full_hit[k]
        );
        rows.push(format!(
            "{},{},{},{},{}",
            k, names[k], r.size, result.admit[k], result.full_hit[k]
        ));
    }
    println!(
        "OPT on the example: {} hits, BHR {:.3}, OHR {:.3}",
        result.hits,
        result.bhr(),
        result.ohr()
    );
    ctx.write_csv("fig4_example.csv", "t,object,size,admit,hit", &rows)?;
    Ok(())
}
