//! `repro pops`: multi-PoP edge/regional topology vs independent
//! single-tier LFO (DESIGN.md §15).
//!
//! The "millions of users across geographies" scenario: N edge PoPs, each
//! seeing its own slice of the catalog (PoP-local popularity skew, a
//! region-private tail, and a mid-run popularity migration between PoPs),
//! compared at **matched total cache bytes** across three ways of
//! spending the same hardware:
//!
//! 1. **independent** — the whole budget split into N single-tier LFO
//!    edges (no shared tier); hot objects shared across PoPs are
//!    duplicated N times.
//! 2. **two-tier per-PoP** — half the budget on smaller edges, half on a
//!    shared regional LRU mid-tier that dedupes the overlapping catalog;
//!    every PoP still trains its own scratch model.
//! 3. **two-tier federated** — same topology, but the fleet trains one
//!    shared base model + frozen grid and per-PoP delta trees
//!    ([`lfo::pops::train_fleet`]), cutting each PoP's recurring trainer
//!    cost from a full rebuild to a handful of trees.
//!
//! Gates (quick/full scale): both two-tier variants must beat the
//! independent baseline on **origin offload** at matched total bytes, and
//! the federated rollout's mean per-PoP trainer cost must undercut
//! per-PoP scratch training. Results land in `results/BENCH_pops.json`.

use std::collections::HashMap;

use cdn_trace::{
    split_by_pop, PopMigration, PopRequest, PopTraceConfig, PopTraceGenerator, Request,
};
use lfo::labels::build_training_set;
use lfo::pops::{EdgeSpec, FederationGate, FleetRollout, PopsTopology, RolloutPlan};
use lfo::{equalize_cutoff, train_window, FeatureTracker, LfoConfig, RetrainConfig};
use opt::{compute_opt_segmented_parallel, OptConfig};

use crate::experiments::common::Gates;
use crate::harness::Context;
use crate::perf::{peak_rss_bytes, BenchPops, PopsRow};

/// Edge PoPs in the topology.
const NUM_POPS: usize = 4;

/// Trace seed (distinct from the other experiments').
const SEED: u64 = 977;

/// Worker threads for the segmented OPT solves.
fn opt_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Segmented OPT labels for one window — the pipeline's standard
/// `opt_segment = window / 10` approximation, without which the full-scale
/// min-cost-flow solves dominate the experiment's wall clock.
fn opt_labels(head: &[Request], cache_bytes: u64) -> opt::OptResult {
    let segment = (head.len() / 10).max(1);
    compute_opt_segmented_parallel(head, &OptConfig::bhr(cache_bytes), segment, opt_threads())
        .expect("segmented OPT")
}

/// One labeled training window per PoP, with OPT computed at the edge
/// capacity the variant will actually serve with — a model trained
/// against the wrong cache size imitates the wrong OPT.
fn fleet_windows(
    per_pop: &[Vec<Request>],
    window: usize,
    edge_bytes: u64,
    config: &LfoConfig,
) -> Vec<gbdt::Dataset> {
    per_pop
        .iter()
        .map(|reqs| {
            let w = window.min(reqs.len() / 2).max(2);
            let head = &reqs[..w];
            let opt = opt_labels(head, edge_bytes);
            let mut tracker = FeatureTracker::new(config.num_gaps, config.cost_model);
            build_training_set(head, &opt, &mut tracker, edge_bytes)
        })
        .collect()
}

/// Builds a topology, publishes the fleet's models, and replays the full
/// merged stream through it. `regional_model` arms learned admission on
/// the shared mid-tier; without it the regional falls back to LRU, which
/// admits the whole head-stripped miss stream — one-hit wonders included
/// — and thrashes on exactly the traffic the paper's motivation warns
/// about.
fn replay_variant(
    merged: &[PopRequest],
    edge_bytes: u64,
    regional_bytes: u64,
    fleet: &FleetRollout,
    config: &LfoConfig,
    regional_model: Option<&(std::sync::Arc<gbdt::Model>, f64)>,
) -> lfo::pops::PopsReport {
    let spec = EdgeSpec {
        capacity: edge_bytes,
        config: config.clone(),
    };
    let mut topology = PopsTopology::new(&vec![spec; NUM_POPS], regional_bytes, config.clone());
    fleet.publish_to(&topology);
    if let Some((model, cutoff)) = regional_model {
        topology.install_regional_model(model.clone());
        topology.set_regional_cutoff(*cutoff);
    }
    for pr in merged {
        topology.handle(pr.pop, &pr.request);
    }
    topology.report()
}

/// Runs the matched-bytes topology comparison and the acceptance gates.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let per_pop_n = ctx.scale.pick3(3_000u64, 15_000, 100_000);
    let total_requests = NUM_POPS as u64 * per_pop_n;
    let mut trace_config = PopTraceConfig::production(SEED, NUM_POPS, per_pop_n);
    trace_config.overlap = 0.7;
    // Mild rotation: neighboring PoPs' Zipf heads overlap but are not
    // identical. Large skews rotate the heads fully apart, and disjoint
    // heads mean no cross-PoP duplication — the regime where a shared
    // mid-tier has nothing to dedupe and splitting the budget two ways
    // only shrinks the edges.
    trace_config.skew = 0.05;
    // One load-balancer migration at the midpoint: every PoP inherits a
    // neighbor's hot set, the recovery scenario a shared regional tier
    // (which already holds the neighbor's head) is built for.
    trace_config.migrations = vec![PopMigration {
        at: total_requests / 2,
        rotate: 1,
    }];
    let overlap = trace_config.overlap;
    let skew = trace_config.skew;
    let merged = PopTraceGenerator::new(trace_config).generate();
    let per_pop = split_by_pop(&merged, NUM_POPS);

    // Matched budget: 10% of the merged footprint (the repo's standard
    // fraction), spent whole-cloth by every variant.
    let footprint: u64 = {
        let mut sizes: HashMap<u64, u64> = HashMap::new();
        for pr in &merged {
            sizes.entry(pr.request.object.0).or_insert(pr.request.size);
        }
        sizes.values().sum()
    };
    let total_cache = (footprint / 10).max(NUM_POPS as u64 * 2);
    let single_edge = total_cache / NUM_POPS as u64; // independent: all on edges
    let split_edge = total_cache / (2 * NUM_POPS as u64); // two-tier: half on edges...
    let regional = total_cache / 2; // ...half on the shared mid-tier

    println!("\n== pops: multi-PoP edge/regional topology at matched cache bytes ==");
    println!(
        "  trace: {NUM_POPS} PoPs x {per_pop_n} requests, overlap {overlap}, skew {skew}, \
         1 migration; footprint {:.1} MB, budget {:.1} MB",
        footprint as f64 / (1024.0 * 1024.0),
        total_cache as f64 / (1024.0 * 1024.0),
    );

    let config = LfoConfig::default();
    let gate = FederationGate::default();
    let retrain = RetrainConfig {
        delta_trees: 6,
        full_refresh: 8,
        max_trees: 60,
    };
    let window = ctx.window();

    // Per-variant control planes. The independent and two-tier edges run
    // at different capacities, so each trains against its own OPT.
    let windows_single = fleet_windows(&per_pop, window, single_edge, &config);
    let windows_split = fleet_windows(&per_pop, window, split_edge, &config);
    let fleet_independent =
        lfo::pops::train_fleet(&windows_single, &config, &RolloutPlan::PerPop, &gate);
    let fleet_scratch =
        lfo::pops::train_fleet(&windows_split, &config, &RolloutPlan::PerPop, &gate);
    let fleet_federated = lfo::pops::train_fleet(
        &windows_split,
        &config,
        &RolloutPlan::Federated { retrain },
        &gate,
    );

    // The shared regional tier gets its own admission model, trained on
    // the merged (all-PoP) stream against OPT at regional capacity. Its
    // live request stream is the edges' misses, but the filter it has to
    // apply — admit the warm middle of the aggregate distribution, bypass
    // one-hit wonders — is learned just as well from the merged stream,
    // and a model-less LRU mid-tier churns its capacity through the tail.
    let regional_start = std::time::Instant::now();
    let rw = (2 * window).min(merged.len() / 2).max(2);
    let merged_head: Vec<Request> = merged[..rw].iter().map(|pr| pr.request).collect();
    let regional_opt = opt_labels(&merged_head, regional);
    let mut regional_tracker = FeatureTracker::new(config.num_gaps, config.cost_model);
    let regional_data =
        build_training_set(&merged_head, &regional_opt, &mut regional_tracker, regional);
    let trained_regional = train_window(&regional_data, &config);
    let regional_cutoff = equalize_cutoff(
        &trained_regional.train_probs,
        &trained_regional.train_labels,
    );
    let regional_model = (std::sync::Arc::new(trained_regional.model), regional_cutoff);
    let regional_train_ms = regional_start.elapsed().as_secs_f64() * 1e3;

    let variants: [(&str, u64, u64, &FleetRollout, Option<&_>); 3] = [
        ("independent", single_edge, 0, &fleet_independent, None),
        (
            "two-tier per-PoP",
            split_edge,
            regional,
            &fleet_scratch,
            Some(&regional_model),
        ),
        (
            "two-tier federated",
            split_edge,
            regional,
            &fleet_federated,
            Some(&regional_model),
        ),
    ];

    println!(
        "  variant             edge MB  regional MB  offload   edge BHR  pop train(ms)  kinds"
    );
    let mut rows: Vec<PopsRow> = Vec::new();
    for (label, edge_bytes, regional_bytes, fleet, regional_model) in variants {
        let report = replay_variant(
            &merged,
            edge_bytes,
            regional_bytes,
            fleet,
            &config,
            regional_model,
        );
        let row = PopsRow {
            label: label.to_string(),
            edge_bytes,
            regional_bytes,
            total_cache_bytes: NUM_POPS as u64 * edge_bytes + regional_bytes,
            origin_offload: report.origin_offload(),
            aggregate_bhr: report.aggregate_bhr(),
            edge_bhr: report.edge_bhr(),
            origin_bytes: report.origin_bytes,
            mean_pop_train_ms: fleet.mean_pop_train_ms(),
            base_train_ms: fleet.base_train_ms,
            rollout_kinds: fleet
                .rollouts
                .iter()
                .map(|r| format!("{:?}", r.kind))
                .collect(),
            peak_rss_bytes: peak_rss_bytes(),
        };
        println!(
            "  {:<18}  {:>7.1}  {:>11.1}  {:.4}   {:.4}    {:>10.1}   {}",
            row.label,
            edge_bytes as f64 / (1024.0 * 1024.0),
            regional_bytes as f64 / (1024.0 * 1024.0),
            row.origin_offload,
            row.edge_bhr,
            row.mean_pop_train_ms,
            row.rollout_kinds.join("/"),
        );
        rows.push(row);
    }

    println!(
        "  regional: learned admission trained on {rw} merged requests at regional capacity \
         ({regional_train_ms:.1} ms, shared by both two-tier variants)"
    );

    let gates = Gates::at(ctx.scale, "tiny traces make topology ratios noisy");
    let doc = BenchPops {
        num_pops: NUM_POPS,
        requests: merged.len(),
        overlap,
        skew,
        total_cache_bytes: total_cache,
        regional_train_ms,
        gates_enforced: gates.enforced(),
        federated_fingerprint: fleet_federated.base_fingerprint.clone(),
        rows: rows.clone(),
    };
    let path = doc.store(ctx)?;
    println!("  json: {}", path.display());
    ctx.write_csv(
        "pops.csv",
        "label,edge_bytes,regional_bytes,total_cache_bytes,origin_offload,aggregate_bhr,\
         edge_bhr,origin_bytes,mean_pop_train_ms,base_train_ms,rollout_kinds,peak_rss_bytes",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{:.6},{:.6},{:.6},{},{:.2},{:.2},{},{}",
                    r.label,
                    r.edge_bytes,
                    r.regional_bytes,
                    r.total_cache_bytes,
                    r.origin_offload,
                    r.aggregate_bhr,
                    r.edge_bhr,
                    r.origin_bytes,
                    r.mean_pop_train_ms,
                    r.base_train_ms,
                    r.rollout_kinds.join(";"),
                    r.peak_rss_bytes.unwrap_or(0),
                )
            })
            .collect::<Vec<_>>(),
    )?;

    // Gate 1+2: the shared regional tier must pay for the edge bytes it
    // took — both two-tier variants beat independent on origin offload.
    let independent = rows[0].origin_offload;
    for row in &rows[1..] {
        gates.require(row.origin_offload > independent, || {
            format!(
                "`{}` offload {:.4} does not beat independent single-tier {:.4} \
                 at matched {} total cache bytes",
                row.label, row.origin_offload, independent, row.total_cache_bytes,
            )
        });
    }
    // Gate 3: federation must make the fleet cheaper to keep fresh —
    // mean per-PoP delta cost under mean per-PoP scratch cost at the
    // same edge capacity.
    let scratch_ms = rows[1].mean_pop_train_ms;
    let federated_ms = rows[2].mean_pop_train_ms;
    gates.require(federated_ms < scratch_ms, || {
        format!(
            "federated per-PoP trainer cost {federated_ms:.1} ms does not undercut \
             per-PoP scratch {scratch_ms:.1} ms",
        )
    });
    if gates.enforced() {
        println!(
            "  gates: two-tier offload {:+.4} (per-PoP) / {:+.4} (federated) over independent; \
             per-PoP trainer {:.1} -> {:.1} ms ({:.1}x) — OK",
            rows[1].origin_offload - independent,
            rows[2].origin_offload - independent,
            scratch_ms,
            federated_ms,
            scratch_ms / federated_ms.max(1e-9),
        );
    }
    Ok(())
}
