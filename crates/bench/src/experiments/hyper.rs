//! §3 hyperparameter sensitivity: "For larger iteration counts and lower
//! learning rates, LFO's accuracy improves somewhat (to 95%). For larger
//! tree sizes, LFO is prone to overfitting, which decreases the accuracy
//! (to 88%)."

use gbdt::GbdtParams;

use crate::experiments::common::train_and_eval;
use crate::harness::Context;

/// Runs the hyperparameter grid.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(106);
    let cache_size = ctx.standard_cache_size(&trace);
    let w = ctx.window();
    let reqs = trace.requests();
    let window_a = &reqs[..w];
    let window_b = &reqs[w..2 * w];

    let configs: Vec<(&str, GbdtParams)> = vec![
        ("paper (30 iters)", GbdtParams::lfo_paper()),
        (
            "more iters, lower lr",
            GbdtParams {
                num_iterations: 150,
                learning_rate: 0.05,
                ..GbdtParams::lfo_paper()
            },
        ),
        (
            "huge trees (overfit)",
            GbdtParams {
                num_leaves: 512,
                min_data_in_leaf: 1,
                ..GbdtParams::lfo_paper()
            },
        ),
        (
            "tiny trees (underfit)",
            GbdtParams {
                num_leaves: 4,
                ..GbdtParams::lfo_paper()
            },
        ),
    ];

    println!("\n== §3: hyperparameter sensitivity ==");
    println!(
        "  {:<22} {:>10} {:>10}",
        "config", "test acc%", "train acc%"
    );
    let mut csv = Vec::new();
    let mut results = Vec::new();
    for (label, params) in &configs {
        let te = train_and_eval(window_a, window_b, cache_size, params);
        let test_acc = (1.0 - te.error(0.5)) * 100.0;
        // Training accuracy: score window A with its own model.
        let data_a = crate::experiments::common::window_dataset(window_a, cache_size);
        let probs: Vec<f64> = (0..data_a.num_rows())
            .map(|r| te.model.predict_proba(&data_a.row(r)))
            .collect();
        let train_acc = gbdt::accuracy(&probs, data_a.labels(), 0.5) * 100.0;
        println!("  {label:<22} {test_acc:>10.2} {train_acc:>10.2}");
        csv.push(format!("{label},{test_acc:.4},{train_acc:.4}"));
        results.push((label.to_string(), test_acc, train_acc));
    }
    ctx.write_csv(
        "hyper_sensitivity.csv",
        "config,test_accuracy_pct,train_accuracy_pct",
        &csv,
    )?;

    let base = results[0].1;
    let more = results[1].1;
    let huge = results[2].1;
    println!(
        "  shape: more-iters {} baseline ({more:.2}% vs {base:.2}%); \
         huge trees {} baseline ({huge:.2}%)",
        if more >= base - 0.1 {
            "matches/improves"
        } else {
            "UNDERPERFORMS"
        },
        if huge <= base + 0.1 {
            "does not beat"
        } else {
            "BEATS (unexpected)"
        },
    );
    Ok(())
}
