//! Figure 8: relative importance of LFO's features (occurrence in tree
//! splits).
//!
//! Paper shape: "LFO heavily relies on the object size (28% of branches)
//! [...] LFO does not use the cost feature. This makes sense, as it is
//! redundant with the object size when optimizing BHRs. LFO uses the free
//! cache space feature in almost 10% of branches. [...] LFO makes most use
//! of time gaps 1 to 4. However, up to time gap 16, LFO still makes
//! significant use of these features."

use gbdt::{FeatureImportance, GbdtParams, ImportanceKind};
use lfo::LfoConfig;

use crate::experiments::common::train_and_eval;
use crate::harness::Context;

/// Runs the feature-importance analysis.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(103); // same trace family as Figure 6
    let cache_size = ctx.standard_cache_size(&trace);
    let w = ctx.window();
    let reqs = trace.requests();
    let te = train_and_eval(
        &reqs[..w],
        &reqs[w..2 * w],
        cache_size,
        &GbdtParams::lfo_paper(),
    );

    let importance = FeatureImportance::of_model(&te.model, ImportanceKind::SplitCount);
    let fractions = importance.fractions();
    let names = LfoConfig::default().feature_names();

    println!("\n== Figure 8: feature occurrence in tree splits ==");
    let mut csv = Vec::new();
    for (name, fraction) in names.iter().zip(&fractions) {
        // Print the paper's selection: Size, Cost, Free, gaps 1, 5, 10, ... 50.
        let is_printed_gap = name
            .strip_prefix("Gap ")
            .and_then(|g| g.parse::<usize>().ok())
            .map(|g| g == 1 || g % 5 == 0)
            .unwrap_or(true);
        if is_printed_gap {
            let bar = "#".repeat((fraction * 200.0) as usize);
            println!("  {name:<8} {:>5.1}%  {bar}", fraction * 100.0);
        }
        csv.push(format!("{name},{:.6}", fraction));
    }
    ctx.write_csv("fig8_importance.csv", "feature,split_fraction", &csv)?;

    // Shape checks.
    let by_name = |n: &str| {
        names
            .iter()
            .position(|x| x == n)
            .map(|i| fractions[i])
            .unwrap_or(0.0)
    };
    let size = by_name("Size");
    let cost = by_name("Cost");
    let free = by_name("Free");
    let gap1_4: f64 = (1..=4).map(|g| by_name(&format!("Gap {g}"))).sum();
    let gap20_50: f64 = (20..=50).map(|g| by_name(&format!("Gap {g}"))).sum();
    println!(
        "  shape: Size {:.1}% (paper ~28%), Cost {:.1}% (paper ~0%), Free {:.1}% (paper ~10%),",
        size * 100.0,
        cost * 100.0,
        free * 100.0
    );
    println!(
        "         gaps 1-4 {:.1}% (dominant among gaps: {}), gaps 20-50 total {:.1}%",
        gap1_4 * 100.0,
        gap1_4 > gap20_50 / 7.0, // per-gap rate comparison (4 vs 31 gaps)
        gap20_50 * 100.0
    );
    Ok(())
}
