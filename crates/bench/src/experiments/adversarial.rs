//! `repro adversarial` — the runtime guardrail bound under hostile workloads.
//!
//! Replays four adversarial scenarios (plus the benign control) through the
//! same first-window model twice — guardrail disabled and guardrail
//! enforcing — and checks the runtime bound
//! `BHR >= (1 - epsilon) * BHR_LRU - delta` against an *exact* full-replay
//! LRU reference ([`lru_reference_bhr`]), not the guardrail's own sampled
//! shadow estimate. The unguarded learned policy is expected to break the
//! bound on the scenarios built to exploit its long-gap admission bias
//! (burst thrash, wrapping scan flood); the guarded replay must hold it on
//! every scenario. The benign
//! control doubles as the overhead measurement: guardrail-on must stay
//! within ±0.005 BHR and 2% reqs/s of guardrail-off.

use std::sync::Arc;
use std::time::Instant;

use cdn_cache::cache::CachePolicy;
use cdn_trace::{Adversary, GeneratorConfig, Request, TraceGenerator};
use gbdt::{GbdtParams, Model};
use lfo::{
    lru_reference_bhr, CacheMetrics, GuardrailConfig, GuardrailSnapshot, LfoCache, LfoConfig,
};

use crate::harness::Context;
use crate::perf::{peak_rss_bytes, AdversarialRow, BenchAdversarial};

use super::common::{train_and_eval, Gates};

/// Trace seed for this experiment (distinct from serve's 107).
const SEED: u64 = 131;

/// One replay's observables.
struct Replay {
    bhr: f64,
    reqs_per_sec: f64,
    guardrail: Option<GuardrailSnapshot>,
}

/// Replays the trace through one unsharded `LfoCache` serving the given
/// model, optionally under a guardrail.
fn replay(
    requests: &[Request],
    capacity: u64,
    model: &Arc<Model>,
    guard: Option<GuardrailConfig>,
) -> Replay {
    let mut cache = LfoCache::new(capacity, LfoConfig::default());
    cache.install_model(model.clone());
    if let Some(config) = guard {
        cache.enable_guardrail(config);
    }
    let mut metrics = CacheMetrics::default();
    let started = Instant::now();
    for request in requests {
        let outcome = cache.handle(request);
        metrics.record(request.size, outcome);
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    Replay {
        bhr: metrics.bhr(),
        reqs_per_sec: requests.len() as f64 / elapsed,
        guardrail: cache.guardrail(),
    }
}

/// Best-of-N over interleaved off/on replays. Replays are deterministic,
/// so BHR and guardrail counters are identical across repetitions; only the
/// timing varies. Two measurement hygiene rules, both learned the hard way
/// on a contended 1-core box: interleave the sides (running all of one
/// side, then all of the other bakes turbo/thermal decay into whichever
/// goes last, which reads as fake guardrail overhead), and *alternate
/// which side goes first* within the interleave (a fixed off-then-on order
/// lets the first position soak up the turbo budget recovered between
/// pairs, so the second side never samples a fast machine state). A
/// discarded warmup replay flattens the cold-start spike. With `runs > 1`,
/// best-of on each side then converges to the machine's true per-side
/// maximum.
fn best_pair(
    runs: usize,
    mut off: impl FnMut() -> Replay,
    mut on: impl FnMut() -> Replay,
) -> (Replay, Replay) {
    let mut best_off: Option<Replay> = None;
    let mut best_on: Option<Replay> = None;
    if runs > 1 {
        let _ = off(); // warmup, untimed
    }
    for pair in 0..runs {
        let (first, second) = if pair % 2 == 0 {
            let f = off();
            let s = on();
            (f, s)
        } else {
            let s = on();
            let f = off();
            (f, s)
        };
        if best_off
            .as_ref()
            .is_none_or(|b| first.reqs_per_sec > b.reqs_per_sec)
        {
            best_off = Some(first);
        }
        if best_on
            .as_ref()
            .is_none_or(|b| second.reqs_per_sec > b.reqs_per_sec)
        {
            best_on = Some(second);
        }
    }
    (best_off.expect("runs >= 1"), best_on.expect("runs >= 1"))
}

/// Runs every scenario with the guardrail off and on and asserts the bound.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let n: u64 = ctx.scale.pick3(12_000, 60_000, 400_000);
    let trace = ctx.standard_trace(SEED);
    let cache_size = ctx.standard_cache_size(&trace);
    let w = ctx.window();

    // One model serves every replay (the paper's protocol: learn on the
    // first window). Scenario onsets start at n/4 >= 2w at every scale, so
    // the model never sees adversarial traffic at fit time — the attacks
    // target a model that was honest when deployed.
    let reqs = trace.requests();
    let te = train_and_eval(
        &reqs[..w],
        &reqs[w..2 * w],
        cache_size,
        &GbdtParams::lfo_paper(),
    );
    let model = Arc::new(te.model);

    // A responsive guardrail: evaluate every `window` *sampled* requests
    // (1/8 sampling → 8x that many raw requests), trip on two consecutive
    // violating windows (one window of sampled-substream noise must not
    // flip a healthy cache), re-arm after two clean shadow windows.
    // epsilon and delta stay at the library defaults — they define the
    // bound we assert.
    let guard = GuardrailConfig {
        window: ctx.scale.pick3(256, 512, 2_048),
        trip_after: 2,
        recover_after: 2,
        sample_shift: 3,
        ..GuardrailConfig::default()
    };

    println!("== adversarial: guardrail bound under hostile workloads ==");
    println!(
        "requests {n}, cache {} MiB, guardrail window {} sampled (1/{} rate), \
         bound = (1 - {:.2}) * lru_bhr - {:.2}",
        cache_size >> 20,
        guard.window,
        1u64 << guard.sample_shift,
        guard.epsilon,
        guard.delta,
    );

    let onset = n / 4;
    // Burst-thrash pool: sized so one pool fills ~60% of the cache (LRU
    // keeps it resident and hits every revisit) while each object is only
    // touched a handful of times per burst — the learned policy pays its
    // first-touch admission tax on a fresh pool every burst, over traffic
    // that dominates the stream.
    let pool_size: u64 = 256 * 1024;
    let pool_objects = (cache_size * 6 / 10 / pool_size).max(64);
    let scenarios: Vec<(&str, Vec<Adversary>)> = vec![
        ("benign", Vec::new()),
        (
            "burst-thrash",
            vec![Adversary::BurstThrash {
                start: onset,
                period: n / 8,
                burst: n / 8,
                share: 0.97,
                objects: pool_objects,
                size: pool_size,
            }],
        ),
        // Repeated inversions: every flip hands the Zipf head to objects
        // whose stale long-gap histories the model reads as cold, so it
        // keeps re-paying its admission tax on the hottest (and, for the
        // download class, largest) objects; LRU pays one compulsory miss
        // per flip.
        (
            "popularity-inversion",
            (0..12)
                .map(|i| Adversary::PopularityInversion {
                    at: onset + i * (n - onset) / 12,
                })
                .collect(),
        ),
        // A re-walked sweep (crawler/batch job looping over a fixed
        // dataset): the pool fits the cache, so LRU hits every pass after
        // the first, but each object returns at a long constant gap the
        // model's admission reads as cold — it keeps bypassing the sweep.
        (
            "scan-flood",
            vec![Adversary::ScanFlood {
                start: onset,
                duration: n - onset,
                share: 0.95,
                size: pool_size,
                wrap: pool_objects,
            }],
        ),
        // Repeated full-catalog drifts at sizes the frozen training grid
        // never saw. Kept as the contrast scenario: the live gap features
        // re-learn each fresh catalog within a cache lifetime, so the
        // learned policy tracks (and under shrink often beats) LRU — the
        // guardrail's job here is to NOT trip spuriously.
        (
            "drifted-mix",
            (0..6)
                .map(|i| Adversary::DriftedMix {
                    at: onset + i * (n - onset) / 6,
                    size_scale: 0.5,
                    reshuffle_fraction: 1.0,
                })
                .collect(),
        ),
    ];

    let mut doc = BenchAdversarial {
        requests: n as usize,
        epsilon: guard.epsilon,
        delta: guard.delta,
        guardrail_window: guard.window,
        sample_shift: guard.sample_shift,
        ..BenchAdversarial::default()
    };

    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>5} {:>5} {:>5} {:>8} {:>9} {:>9}",
        "scenario",
        "lru",
        "bound",
        "off",
        "on",
        "off?",
        "on?",
        "trips",
        "forced",
        "off req/s",
        "on req/s"
    );
    for (name, adversaries) in scenarios {
        let mut cfg = GeneratorConfig::production(SEED, n);
        cfg.adversaries = adversaries;
        let scenario_trace = TraceGenerator::new(cfg).generate();
        let requests = scenario_trace.requests();

        let lru_bhr = lru_reference_bhr(requests, cache_size);
        let bound = guard.bound(lru_bhr);

        // The benign control is also the overhead measurement: best-of-7
        // interleaved timing on both sides to damp scheduler noise.
        let runs = if name == "benign" { 7 } else { 1 };
        let (off, on) = best_pair(
            runs,
            || replay(requests, cache_size, &model, None),
            || replay(requests, cache_size, &model, Some(guard)),
        );

        let row = AdversarialRow {
            scenario: name.to_string(),
            lru_bhr,
            bound,
            off_bhr: off.bhr,
            on_bhr: on.bhr,
            off_holds: off.bhr >= bound,
            on_holds: on.bhr >= bound,
            trips: on.guardrail.map_or(0, |g| g.trips),
            forced_requests: on.guardrail.map_or(0, |g| g.forced_requests),
            off_reqs_per_sec: off.reqs_per_sec,
            on_reqs_per_sec: on.reqs_per_sec,
            peak_rss_bytes: peak_rss_bytes(),
        };
        println!(
            "{:<22} {:>7.4} {:>7.4} {:>7.4} {:>7.4} {:>5} {:>5} {:>5} {:>8} {:>9.0} {:>9.0}",
            row.scenario,
            row.lru_bhr,
            row.bound,
            row.off_bhr,
            row.on_bhr,
            if row.off_holds { "ok" } else { "VIOL" },
            if row.on_holds { "ok" } else { "VIOL" },
            row.trips,
            row.forced_requests,
            row.off_reqs_per_sec,
            row.on_reqs_per_sec,
        );
        if name == "benign" {
            doc.benign_bhr_delta = (on.bhr - off.bhr).abs();
            doc.benign_rate_ratio = on.reqs_per_sec / off.reqs_per_sec;
        }
        doc.rows.push(row);
    }
    println!(
        "benign overhead: |BHR delta| {:.4}, reqs/s ratio {:.3}",
        doc.benign_bhr_delta, doc.benign_rate_ratio
    );

    // Smoke traces are too short for the guardrail to see more than a
    // handful of evaluation windows, so the bound is only asserted at quick
    // and full scale (the restart experiment sets the same precedent).
    let gates = Gates::at(
        ctx.scale,
        "too few evaluation windows for the guardrail bound",
    );
    for row in &doc.rows {
        gates.require(row.on_holds, || {
            format!(
                "guardrail-on replay of `{}` broke the bound: BHR {:.4} < {:.4} \
                 (lru {:.4}, trips {}, forced {})",
                row.scenario, row.on_bhr, row.bound, row.lru_bhr, row.trips, row.forced_requests,
            )
        });
    }
    let off_violations = doc
        .rows
        .iter()
        .filter(|r| r.scenario != "benign" && !r.off_holds)
        .count();
    gates.require(off_violations >= 2, || {
        format!(
            "expected the unguarded policy to break the bound on >= 2 adversarial \
             scenarios, got {off_violations}: {:?}",
            doc.rows
                .iter()
                .map(|r| (r.scenario.as_str(), r.off_holds))
                .collect::<Vec<_>>(),
        )
    });
    gates.require(doc.benign_bhr_delta <= 0.005, || {
        format!(
            "guardrail moved benign BHR by {:.4} (> 0.005 budget)",
            doc.benign_bhr_delta,
        )
    });
    gates.require(doc.benign_rate_ratio >= 0.98, || {
        format!(
            "guardrail costs {:.1}% benign throughput (> 2% budget)",
            (1.0 - doc.benign_rate_ratio) * 100.0,
        )
    });

    let header = "scenario,lru_bhr,bound,off_bhr,on_bhr,off_holds,on_holds,\
                  trips,forced_requests,off_reqs_per_sec,on_reqs_per_sec,peak_rss_bytes";
    let rows: Vec<String> = doc
        .rows
        .iter()
        .map(|r| {
            format!(
                "{},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{:.1},{:.1},{}",
                r.scenario,
                r.lru_bhr,
                r.bound,
                r.off_bhr,
                r.on_bhr,
                r.off_holds,
                r.on_holds,
                r.trips,
                r.forced_requests,
                r.off_reqs_per_sec,
                r.on_reqs_per_sec,
                r.peak_rss_bytes.unwrap_or(0),
            )
        })
        .collect();
    ctx.write_csv("adversarial.csv", header, &rows)?;
    let path = doc.store(ctx)?;
    println!("wrote {}", path.display());
    Ok(())
}
