//! Figure 5a: false positive / false negative rates vs likelihood cutoff.
//!
//! Paper shape: "false positive and false negative rates plateau between
//! cutoff values .25 and .75. Below a .25 cutoff the false negative rate
//! increases quickly. Above a .75 cutoff the false positive rate increases
//! quickly." (Note the paper's axis labels: below a low cutoff nearly
//! everything is admitted, so *false positives* are the errors that explode
//! at low cutoffs — the quoted sentence swaps the names relative to its own
//! plot; we report the standard definitions and check the plateau.)

use gbdt::GbdtParams;

use crate::experiments::common::train_and_eval;
use crate::harness::Context;

/// Runs the cutoff sweep.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(102);
    let cache_size = ctx.standard_cache_size(&trace);
    let w = ctx.window();
    let reqs = trace.requests();
    let te = train_and_eval(
        &reqs[..w],
        &reqs[w..2 * w],
        cache_size,
        &GbdtParams::lfo_paper(),
    );

    println!("\n== Figure 5a: FP/FN vs likelihood cutoff ==");
    println!("  cutoff     FP%     FN%   total err%");
    let mut rows = Vec::new();
    let mut plateau = Vec::new();
    for step in 1..50 {
        let cutoff = step as f64 / 50.0;
        let c = te.confusion(cutoff);
        let fp = c.false_positive_fraction() * 100.0;
        let fn_ = c.false_negative_fraction() * 100.0;
        if step % 5 == 0 {
            println!("  {cutoff:>6.2}  {fp:>6.2}  {fn_:>6.2}  {:>6.2}", fp + fn_);
        }
        rows.push(format!("{cutoff:.2},{fp:.4},{fn_:.4}"));
        if (0.25..=0.75).contains(&cutoff) {
            plateau.push(fp + fn_);
        }
    }
    ctx.write_csv(
        "fig5a_cutoff.csv",
        "cutoff,false_positive_pct,false_negative_pct",
        &rows,
    )?;

    // Shape check: total error varies little across the plateau compared
    // to the extremes.
    let plateau_spread = plateau.iter().cloned().fold(f64::MIN, f64::max)
        - plateau.iter().cloned().fold(f64::MAX, f64::min);
    let extreme = te
        .confusion(0.02)
        .error_fraction()
        .max(te.confusion(0.98).error_fraction())
        * 100.0;
    let mid = te.error(0.5) * 100.0;
    println!(
        "  shape: plateau spread {plateau_spread:.2}pp; error at extremes {extreme:.1}% vs {mid:.1}% at 0.5"
    );
    Ok(())
}
