//! Helpers shared by the figure experiments.

use cdn_trace::Request;
use gbdt::{Confusion, Dataset, GbdtParams, Model};
use lfo::features::FeatureTracker;
use lfo::labels::build_training_set;
use lfo::LfoConfig;
use opt::{compute_opt, OptConfig};

use crate::harness::Scale;

/// Scale-aware acceptance gates: asserted at quick/full scale, announced
/// as skipped at smoke scale (smoke traces are too small for wall-clock
/// ratios or statistical bounds to be meaningful — every experiment that
/// gates was writing this same if/else by hand).
pub struct Gates {
    enforced: bool,
}

impl Gates {
    /// Builds the gate set for `scale`, printing the standard skip line
    /// (with the experiment's reason) when gates are off.
    pub fn at(scale: Scale, skip_reason: &str) -> Self {
        let enforced = scale != Scale::Smoke;
        if !enforced {
            println!("  gates: skipped at smoke scale ({skip_reason})");
        }
        Gates { enforced }
    }

    /// Whether gate conditions are asserted at this scale (recorded in
    /// the experiments' JSON documents).
    pub fn enforced(&self) -> bool {
        self.enforced
    }

    /// Asserts `cond` when gates are enforced; the message closure is
    /// only evaluated on failure.
    ///
    /// # Panics
    ///
    /// Panics with the message when enforced and `cond` is false.
    pub fn require(&self, cond: bool, message: impl FnOnce() -> String) {
        if self.enforced {
            assert!(cond, "{}", message());
        }
    }
}

/// Train on window A and score window B, using one continuous feature
/// tracker across both windows (the paper's protocol: train on requests
/// 0–1M, evaluate on 1–2M).
pub struct TrainEval {
    /// The trained model.
    pub model: Model,
    /// The window-A training set the model was fit on (kept so callers can
    /// fit a [`gbdt::BinMap`] on exactly the training distribution — the
    /// grid that makes quantized serving bit-equal to the flat walk).
    pub train_data: Dataset,
    /// Predicted probabilities on window B.
    pub probs: Vec<f64>,
    /// OPT labels of window B.
    pub labels: Vec<f32>,
}

impl TrainEval {
    /// Confusion of the window-B predictions at `cutoff`.
    pub fn confusion(&self, cutoff: f64) -> Confusion {
        Confusion::at_cutoff(&self.probs, &self.labels, cutoff)
    }

    /// Prediction error (FP + FN fraction) at `cutoff`.
    pub fn error(&self, cutoff: f64) -> f64 {
        self.confusion(cutoff).error_fraction()
    }
}

/// Runs the train-on-A / evaluate-on-B protocol.
pub fn train_and_eval(
    window_a: &[Request],
    window_b: &[Request],
    cache_size: u64,
    gbdt: &GbdtParams,
) -> TrainEval {
    let lfo_config = LfoConfig {
        gbdt: gbdt.clone(),
        ..Default::default()
    };
    let opt_config = OptConfig::bhr(cache_size);
    let mut tracker = FeatureTracker::new(lfo_config.num_gaps, lfo_config.cost_model);

    let opt_a = compute_opt(window_a, &opt_config).expect("window A OPT");
    let data_a = build_training_set(window_a, &opt_a, &mut tracker, cache_size);
    let model = gbdt::train(&data_a, gbdt);

    let opt_b = compute_opt(window_b, &opt_config).expect("window B OPT");
    let data_b = build_training_set(window_b, &opt_b, &mut tracker, cache_size);
    let probs: Vec<f64> = (0..data_b.num_rows())
        .map(|r| model.predict_proba(&data_b.row(r)))
        .collect();
    TrainEval {
        model,
        train_data: data_a,
        probs,
        labels: data_b.labels().to_vec(),
    }
}

/// Builds a labeled dataset for one window (fresh tracker).
pub fn window_dataset(window: &[Request], cache_size: u64) -> Dataset {
    let lfo_config = LfoConfig::default();
    let opt_config = OptConfig::bhr(cache_size);
    let mut tracker = FeatureTracker::new(lfo_config.num_gaps, lfo_config.cost_model);
    let opt = compute_opt(window, &opt_config).expect("window OPT");
    build_training_set(window, &opt, &mut tracker, cache_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::{GeneratorConfig, TraceGenerator};

    #[test]
    fn train_eval_protocol_produces_aligned_outputs() {
        let trace = TraceGenerator::new(GeneratorConfig::small(1, 4_000)).generate();
        let reqs = trace.requests();
        let te = train_and_eval(
            &reqs[..2_000],
            &reqs[2_000..],
            2 * 1024 * 1024,
            &GbdtParams::lfo_paper(),
        );
        assert_eq!(te.probs.len(), 2_000);
        assert_eq!(te.labels.len(), 2_000);
        assert!(te.error(0.5) < 0.5);
    }

    #[test]
    fn gates_skip_at_smoke_and_enforce_elsewhere() {
        let smoke = Gates::at(Scale::Smoke, "unit test");
        assert!(!smoke.enforced());
        smoke.require(false, || unreachable!("smoke gates never assert"));

        let quick = Gates::at(Scale::Quick, "unit test");
        assert!(quick.enforced());
        quick.require(true, || {
            unreachable!("message closure only runs on failure")
        });
    }

    #[test]
    #[should_panic(expected = "quick-scale gate fires")]
    fn enforced_gates_panic_on_violation() {
        Gates::at(Scale::Full, "unit test").require(false, || "quick-scale gate fires".into());
    }
}
