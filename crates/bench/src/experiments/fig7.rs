//! Figure 7: prediction throughput vs number of predictor threads.
//!
//! Paper shape: "A single thread can serve predictions for just below 300K
//! requests per second. For 12 threads (44 threads), prediction speed
//! scales almost linearly reaching more than 3 million (11 million)
//! requests per second. To utilize a 40 GBit/s network, LFO needs only two
//! threads, assuming an average object size of 32KB."

use std::time::Duration;

use gbdt::GbdtParams;

use crate::experiments::common::{train_and_eval, window_dataset};
use crate::harness::Context;
use crate::perf::{BenchServe, Fig7Row};
use lfo::serve::prediction_throughput;

/// Runs the thread-scaling sweep.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(104);
    let cache_size = ctx.standard_cache_size(&trace);
    let w = ctx.window();
    let reqs = trace.requests();
    let te = train_and_eval(
        &reqs[..w],
        &reqs[w..2 * w],
        cache_size,
        &GbdtParams::lfo_paper(),
    );

    // Rows to score: realistic feature vectors from the trace.
    let data = window_dataset(&reqs[..w.min(4_096)], cache_size);
    let rows: Vec<Vec<f32>> = (0..data.num_rows()).map(|r| data.row(r)).collect();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let duration = Duration::from_millis(ctx.scale.pick(200, 1_000));
    println!("\n== Figure 7: prediction throughput vs threads ({cores} cores) ==");
    println!("  threads  preds/s     Gbit/s @32KB");
    let mut csv = Vec::new();
    let mut series = Vec::new();
    let mut json_rows = Vec::new();
    for &threads in &[1usize, 2, 4, 8, 12, 16, 24, 32, 40] {
        // Sweep past the core count (oversubscription shows up as a flat
        // line, which is itself informative on small hosts), but stop at
        // 4x cores to bound runtime.
        if threads > (cores * 4).max(8) {
            break;
        }
        let r = prediction_throughput(&te.model, &rows, threads, duration);
        let gbps = r.implied_bits_per_second(32 * 1024) / 1e9;
        println!("  {threads:>7}  {:>10.0}  {gbps:>6.1}", r.per_second());
        csv.push(format!("{threads},{:.0},{gbps:.2}", r.per_second()));
        series.push((threads, r.per_second()));
        json_rows.push(Fig7Row {
            threads,
            preds_per_sec: r.per_second(),
            gbps_at_32kb: gbps,
        });
    }
    ctx.write_csv(
        "fig7_throughput.csv",
        "threads,predictions_per_sec,gbps_at_32kb",
        &csv,
    )?;
    let mut doc = BenchServe::load(ctx);
    doc.host_cores = BenchServe::detect_cores();
    doc.fig7 = json_rows;
    doc.store(ctx)?;

    if series.len() >= 2 {
        let (t0, p0) = series[0];
        let (t1, p1) = *series.last().unwrap();
        let speedup = p1 / p0;
        let ideal = t1 as f64 / t0 as f64;
        println!(
            "  shape: {t1} threads give {speedup:.1}x over {t0} thread(s) (ideal {ideal:.0}x \
             on {cores} core(s)); 40 Gbit/s needs {:.1} threads at 32KB objects",
            40e9 / (p0 * 32.0 * 1024.0 * 8.0)
        );
        if cores == 1 {
            println!(
                "  note: single-core host — the paper's near-linear scaling to 44 threads \
                 cannot manifest here; per-thread rate is the comparable number"
            );
        }
    }
    Ok(())
}
