//! Figure 7: prediction throughput vs number of predictor threads, plus
//! the serving-engine comparison.
//!
//! Paper shape: "A single thread can serve predictions for just below 300K
//! requests per second. For 12 threads (44 threads), prediction speed
//! scales almost linearly reaching more than 3 million (11 million)
//! requests per second. To utilize a 40 GBit/s network, LFO needs only two
//! threads, assuming an average object size of 32KB."
//!
//! On top of the paper's thread sweep (flat engine, `BENCH_serve.json`),
//! the experiment races the four serving engines — recursive, flat,
//! quantized, quantized+pruned — over the same packed row set at the same
//! thread counts and writes the matrix to `BENCH_fig7.json`. The
//! acceptance gate lives here: the quantized kernel must reach at least
//! 3x the flat walk's preds/s at some equal thread count.

use std::time::Duration;

use gbdt::{BinMap, EngineKind, GbdtParams, Predicate};
use lfo::serve::{prediction_throughput, prediction_throughput_engine};
use lfo::FREE_FEATURE;

use crate::experiments::common::{train_and_eval, window_dataset};
use crate::harness::Context;
use crate::perf::{BenchFig7, BenchServe, Fig7EngineRow, Fig7Row};

/// Runs the thread-scaling sweep and the engine comparison.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(104);
    let cache_size = ctx.standard_cache_size(&trace);
    let w = ctx.window();
    let reqs = trace.requests();
    let params = GbdtParams::lfo_paper();
    let te = train_and_eval(&reqs[..w], &reqs[w..2 * w], cache_size, &params);

    // Rows to score: realistic feature vectors from the trace.
    let data = window_dataset(&reqs[..w.min(4_096)], cache_size);
    let rows: Vec<Vec<f32>> = (0..data.num_rows()).map(|r| data.row(r)).collect();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let duration = Duration::from_millis(ctx.scale.pick(200, 1_000));
    println!("\n== Figure 7: prediction throughput vs threads ({cores} cores) ==");
    println!("  threads  preds/s     Gbit/s @32KB");
    let mut csv = Vec::new();
    let mut series = Vec::new();
    let mut json_rows = Vec::new();
    for &threads in &[1usize, 2, 4, 8, 12, 16, 24, 32, 40] {
        // Sweep past the core count (oversubscription shows up as a flat
        // line, which is itself informative on small hosts), but stop at
        // 4x cores to bound runtime.
        if threads > (cores * 4).max(8) {
            break;
        }
        let r = prediction_throughput(&te.model, &rows, threads, duration);
        let gbps = r.implied_bits_per_second(32 * 1024) / 1e9;
        println!("  {threads:>7}  {:>10.0}  {gbps:>6.1}", r.per_second());
        csv.push(format!("{threads},{:.0},{gbps:.2}", r.per_second()));
        series.push((threads, r.per_second()));
        json_rows.push(Fig7Row {
            threads,
            preds_per_sec: r.per_second(),
            gbps_at_32kb: gbps,
        });
    }
    ctx.write_csv(
        "fig7_throughput.csv",
        "threads,predictions_per_sec,gbps_at_32kb",
        &csv,
    )?;
    let mut doc = BenchServe::load(ctx);
    doc.host_cores = BenchServe::detect_cores();
    doc.fig7 = json_rows;
    doc.store(ctx)?;

    if series.len() >= 2 {
        let (t0, p0) = series[0];
        let (t1, p1) = *series.last().unwrap();
        let speedup = p1 / p0;
        let ideal = t1 as f64 / t0 as f64;
        println!(
            "  shape: {t1} threads give {speedup:.1}x over {t0} thread(s) (ideal {ideal:.0}x \
             on {cores} core(s)); 40 Gbit/s needs {:.1} threads at 32KB objects",
            40e9 / (p0 * 32.0 * 1024.0 * 8.0)
        );
        if cores == 1 {
            println!(
                "  note: single-core host — the paper's near-linear scaling to 44 threads \
                 cannot manifest here; per-thread rate is the comparable number"
            );
        }
    }

    engine_comparison(ctx, &te.model, &te.train_data, &rows, cache_size, duration)
}

/// Races the four serving engines over the same packed rows at the same
/// thread counts; writes `BENCH_fig7.json` and enforces the quantized
/// speedup gate.
fn engine_comparison(
    ctx: &Context,
    model: &gbdt::Model,
    train_data: &gbdt::Dataset,
    rows: &[Vec<f32>],
    cache_size: u64,
    duration: Duration,
) -> std::io::Result<()> {
    let params = GbdtParams::lfo_paper();
    // The frozen training grid: fit on exactly the distribution the model
    // trained on, so the quantized compile is exact (bit-equal scores).
    let map = BinMap::fit(train_data, params.max_bins);
    // The shard invariant the pruned engine specializes against: the
    // free-bytes feature never exceeds the cache capacity. u64 -> f32
    // rounding is monotone, so every row's `free as f32` stays <= the
    // bound's f32 image and the predicate genuinely holds.
    let predicates = [Predicate::range(FREE_FEATURE, 0.0, cache_size as f32)];

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= (cores * 2).max(2))
        .collect();

    println!("\n== Figure 7b: serving-engine comparison ==");
    println!("  engine            threads  preds/s     vs flat");
    let mut csv = Vec::new();
    let mut out_rows: Vec<Fig7EngineRow> = Vec::new();
    let mut quantized_speedup_max = 0.0f64;
    for &threads in &thread_counts {
        let rates: Vec<(EngineKind, f64)> = EngineKind::ALL
            .into_iter()
            .map(|engine| {
                let r = prediction_throughput_engine(
                    model,
                    rows,
                    threads,
                    duration,
                    engine,
                    Some(&map),
                    &predicates,
                )
                .expect("the training grid matches the model's feature count");
                (engine, r.per_second())
            })
            .collect();
        let flat_rate = rates
            .iter()
            .find(|(e, _)| *e == EngineKind::Flat)
            .map(|&(_, r)| r)
            .unwrap_or(f64::INFINITY);
        for (engine, rate) in rates {
            let speedup = rate / flat_rate.max(1e-9);
            if engine == EngineKind::Quantized {
                quantized_speedup_max = quantized_speedup_max.max(speedup);
            }
            println!(
                "  {:<16}  {threads:>7}  {rate:>10.0}  {speedup:>6.2}x",
                engine.label()
            );
            csv.push(format!(
                "{},{threads},{rate:.0},{speedup:.3}",
                engine.label()
            ));
            out_rows.push(Fig7EngineRow {
                engine: engine.label().to_string(),
                threads,
                preds_per_sec: rate,
                speedup_vs_flat: speedup,
            });
        }
    }
    ctx.write_csv(
        "fig7_engines.csv",
        "engine,threads,preds_per_sec,speedup_vs_flat",
        &csv,
    )?;
    let doc = BenchFig7 {
        host_cores: BenchServe::detect_cores(),
        rows: out_rows,
        quantized_speedup_max,
    };
    let path = doc.store(ctx)?;
    println!(
        "  json: {}  (best quantized speedup {quantized_speedup_max:.2}x)",
        path.display()
    );
    assert!(
        quantized_speedup_max >= 3.0,
        "quantized engine reached only {quantized_speedup_max:.2}x over the flat walk \
         (acceptance floor: 3x at some equal thread count)"
    );
    Ok(())
}
