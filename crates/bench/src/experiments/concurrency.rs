//! `repro concurrency`: fleet-shared doorkeeper vs per-shard sketches.
//!
//! PR 8's bounded tracker made serving state independent of the catalog,
//! but a pooled shard fleet still carried one doorkeeper sketch and one
//! GCLOCK ring *per shard* — fleet metadata scaled with budget × shards,
//! and shards never shared first-sighting evidence. This experiment
//! replays the huge-catalog trace through a [`ShardedLfoCache`] at
//! 1/2/4/8 shards twice per shard count: once with private per-shard
//! sketches (`shared_sketch: false`, the pre-pool behavior) and once on
//! one fleet-shared [`lfo::SharedDoorkeeper`] (DESIGN.md §16). Alongside
//! hit-path requests/s and aggregate BHR it reports the fleet doorkeeper
//! bytes (per-shard tracker state plus the shared sketch counted once),
//! the pool's CAS-contention counters, and the guardrail ghost bytes
//! saved by borrowing the doorkeeper.
//!
//! Gates (quick/full scale, evaluated at 4 shards): shared-sketch fleet
//! doorkeeper memory must stay ≤ 1.2× the single-cache budget (the
//! 1-shard private reference — versus ~N× for per-shard sketches), BHR
//! must stay within 0.01 of the per-shard placement, and a paired
//! best-of-5 timing duel must keep shared reqs/s ≥ 0.95× per-shard.
//! Results land in `results/BENCH_concurrency.json`.

use std::time::Instant;

use cdn_trace::{GeneratorConfig, Request, TraceGenerator, TraceStats};
use gbdt::{BinMap, GbdtParams};
use lfo::labels::build_training_set;
use lfo::{
    EvictionStrategy, GuardrailConfig, LfoArtifact, LfoConfig, Provenance, ShardParams,
    ShardedLfoCache, SketchPoolStats, TrackerBudget,
};
use opt::{compute_opt, OptConfig};

use crate::experiments::common::Gates;
use crate::harness::Context;
use crate::perf::{peak_rss_bytes, BenchConcurrency, ConcurrencyRow};

/// Trace seed (distinct from memory's 211; same huge-catalog family).
const SEED: u64 = 223;

/// Sample-K every replay evicts with (the discipline the bounded sweep
/// found competitive; features depend on the tracker bound, not on K).
const SAMPLE_K: usize = 16;

/// One replay's observables.
struct Replay {
    reqs_per_sec: f64,
    bhr: f64,
    /// Per-shard tracker bytes summed, plus the shared sketch counted
    /// once — the fleet's doorkeeper metadata footprint.
    fleet_tracker_bytes: u64,
    metadata_bytes_per_object: f64,
    stats: SketchPoolStats,
    ghost_saved_bytes: u64,
}

/// Replays the trace through a shard fleet cold-started from `artifact`,
/// with the doorkeeper either fleet-shared or private per shard.
fn replay(
    requests: &[Request],
    capacity: u64,
    artifact: &LfoArtifact,
    shards: usize,
    shared: bool,
) -> Replay {
    // Small batches keep shards coupled to trace order (see `repro
    // serve`); the observe-only guardrail rides along so the shared rows
    // exercise (and account) the ghost doorkeeper-borrow path without
    // changing any serving decision.
    let params = ShardParams {
        batch_size: 8,
        queue_depth: 1,
        shared_sketch: shared,
        guardrail: Some(GuardrailConfig {
            enforce: false,
            ..GuardrailConfig::default()
        }),
        ..ShardParams::with_shards(shards)
    };
    let mut cache = ShardedLfoCache::from_artifact(capacity, params, artifact);
    let pool = cache.sketch_pool().cloned();
    let started = Instant::now();
    for request in requests {
        cache.handle(request);
    }
    let report = cache.finish();
    let secs = started.elapsed().as_secs_f64();
    let total = report.total();
    assert_eq!(total.requests, requests.len() as u64, "lost requests");
    let tracker: u64 = report.shards.iter().map(|s| s.tracker_bytes).sum();
    let sketch = report
        .shards
        .iter()
        .map(|s| s.shared_sketch_bytes)
        .max()
        .unwrap_or(0);
    Replay {
        reqs_per_sec: requests.len() as f64 / secs.max(1e-9),
        bhr: total.bhr(),
        fleet_tracker_bytes: tracker + sketch,
        metadata_bytes_per_object: report.metadata_bytes_per_object(),
        stats: pool.map(|p| p.stats()).unwrap_or_default(),
        ghost_saved_bytes: total.shadow_doorkeeper_saved_bytes,
    }
}

/// Runs the shard sweep under both sketch placements and the gates.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let n = ctx.scale.pick3(12_000, 60_000, 300_000);
    let trace = TraceGenerator::new(GeneratorConfig::huge_catalog(SEED, n as u64)).generate();
    let stats = TraceStats::from_trace(&trace);
    let reqs = trace.requests();
    // Same regime as `repro memory`: residents ≪ unique objects, so the
    // doorkeeper has a real one-hit-wonder tail to filter.
    let cache_size = stats.cache_size_for_fraction(0.05);
    let budget: usize = ctx.scale.pick3(512, 4_096, 16_384);

    println!("\n== concurrency: fleet-shared doorkeeper across shard counts ==");
    println!(
        "  trace: {} requests over {} unique objects; cache {:.1} MB; tracker budget {budget}",
        reqs.len(),
        stats.unique_objects,
        cache_size as f64 / (1024.0 * 1024.0)
    );

    // One bounded-tracker model serves every cell: trained on the features
    // the bounded tracker actually emits (the `repro memory` protocol),
    // published with its frozen grid so every fleet scores through the
    // quantized engine.
    let config = LfoConfig {
        tracker_budget: Some(TrackerBudget::capped(budget)),
        eviction: Some(EvictionStrategy::sample(SAMPLE_K)),
        gap_schedule: Some(vec![1, 2, 4, 8, 16]),
        ..LfoConfig::default()
    };
    let w = ctx.window().min(reqs.len() / 2);
    let params = GbdtParams::lfo_paper();
    let opt_a = compute_opt(&reqs[..w], &OptConfig::bhr(cache_size)).expect("first-window OPT");
    let mut tracker = config.tracker();
    let data = build_training_set(&reqs[..w], &opt_a, &mut tracker, cache_size);
    let model = gbdt::train(&data, &params);
    let probs: Vec<f64> = (0..data.num_rows())
        .map(|r| model.predict_proba(&data.row(r)))
        .collect();
    let cutoff = lfo::equalize_cutoff(&probs, data.labels());
    let map = BinMap::fit(&data, params.max_bins);
    let artifact = LfoArtifact::new(
        config,
        model,
        cutoff,
        Provenance {
            trace_id: format!("huge-catalog-seed{SEED}-n{}", reqs.len()),
            window: 0,
            slot_version: 0,
            note: format!("repro concurrency, budget {budget}, n={}", reqs.len()),
            lineage: None,
            pop: None,
        },
    )
    .with_bin_map(Some(map));

    let shard_counts: &[usize] = ctx.scale.pick3(&[1, 2], &[1, 2, 4], &[1, 2, 4, 8]);
    // The acceptance gates are phrased at 4 shards; smoke sweeps stop at 2
    // (gates are skipped there anyway), so fall back to the widest fleet.
    let gate_shards = if shard_counts.contains(&4) {
        4
    } else {
        *shard_counts.last().expect("non-empty sweep")
    };

    println!(
        "  sketch     shards   reqs/s     BHR     fleet KB  ratio  meta B/obj  \
         CAS retry  stripe wait  ghost saved"
    );
    let mut rows: Vec<ConcurrencyRow> = Vec::new();
    let mut single_cache_tracker_bytes = 0u64;
    for &shards in shard_counts {
        for (label, shared) in [("per-shard", false), ("shared", true)] {
            let r = replay(reqs, cache_size, &artifact, shards, shared);
            if shards == 1 && !shared {
                // The 1-shard private fleet IS the single cache: its
                // doorkeeper footprint is the budget the memory gate is
                // phrased against.
                single_cache_tracker_bytes = r.fleet_tracker_bytes;
            }
            let ratio = r.fleet_tracker_bytes as f64 / single_cache_tracker_bytes.max(1) as f64;
            let row = ConcurrencyRow {
                sketch: label.to_string(),
                shards,
                reqs_per_sec: r.reqs_per_sec,
                bhr: r.bhr,
                fleet_tracker_bytes: r.fleet_tracker_bytes,
                metadata_bytes_per_object: r.metadata_bytes_per_object,
                sketch_updates: r.stats.sketch_updates,
                cas_retries: r.stats.cas_retries,
                stripe_contention: r.stats.stripe_contention,
                ghost_saved_bytes: r.ghost_saved_bytes,
                peak_rss_bytes: peak_rss_bytes(),
            };
            println!(
                "  {:<9}  {shards:>6}  {:>9.0}  {:.4}  {:>8.1}  {ratio:>5.2}  {:>9.1}  \
                 {:>9}  {:>11}  {:>11}",
                row.sketch,
                row.reqs_per_sec,
                row.bhr,
                row.fleet_tracker_bytes as f64 / 1024.0,
                row.metadata_bytes_per_object,
                row.cas_retries,
                row.stripe_contention,
                row.ghost_saved_bytes,
            );
            rows.push(row);
        }
    }

    let find = |sketch: &str, shards: usize| {
        rows.iter()
            .find(|r| r.sketch == sketch && r.shards == shards)
            .expect("both placements swept every shard count")
    };
    let shared_gate = find("shared", gate_shards);
    let private_gate = find("per-shard", gate_shards);
    let shared_memory_ratio =
        shared_gate.fleet_tracker_bytes as f64 / single_cache_tracker_bytes.max(1) as f64;
    let per_shard_memory_ratio =
        private_gate.fleet_tracker_bytes as f64 / single_cache_tracker_bytes.max(1) as f64;
    let bhr_delta = (shared_gate.bhr - private_gate.bhr).abs();

    // Paired best-of-5 timing duel at the gate shard count. Each round
    // replays per-shard then shared back to back and is judged by its own
    // ratio, and the gate takes the best round: scheduler or thermal
    // interference hits adjacent replays alike and cancels out of the
    // ratio, where maxing each side independently lets one globally slow
    // window sink whichever side it landed on (a real failure mode on a
    // single-core host, observed at ±10%+ per pass).
    let mut private_rate = private_gate.reqs_per_sec;
    let mut shared_rate = shared_gate.reqs_per_sec;
    let mut rate_ratio = shared_rate / private_rate.max(1e-9);
    for _ in 0..4 {
        let private = replay(reqs, cache_size, &artifact, gate_shards, false).reqs_per_sec;
        let shared = replay(reqs, cache_size, &artifact, gate_shards, true).reqs_per_sec;
        let ratio = shared / private.max(1e-9);
        if ratio > rate_ratio {
            rate_ratio = ratio;
            private_rate = private;
            shared_rate = shared;
        }
    }
    println!(
        "  gate @{gate_shards} shards: fleet memory {shared_memory_ratio:.2}x single-cache \
         (per-shard: {per_shard_memory_ratio:.2}x), |dBHR| {bhr_delta:.4}, \
         duel {shared_rate:.0} vs {private_rate:.0} reqs/s ({rate_ratio:.2}x)"
    );

    let gates = Gates::at(ctx.scale, "2-shard smoke fleets make the ratios noisy");
    let doc = BenchConcurrency {
        requests: reqs.len(),
        unique_objects: stats.unique_objects,
        cache_bytes: cache_size,
        tracker_budget: budget as u64,
        single_cache_tracker_bytes,
        gate_shards,
        shared_memory_ratio,
        per_shard_memory_ratio,
        bhr_delta,
        rate_ratio,
        gates_enforced: gates.enforced(),
        rows: rows.clone(),
    };
    let path = doc.store(ctx)?;
    println!("  json: {}", path.display());
    ctx.write_csv(
        "concurrency.csv",
        "sketch,shards,reqs_per_sec,bhr,fleet_tracker_bytes,metadata_bytes_per_object,\
         sketch_updates,cas_retries,stripe_contention,ghost_saved_bytes,peak_rss_bytes",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{:.0},{:.6},{},{:.1},{},{},{},{},{}",
                    r.sketch,
                    r.shards,
                    r.reqs_per_sec,
                    r.bhr,
                    r.fleet_tracker_bytes,
                    r.metadata_bytes_per_object,
                    r.sketch_updates,
                    r.cas_retries,
                    r.stripe_contention,
                    r.ghost_saved_bytes,
                    r.peak_rss_bytes.unwrap_or(0),
                )
            })
            .collect::<Vec<_>>(),
    )?;

    gates.require(shared_memory_ratio <= 1.2, || {
        format!(
            "shared-sketch fleet doorkeeper at {gate_shards} shards used \
             {shared_memory_ratio:.2}x the single-cache budget ({} vs {} bytes; \
             acceptance ceiling 1.2x)",
            shared_gate.fleet_tracker_bytes, single_cache_tracker_bytes,
        )
    });
    gates.require(bhr_delta <= 0.01, || {
        format!(
            "sharing the sketch moved BHR by {bhr_delta:.4} at {gate_shards} shards \
             (shared {:.4} vs per-shard {:.4}; budget 0.01)",
            shared_gate.bhr, private_gate.bhr,
        )
    });
    gates.require(rate_ratio >= 0.95, || {
        format!(
            "shared sketch served only {rate_ratio:.2}x the per-shard placement's reqs/s \
             at {gate_shards} shards (shared {shared_rate:.0} vs per-shard {private_rate:.0}; \
             acceptance floor 0.95x)"
        )
    });
    Ok(())
}
