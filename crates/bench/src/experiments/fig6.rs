//! Figure 6: byte hit ratio of LFO vs the state-of-the-art lineup and OPT.
//!
//! Paper shape: OPT on top; "LFO improves the BHR by 6% over the next best
//! system, S4LRU"; AdaptSize / Hyperbolic / LHD optimize the OHR and land
//! lower on BHR; "Compared to OPT, LFO achieves only about 80% of either
//! BHR or OHR". The OHR table is also produced (§3 discusses it: LFO
//! "achieves almost the same OHR as LHD").

use cdn_cache::policies::{by_name, FIGURE6_POLICIES};
use cdn_cache::{simulate, SimConfig};
use lfo::pipeline::{run_pipeline, PipelineConfig};
use opt::{compute_opt_segmented, OptConfig};

use crate::harness::Context;

/// Runs the Figure 6 comparison.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(103);
    let cache_size = ctx.standard_cache_size(&trace);
    let window = ctx.window();
    // All policies are measured after a one-window warmup, matching LFO's
    // "trained windows only" accounting.
    let sim = SimConfig {
        warmup: window,
        interval: 0,
    };

    println!("\n== Figure 6: BHR/OHR comparison ==");
    println!(
        "{} requests, cache {} MiB, warmup {} requests",
        trace.len(),
        cache_size >> 20,
        window
    );

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for name in FIGURE6_POLICIES {
        let mut policy = by_name(name, cache_size, 1).expect("known policy");
        let r = simulate(policy.as_mut(), trace.requests(), &sim);
        rows.push((r.policy.clone(), r.bhr(), r.ohr()));
    }

    // LFO via the sliding-window pipeline — once with the paper's fixed
    // 0.5 cutoff, once with the §3 FP/FN-equalizing cutoff (~0.65), which
    // the paper suggests makes LFO "more aggressive".
    let config = PipelineConfig {
        window,
        cache_size,
        ..Default::default()
    };
    let report = run_pipeline(trace.requests(), &config).expect("pipeline");
    rows.push((
        "LFO".into(),
        report.live_trained.bhr(),
        report.live_trained.ohr(),
    ));
    let mut tuned = config.clone();
    tuned.lfo.cutoff_mode = lfo::CutoffMode::EqualizeErrorRates;
    let tuned_report = run_pipeline(trace.requests(), &tuned).expect("pipeline");
    rows.push((
        "LFO-tuned".into(),
        tuned_report.live_trained.bhr(),
        tuned_report.live_trained.ohr(),
    ));

    // OPT over the same measured region, reported from the flow solution
    // (the FOO bound the paper's OPT bar shows — fractional byte hits
    // included; a full-object replay would undercount whenever large
    // objects split). Long traces use the time-axis segmentation, as the
    // paper's source [8] prescribes.
    let opt_cfg = OptConfig::bhr(cache_size);
    let opt =
        compute_opt_segmented(trace.requests(), &opt_cfg, window * 2).expect("OPT over the trace");
    let reqs = trace.requests();
    let mut opt_hit_bytes = 0u64;
    let mut opt_hits = 0u64;
    let mut measured_bytes = 0u64;
    for (k, req) in reqs.iter().enumerate().skip(window) {
        opt_hit_bytes += opt.cached_bytes[k];
        opt_hits += opt.full_hit[k] as u64;
        measured_bytes += req.size;
    }
    let measured_requests = (reqs.len() - window) as f64;
    rows.push((
        "OPT".into(),
        opt_hit_bytes as f64 / measured_bytes.max(1) as f64,
        opt_hits as f64 / measured_requests.max(1.0),
    ));

    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("  {:<12} {:>7} {:>7}", "policy", "BHR", "OHR");
    let mut csv = Vec::new();
    for (name, bhr, ohr) in &rows {
        println!("  {name:<12} {bhr:>7.3} {ohr:>7.3}");
        csv.push(format!("{name},{bhr:.6},{ohr:.6}"));
    }
    ctx.write_csv("fig6_bhr.csv", "policy,bhr,ohr", &csv)?;

    // Shape checks.
    let get = |n: &str| {
        rows.iter()
            .find(|(p, _, _)| p == n)
            .map(|(_, b, _)| *b)
            .unwrap()
    };
    let lfo = get("LFO").max(get("LFO-tuned"));
    let opt_bhr = get("OPT");
    let best_heuristic = rows
        .iter()
        .filter(|(p, _, _)| p != "LFO" && p != "LFO-tuned" && p != "OPT")
        .map(|(_, b, _)| *b)
        .fold(0.0f64, f64::max);
    println!(
        "  shape: LFO {} the best heuristic ({:.3} vs {:.3}); LFO/OPT = {:.2}",
        if lfo > best_heuristic {
            "beats"
        } else {
            "DOES NOT beat"
        },
        lfo,
        best_heuristic,
        lfo / opt_bhr
    );
    Ok(())
}
