//! One module per paper artifact; see DESIGN.md §4 for the index.

pub mod acc;
pub mod adversarial;
pub mod common;
pub mod concurrency;
pub mod design;
pub mod faults;
pub mod fig1;
pub mod fig4;
pub mod fig5a;
pub mod fig5b;
pub mod fig5c;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod hyper;
pub mod memory;
pub mod pops;
pub mod prune;
pub mod restart;
pub mod retrain;
pub mod serve;
pub mod staged;
pub mod thin;
pub mod tiers;

use crate::harness::Context;

/// All experiment names, in the order `repro all` runs them.
pub const ALL: [&str; 24] = [
    "fig1",
    "fig4",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig6",
    "fig7",
    "fig8",
    "acc",
    "hyper",
    "prune",
    "design",
    "thin",
    "tiers",
    "staged",
    "faults",
    "serve",
    "restart",
    "retrain",
    "adversarial",
    "memory",
    "concurrency",
    "pops",
    "summary",
];

/// Runs one experiment by name. Unknown names return `false`.
pub fn run(name: &str, ctx: &Context) -> std::io::Result<bool> {
    match name {
        "fig1" => fig1::run(ctx)?,
        "fig4" => fig4::run(ctx)?,
        "fig5a" => fig5a::run(ctx)?,
        "fig5b" => fig5b::run(ctx)?,
        "fig5c" => fig5c::run(ctx)?,
        "fig6" => fig6::run(ctx)?,
        "fig7" => fig7::run(ctx)?,
        "fig8" => fig8::run(ctx)?,
        "acc" => acc::run(ctx)?,
        "hyper" => hyper::run(ctx)?,
        "prune" => prune::run(ctx)?,
        "design" => design::run(ctx)?,
        "thin" => thin::run(ctx)?,
        "tiers" => tiers::run(ctx)?,
        "staged" => staged::run(ctx)?,
        "faults" => faults::run(ctx)?,
        "serve" => serve::run(ctx)?,
        "restart" => restart::run(ctx)?,
        "retrain" => retrain::run(ctx)?,
        "adversarial" => adversarial::run(ctx)?,
        "memory" => memory::run(ctx)?,
        "concurrency" => concurrency::run(ctx)?,
        "pops" => pops::run(ctx)?,
        "summary" => summary(ctx)?,
        _ => return Ok(false),
    }
    Ok(true)
}

/// Prints where the results live.
fn summary(ctx: &Context) -> std::io::Result<()> {
    println!("\nresults written to {}", ctx.out_dir.display());
    Ok(())
}
