//! §5 "policy design" ablation: the same trained ranking deployed through
//! three different ranking→policy translations.
//!
//! The paper's closing argument: "to bridge the gap to OPT we should focus
//! our efforts on how to translate a ranking of objects into a caching
//! policy". This experiment quantifies how much the translation matters by
//! holding the learner fixed and varying only the policy:
//!
//! - `Paper` — §2.4 verbatim,
//! - `ProtectedAdmission` — marginal newcomers cannot displace stronger
//!   residents (attacks the "knock-on effect" directly),
//! - `DensityRanked` — evict by likelihood × cost/byte,
//!
//! plus the cutoff-equalization variant of each (§3's 0.65 observation).

use cdn_cache::{simulate, SimConfig};
use lfo::pipeline::{run_pipeline, PipelineConfig};
use lfo::{CutoffMode, PolicyDesign};
use opt::{compute_opt_segmented, OptConfig};

use crate::harness::Context;

/// Runs the policy-design ablation.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(108);
    let cache_size = ctx.standard_cache_size(&trace);
    let window = ctx.window();

    println!("\n== §5 ablation: ranking → policy translations ==");
    println!("  {:<34} {:>7} {:>7}", "design", "BHR", "OHR");

    let mut csv = Vec::new();
    let mut results = Vec::new();
    let variants: Vec<(&str, PolicyDesign, CutoffMode)> = vec![
        ("paper (§2.4)", PolicyDesign::Paper, CutoffMode::Fixed(0.5)),
        (
            "paper + equalized cutoff",
            PolicyDesign::Paper,
            CutoffMode::EqualizeErrorRates,
        ),
        (
            "protected admission",
            PolicyDesign::ProtectedAdmission,
            CutoffMode::Fixed(0.5),
        ),
        (
            "protected + equalized cutoff",
            PolicyDesign::ProtectedAdmission,
            CutoffMode::EqualizeErrorRates,
        ),
        (
            "density ranked",
            PolicyDesign::DensityRanked,
            CutoffMode::Fixed(0.5),
        ),
    ];
    for (label, design, cutoff_mode) in variants {
        let mut config = PipelineConfig {
            window,
            cache_size,
            ..Default::default()
        };
        config.lfo.design = design;
        config.lfo.cutoff_mode = cutoff_mode;
        let report = run_pipeline(trace.requests(), &config).expect("pipeline");
        let bhr = report.live_trained.bhr();
        let ohr = report.live_trained.ohr();
        println!("  {label:<34} {bhr:>7.3} {ohr:>7.3}");
        csv.push(format!("{label},{bhr:.6},{ohr:.6}"));
        results.push((label, bhr));
    }

    // The OPT reference over the same measured region.
    let opt = compute_opt_segmented(trace.requests(), &OptConfig::bhr(cache_size), window * 2)
        .expect("OPT");
    let mut replay = cdn_cache::policies::opt_replay::OptReplay::new(cache_size, opt.admit.clone());
    let opt_sim = simulate(
        &mut replay,
        trace.requests(),
        &SimConfig {
            warmup: window,
            interval: 0,
        },
    );
    println!(
        "  {:<34} {:>7.3} {:>7.3}",
        "OPT",
        opt_sim.bhr(),
        opt_sim.ohr()
    );
    csv.push(format!("OPT,{:.6},{:.6}", opt_sim.bhr(), opt_sim.ohr()));
    ctx.write_csv("design_ablation.csv", "design,bhr,ohr", &csv)?;

    let paper = results[0].1;
    let best = results.iter().map(|(_, b)| *b).fold(0.0f64, f64::max);
    println!(
        "  shape: best translation closes {:.0}% of the remaining gap to OPT",
        if opt_sim.bhr() > paper {
            (best - paper) / (opt_sim.bhr() - paper) * 100.0
        } else {
            0.0
        }
    );
    Ok(())
}
