//! §3 (Figure 8 discussion) ablation: thinning the gap feature space.
//!
//! "First, we can speed up the model by artificially thinning out the time
//! gap feature space (e.g., only using time gaps 1, 2, 4, 8, 16, etc.).
//! Second, as high time gaps are still being used, keeping track of an even
//! larger history might allow us to further improve LFO's accuracy."
//!
//! Compares the dense 50-gap layout, the exponential thinning, a shallow
//! dense layout, and a deeper thinned history on accuracy, training time
//! and prediction latency.

use std::time::Instant;

use lfo::pipeline::{run_pipeline, PipelineConfig};
use lfo::LfoConfig;

use crate::harness::Context;

/// Runs the gap-thinning ablation.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(109);
    let cache_size = ctx.standard_cache_size(&trace);
    let window = ctx.window();

    println!("\n== §3 ablation: gap-feature thinning ==");
    println!(
        "  {:<26} {:>9} {:>10} {:>9}",
        "layout", "features", "pred.acc%", "time(s)"
    );

    let variants: Vec<(&str, LfoConfig)> = vec![
        ("dense 1..50 (paper)", LfoConfig::default()),
        ("thinned 1,2,4,...,50", LfoConfig::thinned()),
        (
            "dense 1..8 (shallow)",
            LfoConfig {
                num_gaps: 8,
                ..Default::default()
            },
        ),
        (
            "thinned deep (to 128)",
            LfoConfig {
                gap_schedule: Some(vec![1, 2, 4, 8, 16, 32, 64, 128]),
                ..Default::default()
            },
        ),
    ];

    let mut csv = Vec::new();
    for (label, lfo) in variants {
        let features = lfo.num_features();
        let config = PipelineConfig {
            window,
            cache_size,
            lfo,
            ..Default::default()
        };
        let start = Instant::now();
        let report = run_pipeline(trace.requests(), &config).expect("pipeline");
        let secs = start.elapsed().as_secs_f64();
        let acc = report.mean_prediction_accuracy().unwrap_or(0.0) * 100.0;
        println!("  {label:<26} {features:>9} {acc:>10.2} {secs:>9.1}");
        csv.push(format!("{label},{features},{acc:.4},{secs:.2}"));
    }
    ctx.write_csv(
        "thin_ablation.csv",
        "layout,num_features,prediction_accuracy_pct,pipeline_seconds",
        &csv,
    )?;
    println!("  shape: thinning should roughly match dense accuracy with ~5x fewer gap features");
    Ok(())
}
