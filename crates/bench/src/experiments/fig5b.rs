//! Figure 5b: prediction error vs training-set size.
//!
//! Paper shape: "The error is below 6.5% even for a few thousand training
//! samples (10K), and decreases slightly until 100K. As we further increase
//! the training set, prediction accuracy becomes more predictable" — i.e.
//! a shallow decay that flattens around tens of thousands of samples, with
//! shrinking variance across trace subsets.

use cdn_trace::{GeneratorConfig, TraceGenerator};
use gbdt::GbdtParams;

use crate::experiments::common::train_and_eval;
use crate::harness::Context;

/// Runs the training-set-size sweep.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let sizes: &[usize] = match ctx.scale {
        crate::Scale::Smoke => &[1_000, 3_000],
        crate::Scale::Quick => &[1_000, 3_000, 10_000, 30_000],
        crate::Scale::Full => &[1_000, 3_000, 10_000, 30_000, 100_000, 300_000],
    };
    let subsets = ctx.scale.pick(4, 10);
    let eval_len = ctx.scale.pick(10_000, 30_000);

    println!("\n== Figure 5b: prediction error vs training samples ==");
    println!("  samples  mean err%  min..max over {subsets} subsets");
    let mut rows = Vec::new();
    let mut means = Vec::new();
    for &w in sizes {
        let mut errors = Vec::new();
        for subset in 0..subsets {
            // Each subset is a different region of a longer trace.
            let n = (w + eval_len) as u64;
            let trace =
                TraceGenerator::new(GeneratorConfig::production(500 + subset as u64, n)).generate();
            let cache_size = ctx.standard_cache_size(&trace);
            let reqs = trace.requests();
            let te = train_and_eval(&reqs[..w], &reqs[w..], cache_size, &GbdtParams::lfo_paper());
            let err = te.error(0.5) * 100.0;
            rows.push(format!("{w},{subset},{err:.4}"));
            errors.push(err);
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let min = errors.iter().cloned().fold(f64::MAX, f64::min);
        let max = errors.iter().cloned().fold(f64::MIN, f64::max);
        println!("  {w:>7}  {mean:>8.2}  {min:.2}..{max:.2}");
        means.push(mean);
    }
    ctx.write_csv(
        "fig5b_samples.csv",
        "training_samples,subset,error_pct",
        &rows,
    )?;

    println!(
        "  shape: error {} from smallest to largest training set ({:.2}% -> {:.2}%)",
        if means.last() < means.first() {
            "decays"
        } else {
            "DOES NOT decay"
        },
        means.first().unwrap(),
        means.last().unwrap()
    );
    Ok(())
}
