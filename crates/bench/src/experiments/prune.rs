//! §2.1 rank pruning: "This ranking enables us to save 90% of the
//! calculation time by running the algorithm only for popular requests."
//!
//! Measures the exact flow solve vs the rank-pruned solve (keep the top
//! 10% of request pairs) on the same window: wall-clock time, instance
//! size, and decision agreement.

use std::time::Instant;

use opt::{compute_opt, compute_opt_pruned, OptConfig};

use crate::harness::Context;

/// Runs the pruning speed/accuracy measurement.
pub fn run(ctx: &Context) -> std::io::Result<()> {
    let trace = ctx.standard_trace(107);
    let cache_size = ctx.standard_cache_size(&trace);
    let w = ctx.window();
    let window = &trace.requests()[..w];
    let opt_config = OptConfig::bhr(cache_size);

    println!("\n== §2.1: rank pruning of the OPT computation ==");
    let start = Instant::now();
    let exact = compute_opt(window, &opt_config).expect("exact OPT");
    let exact_time = start.elapsed();

    let mut csv = Vec::new();
    println!("  keep   time(ms)  speedup  agreement  hit-bytes ratio  kept-req%");
    println!(
        "  exact  {:>8.0}     1.00x     1.0000          1.0000      100.0",
        exact_time.as_secs_f64() * 1e3
    );
    csv.push(format!(
        "1.0,{:.1},1.0,1.0,1.0,100.0",
        exact_time.as_secs_f64() * 1e3
    ));
    for keep in [0.5, 0.25, 0.1, 0.05] {
        let start = Instant::now();
        let pruned = compute_opt_pruned(window, &opt_config, keep).expect("pruned OPT");
        let t = start.elapsed();
        let agreement = exact
            .admit
            .iter()
            .zip(&pruned.result.admit)
            .filter(|(a, b)| a == b)
            .count() as f64
            / exact.admit.len() as f64;
        let hit_ratio = if exact.hit_bytes > 0 {
            pruned.result.hit_bytes as f64 / exact.hit_bytes as f64
        } else {
            1.0
        };
        let speedup = exact_time.as_secs_f64() / t.as_secs_f64().max(1e-9);
        println!(
            "  {:>5.2}  {:>8.0}  {:>6.2}x    {:>7.4}         {:>7.4}      {:>5.1}",
            keep,
            t.as_secs_f64() * 1e3,
            speedup,
            agreement,
            hit_ratio,
            pruned.kept_fraction() * 100.0
        );
        csv.push(format!(
            "{keep},{:.1},{speedup:.3},{agreement:.5},{hit_ratio:.5},{:.2}",
            t.as_secs_f64() * 1e3,
            pruned.kept_fraction() * 100.0
        ));
    }
    ctx.write_csv(
        "prune_speedup.csv",
        "keep_fraction,time_ms,speedup,decision_agreement,hit_bytes_ratio,kept_requests_pct",
        &csv,
    )?;
    println!("  shape: keep=0.1 should approach the paper's ~90% time saving at high agreement");
    Ok(())
}
