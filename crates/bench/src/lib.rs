//! # bench — figure-regeneration harness
//!
//! One module per table/figure of the paper (see DESIGN.md §4 for the
//! experiment index). The `repro` binary runs them and writes a CSV per
//! figure into `results/`, printing the same rows/series the paper reports.
//!
//! We match the *shape* of the paper's results (who wins, by roughly what
//! factor, where the curves bend), not absolute numbers: the substrate is
//! a synthetic trace and a from-scratch GBDT, not the authors' production
//! trace and testbed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod perf;

pub use harness::{Context, Scale};
