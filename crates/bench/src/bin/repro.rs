//! `repro` — regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run -p bench --bin repro --release -- all            # quick scale
//! cargo run -p bench --bin repro --release -- --full all     # full scale
//! cargo run -p bench --bin repro --release -- fig6 fig8      # a subset
//! ```
//!
//! CSVs land in `results/` (override with `--out DIR`).

use bench::experiments;
use bench::{Context, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--smoke | --quick | --full] [--out DIR] (all | {} ...)",
        experiments::ALL.join(" | ")
    );
    std::process::exit(2);
}

fn main() -> std::io::Result<()> {
    let mut scale = Scale::Quick;
    let mut out_dir = String::from("results");
    let mut names: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--smoke" => scale = Scale::Smoke,
            "--out" => out_dir = args.next().unwrap_or_else(|| usage()),
            "-h" | "--help" => usage(),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        usage();
    }
    if names.iter().any(|n| n == "all") {
        names = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    let ctx = Context::new(&out_dir, scale)?;
    println!(
        "repro: scale = {:?}, output = {}",
        ctx.scale,
        ctx.out_dir.display()
    );
    let started = std::time::Instant::now();
    for name in &names {
        let t = std::time::Instant::now();
        if !experiments::run(name, &ctx)? {
            eprintln!("unknown experiment: {name}");
            usage();
        }
        println!("  [{name} took {:.1}s]", t.elapsed().as_secs_f64());
    }
    println!("\nall done in {:.1}s", started.elapsed().as_secs_f64());
    Ok(())
}
