//! Property tests for the memory-bounded serving state (DESIGN.md §14).
//!
//! The bounded forms are opt-in approximations of the exact serving path,
//! and each carries an equivalence contract at its degenerate setting:
//!
//! - **sample-K eviction with `k = usize::MAX`** scores every resident,
//!   which must reproduce the exact ordered queue's victim choice — so
//!   replaying any trace through both produces identical outcomes,
//!   occupancy, and resident sets;
//! - **an oversized tracker budget** (ring larger than the catalog,
//!   collision-free sketch) must emit bit-identical feature rows to the
//!   unbounded exact tracker for every request, across arbitrary sketch
//!   seeds;
//! - **sampled eviction at any K** never violates the byte capacity.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use cdn_cache::cache::CachePolicy;
use cdn_trace::{CostModel, ObjectId, Request};
use gbdt::Model;
use lfo::{EvictionStrategy, FeatureTracker, LfoCache, LfoConfig, SharedDoorkeeper, TrackerBudget};
use proptest::prelude::*;

/// The repo's standard 64-bit mixer — local copy, same constants as
/// `lfo::features`, used to predict sketch buckets for collision
/// filtering.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A model over the default 53-feature layout that prefers small objects
/// (same recipe as the policy unit tests and `guardrail_runtime.rs`).
fn small_object_model() -> Arc<Model> {
    static MODEL: OnceLock<Arc<Model>> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let cfg = LfoConfig::default();
            let rows: Vec<Vec<f32>> = (0..400)
                .map(|i| {
                    let size = (i % 40) as f32 * 25.0 + 1.0;
                    let mut row = vec![size, size, 1000.0];
                    row.extend(std::iter::repeat_n(100.0, cfg.num_gaps));
                    row
                })
                .collect();
            let labels: Vec<f32> = rows.iter().map(|r| (r[0] < 500.0) as u8 as f32).collect();
            let data = gbdt::Dataset::from_rows(rows, labels).unwrap();
            Arc::new(gbdt::train(&data, &cfg.gbdt))
        })
        .clone()
}

/// Arbitrary small traces: ids reused enough to exercise hits, per-object
/// sizes stable (first size seen wins), times strictly increasing.
fn arb_trace() -> impl Strategy<Value = Vec<Request>> {
    proptest::collection::vec((1u64..=40, 1u64..200), 1..300).prop_map(|spec| {
        let mut canonical: HashMap<u64, u64> = HashMap::new();
        spec.into_iter()
            .enumerate()
            .map(|(i, (id, size))| {
                let s = *canonical.entry(id).or_insert(size);
                Request::new(i as u64, id, s)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_sampling_is_decision_identical_to_the_exact_queue(
        reqs in arb_trace(),
        cache in 50u64..2_000,
        with_model in (0u8..2).prop_map(|b| b == 1),
    ) {
        let sampled_config = LfoConfig {
            eviction: Some(EvictionStrategy::sample(usize::MAX)),
            ..LfoConfig::default()
        };
        let mut exact = LfoCache::new(cache, LfoConfig::default());
        let mut sampled = LfoCache::new(cache, sampled_config);
        if with_model {
            // Modeled priorities exercise the scored victim choice; the
            // model-less path covers the LRU fallback ordering.
            exact.install_model(small_object_model());
            sampled.install_model(small_object_model());
        }
        for r in &reqs {
            prop_assert_eq!(exact.handle(r), sampled.handle(r));
        }
        prop_assert_eq!(exact.used(), sampled.used());
        prop_assert_eq!(exact.len(), sampled.len());
        prop_assert_eq!(exact.evictions, sampled.evictions);
        for id in 1u64..=40 {
            prop_assert_eq!(exact.contains(ObjectId(id)), sampled.contains(ObjectId(id)));
        }
    }

    #[test]
    fn oversized_budget_matches_the_exact_tracker_bit_for_bit(
        reqs in arb_trace(),
        seed in 0u64..u64::MAX,
    ) {
        let budget = TrackerBudget {
            max_objects: 4_096, // far above the 40-object catalog
            sketch_bits: 20,
            seed,
        };
        // Bit-identity requires collision-free sketch buckets: a shared
        // slot deliberately promotes early and coarsens gap_1, which is
        // bounded-tracker behavior, not a bug. With 2^20 slots and ≤40
        // ids a collision is a ~0.1% seed, skipped here.
        let slots = 1usize << budget.sketch_bits;
        let mut buckets = HashSet::new();
        let distinct: HashSet<u64> = reqs.iter().map(|r| r.object.0).collect();
        if distinct
            .iter()
            .any(|id| !buckets.insert(splitmix64(budget.seed ^ id) as usize & (slots - 1)))
        {
            return;
        }
        let mut exact = FeatureTracker::new(8, CostModel::ByteHitRatio);
        let mut bounded =
            FeatureTracker::with_budget((1..=8).collect(), CostModel::ByteHitRatio, budget);
        for r in &reqs {
            prop_assert_eq!(exact.features(r, 123), bounded.features(r, 123));
            exact.record(r);
            bounded.record(r);
        }
        prop_assert_eq!(exact.approximate_bytes() > 0, true);
    }

    #[test]
    fn one_shard_shared_sketch_is_decision_identical_to_a_private_budget(
        reqs in arb_trace(),
        seed in 0u64..u64::MAX,
        max_objects in 1usize..64,
        sketch_bits in 4u32..12,
        cache in 50u64..2_000,
        with_model in (0u8..2).prop_map(|b| b == 1),
    ) {
        // A 1-stripe fleet pool replicates the private doorkeeper protocol
        // exactly — same bucket hash, same CAS-free slot semantics, same
        // GCLOCK sweep — so a single cache borrowing the pool must make
        // identical decisions to one owning a private `TrackerBudget`.
        // Collisions are *included* here (tiny sketches are in range):
        // both sides hash with the same seed, so they collide identically.
        let budget = TrackerBudget { max_objects, sketch_bits, seed };
        let config = LfoConfig {
            tracker_budget: Some(budget),
            ..LfoConfig::default()
        };
        let mut private = LfoCache::new(cache, config.clone());
        let mut pooled = LfoCache::new(cache, config);
        pooled.join_sketch_pool(Arc::new(SharedDoorkeeper::new(budget, 1)), 0);
        if with_model {
            private.install_model(small_object_model());
            pooled.install_model(small_object_model());
        }
        for r in &reqs {
            prop_assert_eq!(private.handle(r), pooled.handle(r));
        }
        prop_assert_eq!(private.used(), pooled.used());
        prop_assert_eq!(private.len(), pooled.len());
        prop_assert_eq!(private.evictions, pooled.evictions);
        for id in 1u64..=40 {
            prop_assert_eq!(private.contains(ObjectId(id)), pooled.contains(ObjectId(id)));
        }
    }

    #[test]
    fn sampled_eviction_respects_capacity_at_every_step(
        reqs in arb_trace(),
        cache in 50u64..2_000,
        k in 1usize..8,
    ) {
        let config = LfoConfig {
            eviction: Some(EvictionStrategy::sample(k)),
            ..LfoConfig::default()
        };
        let mut sampled = LfoCache::new(cache, config);
        sampled.install_model(small_object_model());
        for r in &reqs {
            sampled.handle(r);
            prop_assert!(
                sampled.used() <= cache,
                "used {} exceeds capacity {} after object {}",
                sampled.used(),
                cache,
                r.object.0
            );
        }
    }
}
