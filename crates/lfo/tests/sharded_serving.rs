//! Integration tests for the sharded serving layer (`lfo::shard`):
//! deterministic routing, 1-shard bit-identity with a bare `LfoCache`,
//! exact metric aggregation, and atomic model rollout across shards.

use std::sync::Arc;

use cdn_cache::cache::CachePolicy;
use cdn_trace::{GeneratorConfig, Request, Trace, TraceGenerator, TraceStats};
use gbdt::Model;
use lfo::shard::{shard_of, CacheMetrics, ShardMode, ShardParams, ShardedLfoCache};
use lfo::{LfoCache, LfoConfig, ModelSlot};

fn test_trace(seed: u64, n: u64) -> Trace {
    TraceGenerator::new(GeneratorConfig::small(seed, n)).generate()
}

/// A model over the default 53-feature layout that prefers small objects
/// (same recipe as the policy unit tests).
fn small_object_model() -> Arc<Model> {
    let cfg = LfoConfig::default();
    let rows: Vec<Vec<f32>> = (0..400)
        .map(|i| {
            let size = (i % 40) as f32 * 25.0 + 1.0;
            let mut row = vec![size, size, 1000.0];
            row.extend(std::iter::repeat_n(100.0, cfg.num_gaps));
            row
        })
        .collect();
    let labels: Vec<f32> = rows.iter().map(|r| (r[0] < 500.0) as u8 as f32).collect();
    let data = gbdt::Dataset::from_rows(rows, labels).unwrap();
    Arc::new(gbdt::train(&data, &cfg.gbdt))
}

/// Replays a trace through a bare `LfoCache`, producing the same counters
/// a 1-shard `ShardedLfoCache` reports.
fn replay_bare(requests: &[Request], capacity: u64, model: Option<Arc<Model>>) -> CacheMetrics {
    let mut cache = LfoCache::new(capacity, LfoConfig::default());
    if let Some(m) = model {
        cache.install_model(m);
    }
    let mut metrics = CacheMetrics::default();
    for request in requests {
        let outcome = cache.handle(request);
        metrics.record(request.size, outcome);
    }
    metrics.evictions = cache.evictions;
    metrics.used_bytes = cache.used();
    metrics.resident_objects = cache.len() as u64;
    metrics
}

fn replay_sharded(
    requests: &[Request],
    capacity: u64,
    shards: usize,
    model: Option<Arc<Model>>,
    mode: ShardMode,
) -> lfo::ShardReport {
    let slot = ModelSlot::new();
    if let Some(m) = model {
        slot.publish(m, 0.5);
    }
    let params = ShardParams {
        mode,
        ..ShardParams::with_shards(shards)
    };
    let mut sharded = ShardedLfoCache::with_params(capacity, LfoConfig::default(), params, slot);
    for request in requests {
        sharded.handle(request);
    }
    sharded.finish()
}

#[test]
fn one_shard_is_bit_identical_to_a_bare_lfo_cache() {
    let trace = test_trace(11, 6_000);
    let capacity = TraceStats::from_trace(&trace).cache_size_for_fraction(0.1);
    // Both with a model (LFO scoring) and without (LRU fallback), in both
    // capacity modes (with one shard the pool IS the local accounting, and
    // the partition gets all the bytes): every counter — hits, admissions,
    // evictions, resident bytes — must match.
    for model in [None, Some(small_object_model())] {
        let bare = replay_bare(trace.requests(), capacity, model.clone());
        for mode in [ShardMode::Pooled, ShardMode::Partitioned] {
            let report = replay_sharded(trace.requests(), capacity, 1, model.clone(), mode);
            assert_eq!(report.shards.len(), 1);
            assert_eq!(
                report.total(),
                bare,
                "model = {}, mode = {mode:?}",
                model.is_some()
            );
            assert_eq!(report.total().bhr().to_bits(), bare.bhr().to_bits());
        }
    }
}

#[test]
fn routing_is_deterministic_across_instances_and_runs() {
    let sharded_a = ShardedLfoCache::new(10_000, LfoConfig::default(), 4);
    let sharded_b = ShardedLfoCache::new(99_999, LfoConfig::default(), 4);
    for id in 0..1_000u64 {
        let object = cdn_trace::ObjectId(id);
        assert_eq!(sharded_a.shard_of(object), sharded_b.shard_of(object));
        assert_eq!(sharded_a.shard_of(object), shard_of(object, 4));
    }
    drop(sharded_a.finish());
    drop(sharded_b.finish());
}

#[test]
fn partitioned_replays_are_deterministic_across_runs() {
    // In Partitioned mode thread scheduling must not leak into metrics:
    // per-shard request order is trace order and every feature is derived
    // from shard-local state, so two runs agree exactly.
    let trace = test_trace(12, 4_000);
    let capacity = TraceStats::from_trace(&trace).cache_size_for_fraction(0.1);
    let model = small_object_model();
    let mode = ShardMode::Partitioned;
    let a = replay_sharded(trace.requests(), capacity, 4, Some(model.clone()), mode);
    let b = replay_sharded(trace.requests(), capacity, 4, Some(model), mode);
    assert_eq!(a.total(), b.total());
    for (sa, sb) in a.shards.iter().zip(&b.shards) {
        assert_eq!(sa.metrics, sb.metrics, "shard {}", sa.shard);
    }
}

#[test]
fn aggregate_metrics_are_exactly_the_per_shard_sum() {
    let trace = test_trace(13, 5_000);
    let capacity = TraceStats::from_trace(&trace).cache_size_for_fraction(0.1);
    let report = replay_sharded(
        trace.requests(),
        capacity,
        4,
        Some(small_object_model()),
        ShardMode::Pooled,
    );
    let mut manual = CacheMetrics::default();
    for s in &report.shards {
        manual.add(&s.metrics);
    }
    let total = report.total();
    assert_eq!(total, manual);
    assert_eq!(total.requests, trace.requests().len() as u64);
    assert_eq!(
        total.hits + total.admitted_misses + total.bypassed_misses,
        total.requests
    );
    // Every request landed on the shard its object id hashes to.
    for s in &report.shards {
        assert!(s.metrics.requests > 0, "shard {} starved", s.shard);
    }
}

#[test]
fn rollout_through_the_shared_slot_reaches_every_shard() {
    // The staged pipeline's deployer publishes through a clone of the
    // ModelSlot; every shard must converge on the same version.
    let slot = ModelSlot::new();
    let mut sharded = ShardedLfoCache::with_params(
        1 << 20,
        LfoConfig::default(),
        ShardParams {
            batch_size: 8,
            queue_depth: 2,
            ..ShardParams::with_shards(4)
        },
        slot.clone(),
    );
    // Pre-rollout traffic: shards serve on LRU fallback at version 0.
    for i in 0..200u64 {
        sharded.handle(&Request::new(i, i, 100));
    }
    sharded.flush();
    // The deployer publishes (model + cutoff as one rollout event)...
    slot.publish(small_object_model(), 0.5);
    let published = slot.version();
    // ...and the next request on each shard picks it up.
    for i in 200..400u64 {
        sharded.handle(&Request::new(i, i, 100));
    }
    let report = sharded.finish();
    assert_eq!(
        report.uniform_model_version(),
        Some(published),
        "per-shard versions: {:?}",
        report
            .shards
            .iter()
            .map(|s| s.model_version)
            .collect::<Vec<_>>()
    );
}

#[test]
fn sharded_bhr_tracks_the_unsharded_reference() {
    // In pooled mode each shard still has its own eviction frontier, but
    // the byte budget and the admission signal match the unsharded cache —
    // the aggregate BHR must stay close.
    let trace = test_trace(14, 12_000);
    let capacity = TraceStats::from_trace(&trace).cache_size_for_fraction(0.1);
    let model = small_object_model();
    let bare = replay_bare(trace.requests(), capacity, Some(model.clone()));
    for shards in [2usize, 4] {
        let report = replay_sharded(
            trace.requests(),
            capacity,
            shards,
            Some(model.clone()),
            ShardMode::Pooled,
        );
        let delta = (report.total().bhr() - bare.bhr()).abs();
        assert!(
            delta < 0.05,
            "{shards} shards: BHR {:.4} vs unsharded {:.4}",
            report.total().bhr(),
            bare.bhr()
        );
    }
}
