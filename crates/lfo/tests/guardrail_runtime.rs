//! Integration tests for the runtime guardrail (`lfo::guardrail`,
//! DESIGN.md §13): observe-only bit-identity with an unguarded cache,
//! 1-shard/unsharded equivalence with the guardrail enforcing, and a
//! property test that the hysteresis never flaps on a steady trace.

use std::sync::Arc;

use cdn_cache::cache::{CachePolicy, RequestOutcome};
use cdn_trace::{GeneratorConfig, Request, Trace, TraceGenerator, TraceStats};
use gbdt::Model;
use lfo::shard::{CacheMetrics, ShardMode, ShardParams, ShardedLfoCache};
use lfo::{GuardrailConfig, GuardrailMode, LfoCache, LfoConfig, ModelSlot};
use proptest::prelude::*;

fn test_trace(seed: u64, n: u64) -> Trace {
    TraceGenerator::new(GeneratorConfig::small(seed, n)).generate()
}

/// A model over the default 53-feature layout that prefers small objects
/// (same recipe as the policy unit tests and `sharded_serving.rs`).
fn small_object_model() -> Arc<Model> {
    let cfg = LfoConfig::default();
    let rows: Vec<Vec<f32>> = (0..400)
        .map(|i| {
            let size = (i % 40) as f32 * 25.0 + 1.0;
            let mut row = vec![size, size, 1000.0];
            row.extend(std::iter::repeat_n(100.0, cfg.num_gaps));
            row
        })
        .collect();
    let labels: Vec<f32> = rows.iter().map(|r| (r[0] < 500.0) as u8 as f32).collect();
    let data = gbdt::Dataset::from_rows(rows, labels).unwrap();
    Arc::new(gbdt::train(&data, &cfg.gbdt))
}

/// Replays `requests`, returning every per-request outcome plus the final
/// cache shape — the full observable surface of the serving path.
fn outcomes(
    requests: &[Request],
    capacity: u64,
    model: Option<Arc<Model>>,
    guard: Option<GuardrailConfig>,
) -> (Vec<RequestOutcome>, u64, usize, u64) {
    let mut cache = LfoCache::new(capacity, LfoConfig::default());
    if let Some(m) = model {
        cache.install_model(m);
    }
    if let Some(config) = guard {
        cache.enable_guardrail(config);
    }
    let served = requests.iter().map(|r| cache.handle(r)).collect();
    (served, cache.used(), cache.len(), cache.evictions)
}

#[test]
fn observe_only_guardrail_is_bit_identical_to_no_guardrail() {
    // enforce = false must leave every serving decision untouched: the
    // state machine runs (windows close, shadow BHRs accumulate, trips may
    // even fire) but `forced()` stays false, so admissions, evictions, and
    // hits are byte-for-byte those of an unguarded cache. This is the
    // contract that lets `repro serve` attach an observe-only guardrail
    // without disturbing the engine performance gates.
    let trace = test_trace(41, 8_000);
    let capacity = TraceStats::from_trace(&trace).cache_size_for_fraction(0.1);
    let observe = GuardrailConfig {
        enforce: false,
        window: 256,
        sample_shift: 0,
        ..GuardrailConfig::default()
    };
    for model in [None, Some(small_object_model())] {
        let bare = outcomes(trace.requests(), capacity, model.clone(), None);
        let watched = outcomes(trace.requests(), capacity, model.clone(), Some(observe));
        assert_eq!(bare, watched, "model = {}", model.is_some());
    }

    // And the state machine really did run — forced stays zero even so.
    let mut cache = LfoCache::new(capacity, LfoConfig::default());
    cache.enable_guardrail(observe);
    for request in trace.requests() {
        cache.handle(request);
    }
    let snap = cache.guardrail().expect("guardrail attached");
    assert!(snap.windows_evaluated > 0, "no windows closed");
    assert!(snap.shadow_total_bytes > 0, "shadow stream empty");
    assert_eq!(snap.forced_requests, 0, "observe-only must never force");
}

#[test]
fn one_shard_pooled_guardrail_matches_unsharded() {
    // A 1-shard pooled fleet with `ShardParams::guardrail` must agree
    // counter-for-counter (hits, evictions, trips, forced requests, all
    // three shadow byte counters) with a bare `LfoCache` carrying the same
    // guardrail: with one shard the scoped shadow basis is the whole pool.
    let trace = test_trace(42, 8_000);
    let capacity = TraceStats::from_trace(&trace).cache_size_for_fraction(0.05);
    let guard = GuardrailConfig {
        window: 128,
        sample_shift: 1,
        ..GuardrailConfig::default()
    };
    let model = small_object_model();

    let mut bare = LfoCache::new(capacity, LfoConfig::default());
    bare.install_model(model.clone());
    bare.enable_guardrail(guard);
    let mut reference = CacheMetrics::default();
    for request in trace.requests() {
        reference.record(request.size, bare.handle(request));
    }
    reference.evictions = bare.evictions;
    reference.used_bytes = bare.used();
    reference.resident_objects = bare.len() as u64;
    let snap = bare.guardrail().expect("guardrail attached");
    reference.guardrail_trips = snap.trips;
    reference.guardrail_forced_requests = snap.forced_requests;
    reference.shadow_total_bytes = snap.shadow_total_bytes;
    reference.shadow_lru_hit_bytes = snap.shadow_lru_hit_bytes;
    reference.shadow_realized_hit_bytes = snap.shadow_realized_hit_bytes;

    let slot = ModelSlot::new();
    slot.publish(model, 0.5);
    let params = ShardParams {
        mode: ShardMode::Pooled,
        guardrail: Some(guard),
        ..ShardParams::with_shards(1)
    };
    let mut sharded = ShardedLfoCache::with_params(capacity, LfoConfig::default(), params, slot);
    for request in trace.requests() {
        sharded.handle(request);
    }
    let report = sharded.finish();
    assert_eq!(report.shards.len(), 1);
    assert_eq!(report.total(), reference);
    assert_eq!(
        report.shards[0].guardrail.expect("shard guardrail").mode,
        snap.mode
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hysteresis must not flap on a steady trace: with no model installed
    /// the cache *is* LRU, and with `sample_shift = 0` the ghost LRU sees
    /// the identical stream at identical capacity — realized and shadow
    /// BHRs agree exactly in every window, so no ε/δ/window/hysteresis
    /// setting may ever trip.
    #[test]
    fn guardrail_never_trips_when_serving_equals_lru(
        seed in 0u64..6,
        epsilon in 0.01f64..0.25,
        window in 64u64..512,
        trip_after in 1u32..4,
        recover_after in 1u32..4,
    ) {
        let trace = test_trace(seed, 4_000);
        let capacity = TraceStats::from_trace(&trace).cache_size_for_fraction(0.1);
        let guard = GuardrailConfig {
            epsilon,
            window,
            trip_after,
            recover_after,
            sample_shift: 0,
            ..GuardrailConfig::default()
        };
        let mut cache = LfoCache::new(capacity, LfoConfig::default());
        cache.enable_guardrail(guard);
        for request in trace.requests() {
            cache.handle(request);
        }
        let snap = cache.guardrail().expect("guardrail attached");
        prop_assert!(snap.windows_evaluated > 0);
        prop_assert_eq!(snap.trips, 0);
        prop_assert_eq!(snap.mode, GuardrailMode::Learned);
        prop_assert_eq!(snap.forced_requests, 0);
        // The exactness the property rests on: same stream, same capacity,
        // same policy — the shadow and realized byte counters coincide.
        prop_assert_eq!(snap.shadow_realized_hit_bytes, snap.shadow_lru_hit_bytes);
    }
}

#[test]
fn sampled_guardrail_holds_on_a_steady_trace_at_defaults() {
    // The deterministic companion to the property above at the shipped
    // defaults (1/8 sampling, scaled ghost capacity): the real cache again
    // serves exact LRU (no model), but the shadow baseline is now an
    // eighth-capacity ghost over an eighth of the stream — a statistical
    // estimate, not an identity. The ε/δ slack and two-window hysteresis
    // must absorb that sampling noise without a single trip.
    let trace = test_trace(43, 20_000);
    let capacity = TraceStats::from_trace(&trace).cache_size_for_fraction(0.1);
    let guard = GuardrailConfig {
        window: 256,
        ..GuardrailConfig::default()
    };
    let mut cache = LfoCache::new(capacity, LfoConfig::default());
    cache.enable_guardrail(guard);
    for request in trace.requests() {
        cache.handle(request);
    }
    let snap = cache.guardrail().expect("guardrail attached");
    assert!(snap.windows_evaluated > 0, "no windows closed");
    assert_eq!(snap.trips, 0, "flapped on a steady trace: {snap:?}");
    assert_eq!(snap.mode, GuardrailMode::Learned);
}
