//! Seeded multi-thread stress tests for the fleet-shared doorkeeper
//! (DESIGN.md §16). The CAS slot protocol makes two promises under
//! cross-shard races, and each gets hammered here from eight threads:
//!
//! - **saturated last-access slots never regress** — a slot only ever
//!   advances, so any one thread's sequence of observed priors is
//!   non-decreasing, and the final slot value is the maximum time any
//!   thread wrote;
//! - **promotions are never lost** — every `stripe_promote` parks the
//!   object in a slot of the caller's stripe, every recycled victim was
//!   a live owner the caller knew about, and when the dust settles each
//!   ring slot has exactly one owner fleet-wide.
//!
//! The schedules are seeded (splitmix64 streams per thread), so a
//! failure replays deterministically up to OS interleaving.

use std::collections::HashMap;
use std::thread;

use cdn_trace::ObjectId;
use lfo::sketchpool::EMPTY_SLOT;
use lfo::{SharedDoorkeeper, TrackerBudget};

/// The repo's standard 64-bit mixer — local copy, used only to derive
/// per-thread deterministic schedules.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const THREADS: usize = 8;

#[test]
fn racing_writers_never_regress_a_sketch_slot() {
    // 16 sketch slots under 8 threads: every write races another thread.
    let budget = TrackerBudget {
        max_objects: 64,
        sketch_bits: 4,
        seed: 7,
    };
    const SLOTS: usize = 16;
    const WRITES: u64 = 20_000;
    let pool = SharedDoorkeeper::new(budget, THREADS);
    let mut maxima: Vec<Vec<u32>> = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let pool = &pool;
                s.spawn(move || {
                    let mut rng = splitmix64(t as u64 + 1);
                    let mut last_prior = [EMPTY_SLOT; SLOTS];
                    let mut written = vec![0u32; SLOTS];
                    for i in 0..WRITES {
                        rng = splitmix64(rng ^ i);
                        let bucket = rng as usize % SLOTS;
                        let time = (rng >> 8) % 1_000_000;
                        let prior = pool.update_slot(bucket, time);
                        // Slots only advance, and one thread's calls are
                        // sequential: once it has seen a real time in a
                        // bucket, every later prior there is >= it (and
                        // never the empty sentinel again).
                        if last_prior[bucket] != EMPTY_SLOT {
                            assert_ne!(prior, EMPTY_SLOT, "slot went back to empty");
                            assert!(
                                prior >= last_prior[bucket],
                                "slot regressed: prior {prior} after {}",
                                last_prior[bucket]
                            );
                        }
                        if prior != EMPTY_SLOT {
                            last_prior[bucket] = prior;
                        }
                        written[bucket] = written[bucket].max(time as u32);
                    }
                    written
                })
            })
            .collect();
        for h in handles {
            maxima.push(h.join().unwrap());
        }
    });
    // CAS-max semantics: the surviving value is the largest time any
    // thread attempted, regardless of arrival order.
    for bucket in 0..SLOTS {
        let expected = maxima.iter().map(|w| w[bucket]).max().unwrap();
        assert_eq!(pool.load_slot(bucket), expected, "bucket {bucket}");
    }
}

#[test]
fn concurrent_promotions_are_never_lost_across_stripes() {
    // Eight shards run the full doorkeeper protocol concurrently on one
    // pool: sketch write first, promote on second sighting, reference on
    // hits — each over a disjoint id range, mirroring its exact history
    // the way `FeatureTracker` does.
    let budget = TrackerBudget {
        max_objects: 96,
        sketch_bits: 8,
        seed: 11,
    };
    const STEPS: u64 = 4_000;
    const IDS_PER_THREAD: u64 = 512;
    let pool = SharedDoorkeeper::new(budget, THREADS);
    let mut histories: Vec<HashMap<ObjectId, usize>> = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let pool = &pool;
                s.spawn(move || {
                    let base: usize = (0..t).map(|i| pool.stripe_capacity(i)).sum();
                    let cap = pool.stripe_capacity(t);
                    let mut history: HashMap<ObjectId, usize> = HashMap::new();
                    let mut rng = splitmix64(0xbeef ^ t as u64);
                    let mut promoted = 0u64;
                    let mut evicted = 0u64;
                    for i in 0..STEPS {
                        rng = splitmix64(rng ^ i);
                        let object = ObjectId(((t as u64 + 1) << 32) | (rng % IDS_PER_THREAD));
                        if let Some(&slot) = history.get(&object) {
                            pool.reference(slot); // tracked hit: lock-free
                            continue;
                        }
                        let prior = pool.update_slot(pool.bucket(object), i);
                        if prior == EMPTY_SLOT {
                            continue; // first sighting: sketch only
                        }
                        let res = pool.stripe_promote(t, object, |owner, slot| {
                            history.get(&owner) == Some(&slot)
                        });
                        assert!(
                            res.slot >= base && res.slot < base + cap,
                            "slot {} escaped stripe {t} ({base}..{})",
                            res.slot,
                            base + cap
                        );
                        if let Some(victim) = res.evicted {
                            assert!(
                                history.remove(&victim).is_some(),
                                "recycled {victim:?}, which this stripe never owned"
                            );
                            evicted += 1;
                        }
                        assert!(
                            history.insert(object, res.slot).is_none(),
                            "object promoted while already tracked"
                        );
                        promoted += 1;
                        assert_eq!(history.len() as u64, promoted - evicted, "lost a promotion");
                    }
                    assert_eq!(history.len(), cap, "stripe {t} should end full");
                    history
                })
            })
            .collect();
        for h in handles {
            histories.push(h.join().unwrap());
        }
    });
    // Fleet-wide reconciliation: every ring slot has exactly one owner.
    let mut owners: HashMap<usize, ObjectId> = HashMap::new();
    for (t, history) in histories.iter().enumerate() {
        let base: usize = (0..t).map(|i| pool.stripe_capacity(i)).sum();
        let cap = pool.stripe_capacity(t);
        for (&object, &slot) in history {
            assert!(slot >= base && slot < base + cap);
            assert!(
                owners.insert(slot, object).is_none(),
                "slot {slot} owned by two stripes"
            );
        }
    }
    assert_eq!(owners.len(), budget.max_objects);
    let stats = pool.stats();
    assert!(stats.sketch_updates > 0);
}
