//! Property test for the multi-PoP topology's degenerate contract
//! (DESIGN.md §15).
//!
//! A topology of exactly one edge PoP with a zero-byte regional tier must
//! be **decision-identical** to the underlying single [`LfoCache`]: the
//! zero-byte regional cache can never hit or admit (objects larger than
//! the capacity are never admitted, and every object is larger than zero
//! bytes), so the second tier is provably inert. Replaying any trace
//! through both must produce the same outcome for every request and
//! counter-for-counter equal metrics — the same bit-identity pattern
//! `bounded_state.rs` and `guardrail_runtime.rs` use for their degenerate
//! settings, guaranteeing the new layer adds zero behavior change when
//! unused.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use cdn_cache::cache::CachePolicy;
use cdn_trace::{ObjectId, Request};
use gbdt::Model;
use lfo::pops::{EdgeSpec, PopsTopology, ServedBy};
use lfo::shard::CacheMetrics;
use lfo::{LfoCache, LfoConfig};
use proptest::prelude::*;

/// A model over the default 53-feature layout that prefers small objects
/// (same recipe as the policy unit tests and `bounded_state.rs`).
fn small_object_model() -> Arc<Model> {
    static MODEL: OnceLock<Arc<Model>> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let cfg = LfoConfig::default();
            let rows: Vec<Vec<f32>> = (0..400)
                .map(|i| {
                    let size = (i % 40) as f32 * 25.0 + 1.0;
                    let mut row = vec![size, size, 1000.0];
                    row.extend(std::iter::repeat_n(100.0, cfg.num_gaps));
                    row
                })
                .collect();
            let labels: Vec<f32> = rows.iter().map(|r| (r[0] < 500.0) as u8 as f32).collect();
            let data = gbdt::Dataset::from_rows(rows, labels).unwrap();
            Arc::new(gbdt::train(&data, &cfg.gbdt))
        })
        .clone()
}

/// Arbitrary small traces: ids reused enough to exercise hits, per-object
/// sizes stable (first size seen wins), times strictly increasing.
fn arb_trace() -> impl Strategy<Value = Vec<Request>> {
    proptest::collection::vec((1u64..=40, 1u64..200), 1..300).prop_map(|spec| {
        let mut canonical: HashMap<u64, u64> = HashMap::new();
        spec.into_iter()
            .enumerate()
            .map(|(i, (id, size))| {
                let s = *canonical.entry(id).or_insert(size);
                Request::new(i as u64, id, s)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn one_pop_zero_regional_is_decision_identical_to_a_single_cache(
        reqs in arb_trace(),
        cache in 50u64..2_000,
        with_model in (0u8..2).prop_map(|b| b == 1),
    ) {
        let spec = EdgeSpec {
            capacity: cache,
            config: LfoConfig::default(),
        };
        let mut topology = PopsTopology::new(&[spec], 0, LfoConfig::default());
        let mut single = LfoCache::new(cache, LfoConfig::default());
        let mut single_metrics = CacheMetrics::default();
        if with_model {
            // Modeled priorities exercise the scored admission/eviction
            // path; the model-less run covers the LRU fallback.
            topology.install_edge_model(0, small_object_model());
            single.install_model(small_object_model());
        }

        for r in &reqs {
            let outcome = single.handle(r);
            single_metrics.record(r.size, outcome);
            let served = topology.handle(0, r);
            // Decision identity per request: the topology serves from the
            // edge exactly when the single cache hits, and from the origin
            // otherwise (the zero-byte regional tier never hits).
            let expected = if outcome.is_hit() {
                ServedBy::Edge
            } else {
                ServedBy::Origin
            };
            prop_assert_eq!(served, expected);
        }

        // Counter-for-counter metric identity at shutdown.
        single_metrics.evictions = single.evictions;
        single_metrics.used_bytes = single.used();
        single_metrics.resident_objects = single.len() as u64;
        let report = topology.report();
        prop_assert_eq!(report.per_edge[0], single_metrics);

        // The inert regional tier saw exactly the misses and kept nothing.
        prop_assert_eq!(
            report.regional.requests,
            single_metrics.requests - single_metrics.hits
        );
        prop_assert_eq!(report.regional.hits, 0);
        prop_assert_eq!(report.regional.admitted_misses, 0);
        prop_assert_eq!(report.regional.used_bytes, 0);
        prop_assert_eq!(report.origin_requests, report.regional.requests);

        // Resident sets agree object for object.
        for id in 1u64..=40 {
            prop_assert_eq!(
                topology.edge(0).contains(ObjectId(id)),
                single.contains(ObjectId(id))
            );
        }

        // And the rolled-up ratios match the single cache's.
        prop_assert!((report.origin_offload() - single_metrics.bhr()).abs() < 1e-12);
    }
}
