//! Sharded LFO serving: hash-partitioned caches on worker threads.
//!
//! The single-threaded [`LfoCache`] serializes the whole serving hot path
//! (feature tracking → prediction → admission → eviction) behind one
//! `BTreeSet`/`HashMap`. To scale the paper's Figure 7 claim ("fast enough
//! for 40 Gbit/s serving") to the *end-to-end* path, a
//! [`ShardedLfoCache`] partitions objects across `N` independent
//! [`LfoCache`] shards by a deterministic hash of the object id. Each shard
//! is owned by a dedicated worker thread fed over a bounded std mpsc
//! channel (the same no-external-deps discipline as the staged pipeline),
//! so shards admit, evict, and track features fully in parallel.
//!
//! All shards refresh from **one shared [`ModelSlot`]**: a gated rollout
//! published by the staged pipeline's deployer reaches every shard
//! atomically — each shard picks the new model up on its next request, and
//! the flat serving layout is built once at publish time, not per shard.
//!
//! Because the hash depends only on the object id, every request for an
//! object always lands on the same shard; per-shard metrics are therefore
//! exact, and the aggregate [`CacheMetrics`] is exactly the sum of the
//! per-shard counters. A 1-shard instance is bit-identical to a bare
//! `LfoCache` replaying the same trace (the integration tests assert this).
//!
//! Capacity is managed per the configured [`ShardMode`]: by default the
//! shards partition only the object *index* and draw on one fleet-wide
//! [`SharedOccupancy`] byte pool (memcached-style), which keeps objects
//! larger than `capacity/N` cacheable and keeps the model's free-bytes
//! feedback on the trained trajectory. Each shard still has its own
//! eviction frontier, so decisions can diverge slightly from the unsharded
//! reference — the `repro serve` experiment measures that BHR delta (it is
//! small; DESIGN.md §9 discusses why, and why [`ShardMode::Partitioned`]
//! trades BHR for bit-stable replays).

use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use cdn_trace::{ObjectId, Request};
use serde::{Deserialize, Serialize};

use cdn_cache::cache::{CachePolicy, RequestOutcome};

use crate::config::LfoConfig;
use crate::guardrail::{GuardrailConfig, GuardrailSnapshot};
use crate::policy::{LfoCache, ModelSlot, SharedOccupancy};
use crate::sketchpool::SharedDoorkeeper;

/// Finalizing mixer of splitmix64 (Steele et al.): full-avalanche, so
/// consecutive object ids spread uniformly across shards.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15); // golden-ratio increment
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The shard an object routes to: deterministic, stable across runs and
/// platforms. Uses the multiply-shift range reduction (`(hash × n) >> 64`)
/// instead of a modulo, which avoids bias and a hardware divide.
pub fn shard_of(object: ObjectId, num_shards: usize) -> usize {
    debug_assert!(num_shards > 0);
    ((splitmix64(object.0) as u128 * num_shards as u128) >> 64) as usize
}

/// How the fleet's byte capacity is managed across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardMode {
    /// One fleet-wide byte pool (memcached-style): the object *index* is
    /// partitioned by hash, the memory is not. Any shard may hold any
    /// object up to the full capacity, admission evicts locally until the
    /// pool-wide occupancy fits, and the free-bytes feature is the pool's
    /// free — the signal the model was trained against. This is the
    /// default, and the mode that keeps sharded BHR at the unsharded
    /// reference: hard `capacity/N` budgets make every object larger than
    /// a shard uncacheable, and the model's admission feedback (likelihoods
    /// *rise* as free bytes shrink, because OPT's cache is full for most of
    /// the training window) can latch an underfilled shard empty. The cost
    /// is schedule-exact reproducibility: the pool's value at a given
    /// request depends on how far the other shards have progressed, so two
    /// replays can differ by a few borderline admissions.
    #[default]
    Pooled,
    /// Hard-partitioned: shard `i` owns `capacity/N` bytes outright and
    /// presents its own free bytes scaled by `N` as the feature. Fully
    /// deterministic — per-shard metrics are bit-stable across replays
    /// regardless of thread scheduling — but objects larger than a shard
    /// bypass, and the feature drifts from the global signal as shard
    /// occupancies diverge, which costs BHR on traces where admission
    /// feedback matters.
    Partitioned,
}

/// Tuning knobs for the sharded cache's request plumbing.
#[derive(Clone, Copy, Debug)]
pub struct ShardParams {
    /// Number of cache shards (and worker threads). Must be ≥ 1.
    pub num_shards: usize,
    /// Requests buffered per shard before a batch is sent to its worker;
    /// amortizes channel overhead on the routing thread.
    pub batch_size: usize,
    /// Bounded channel depth in batches; a full queue applies backpressure
    /// to the router instead of growing without bound.
    pub queue_depth: usize,
    /// Capacity management mode (see [`ShardMode`]).
    pub mode: ShardMode,
    /// Runtime learned-vs-LRU guardrail (DESIGN.md §13), attached per
    /// shard and scoped to that shard's slice of capacity and traffic.
    /// `None` (the default) leaves the serving path untouched.
    pub guardrail: Option<GuardrailConfig>,
    /// Share one fleet-wide doorkeeper sketch + striped GCLOCK ring
    /// (DESIGN.md §16) across the shards instead of one private sketch and
    /// ring per shard. Only effective in [`ShardMode::Pooled`] with a
    /// bounded [`TrackerBudget`](crate::TrackerBudget) — unbounded configs
    /// (the default `LfoConfig`) have no doorkeeper to share, so this flag
    /// is inert there and every existing deployment is unchanged.
    pub shared_sketch: bool,
}

impl ShardParams {
    /// Defaults tuned for trace replay: 256-request batches, 4 in flight,
    /// pooled capacity, no guardrail, shared doorkeeper when the config
    /// carries a bounded tracker budget.
    pub fn with_shards(num_shards: usize) -> Self {
        ShardParams {
            num_shards,
            batch_size: 256,
            queue_depth: 4,
            mode: ShardMode::Pooled,
            guardrail: None,
            shared_sketch: true,
        }
    }
}

/// Hit/admission/eviction counters for one shard (or, summed, the whole
/// sharded cache). All fields are exact counts, so the aggregate over
/// shards is exactly the sum of the per-shard values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheMetrics {
    /// Requests handled.
    pub requests: u64,
    /// Full-object hits.
    pub hits: u64,
    /// Bytes requested.
    pub total_bytes: u64,
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Misses the policy admitted.
    pub admitted_misses: u64,
    /// Misses the policy declined to admit.
    pub bypassed_misses: u64,
    /// Objects evicted.
    pub evictions: u64,
    /// Bytes resident at shutdown.
    pub used_bytes: u64,
    /// Objects resident at shutdown.
    pub resident_objects: u64,
    /// Guardrail trips (Learned → LruForced transitions); 0 when no
    /// guardrail is attached.
    pub guardrail_trips: u64,
    /// Requests served while the guardrail was forcing LRU.
    pub guardrail_forced_requests: u64,
    /// Bytes requested on the guardrail's sampled shadow substream.
    pub shadow_total_bytes: u64,
    /// Sampled bytes the shadow (ghost) LRU would have hit.
    pub shadow_lru_hit_bytes: u64,
    /// Sampled bytes the real cache actually hit — realized BHR on the
    /// same basis the shadow LRU is measured on.
    pub shadow_realized_hit_bytes: u64,
    /// Sampled requests whose guardrail ghost inserts were skipped because
    /// the object had not cleared the shared doorkeeper (0 unless the
    /// ghosts borrow a shared sketch pool).
    pub shadow_doorkeeper_skips: u64,
    /// Estimated ghost bookkeeping bytes those skips avoided.
    pub shadow_doorkeeper_saved_bytes: u64,
}

impl CacheMetrics {
    /// Object hit ratio.
    pub fn ohr(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Byte hit ratio.
    pub fn bhr(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.hit_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Records one handled request (also used by harnesses that drive a
    /// bare [`LfoCache`] as the unsharded reference).
    pub fn record(&mut self, size: u64, outcome: RequestOutcome) {
        self.requests += 1;
        self.total_bytes += size;
        match outcome {
            RequestOutcome::Hit => {
                self.hits += 1;
                self.hit_bytes += size;
            }
            RequestOutcome::Miss { admitted: true } => self.admitted_misses += 1,
            RequestOutcome::Miss { admitted: false } => self.bypassed_misses += 1,
        }
    }

    /// Shadow-LRU byte hit ratio on the guardrail's sampled substream
    /// (0 when no guardrail ran).
    pub fn shadow_lru_bhr(&self) -> f64 {
        if self.shadow_total_bytes == 0 {
            0.0
        } else {
            self.shadow_lru_hit_bytes as f64 / self.shadow_total_bytes as f64
        }
    }

    /// Realized byte hit ratio on the same sampled substream — directly
    /// comparable to [`CacheMetrics::shadow_lru_bhr`].
    pub fn shadow_realized_bhr(&self) -> f64 {
        if self.shadow_total_bytes == 0 {
            0.0
        } else {
            self.shadow_realized_hit_bytes as f64 / self.shadow_total_bytes as f64
        }
    }

    /// Adds another shard's counters into this aggregate.
    pub fn add(&mut self, other: &CacheMetrics) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.total_bytes += other.total_bytes;
        self.hit_bytes += other.hit_bytes;
        self.admitted_misses += other.admitted_misses;
        self.bypassed_misses += other.bypassed_misses;
        self.evictions += other.evictions;
        self.used_bytes += other.used_bytes;
        self.resident_objects += other.resident_objects;
        self.guardrail_trips += other.guardrail_trips;
        self.guardrail_forced_requests += other.guardrail_forced_requests;
        self.shadow_total_bytes += other.shadow_total_bytes;
        self.shadow_lru_hit_bytes += other.shadow_lru_hit_bytes;
        self.shadow_realized_hit_bytes += other.shadow_realized_hit_bytes;
        self.shadow_doorkeeper_skips += other.shadow_doorkeeper_skips;
        self.shadow_doorkeeper_saved_bytes += other.shadow_doorkeeper_saved_bytes;
    }
}

/// Final state of one shard, reported at shutdown.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ShardStatus {
    /// Shard index (also the routing bucket).
    pub shard: usize,
    /// Byte capacity this shard was given: the full pool in
    /// [`ShardMode::Pooled`], its `capacity/N` slice in
    /// [`ShardMode::Partitioned`].
    pub capacity: u64,
    /// Slot version the shard last synced (equal across shards exactly when
    /// a rollout has reached all of them).
    pub model_version: u64,
    /// Approximate heap bytes of the shard's feature-tracker history at
    /// shutdown (per-object gap state the model's features come from). In
    /// shared-sketch mode this counts only the shard's histories and its
    /// ring stripe — the fleet sketch is in `shared_sketch_bytes`.
    pub tracker_bytes: u64,
    /// Bytes of the fleet-shared doorkeeper sketch this shard borrows
    /// (equal across shards of one pool; a fleet-wide report counts it
    /// once, like `model_bytes`). 0 with a private or absent doorkeeper.
    pub shared_sketch_bytes: u64,
    /// Approximate heap bytes of the shard's admission/eviction index at
    /// shutdown (hash entry + priority-queue key per resident).
    pub index_bytes: u64,
    /// Approximate heap bytes of the compiled model layouts the shard
    /// serves through. The layouts are `Arc`-shared across shards of one
    /// slot, so a fleet-wide report should count this once, not per shard.
    pub model_bytes: u64,
    /// The shard's exact counters.
    pub metrics: CacheMetrics,
    /// Guardrail state at shutdown, `None` when no guardrail was attached.
    pub guardrail: Option<GuardrailSnapshot>,
}

/// Everything the sharded cache knows when it shuts down.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Per-shard final states, indexed by shard.
    pub shards: Vec<ShardStatus>,
}

impl ShardReport {
    /// Aggregate counters: exactly the sum of the per-shard metrics.
    pub fn total(&self) -> CacheMetrics {
        let mut total = CacheMetrics::default();
        for s in &self.shards {
            total.add(&s.metrics);
        }
        total
    }

    /// The model version on every shard, or `None` if shards disagree
    /// (a rollout that has not reached all of them yet).
    pub fn uniform_model_version(&self) -> Option<u64> {
        let first = self.shards.first()?.model_version;
        self.shards
            .iter()
            .all(|s| s.model_version == first)
            .then_some(first)
    }

    /// Total serving-metadata bytes across the fleet: per-shard tracker and
    /// index bytes summed, plus *one* copy of each `Arc`-shared allocation
    /// — the compiled model layouts and the fleet doorkeeper sketch —
    /// (summing `model_bytes`/`shared_sketch_bytes` over shards would
    /// multiply-count single allocations).
    pub fn metadata_bytes(&self) -> u64 {
        let per_shard: u64 = self
            .shards
            .iter()
            .map(|s| s.tracker_bytes + s.index_bytes)
            .sum();
        let model = self.shards.iter().map(|s| s.model_bytes).max().unwrap_or(0);
        let sketch = self
            .shards
            .iter()
            .map(|s| s.shared_sketch_bytes)
            .max()
            .unwrap_or(0);
        per_shard + model + sketch
    }

    /// Metadata bytes per resident object at shutdown (0 when nothing is
    /// resident) — the cost-of-serving number `repro serve` reports.
    pub fn metadata_bytes_per_object(&self) -> f64 {
        let residents = self.total().resident_objects;
        if residents == 0 {
            0.0
        } else {
            self.metadata_bytes() as f64 / residents as f64
        }
    }

    /// Fleet-wide guardrail mode label: `"off"` when no shard carried a
    /// guardrail, a shard's [`GuardrailMode::label`] when all agree, and
    /// `"mixed"` when shards ended in different modes.
    pub fn guardrail_mode_label(&self) -> &'static str {
        let mut modes = self
            .shards
            .iter()
            .filter_map(|s| s.guardrail)
            .map(|g| g.mode);
        let Some(first) = modes.next() else {
            return "off";
        };
        if modes.all(|m| m == first) {
            first.label()
        } else {
            "mixed"
        }
    }
}

/// One shard's worker: drains request batches, drives its cache, counts.
fn shard_worker(
    shard: usize,
    mut cache: LfoCache,
    rx: std::sync::mpsc::Receiver<Vec<Request>>,
) -> ShardStatus {
    let mut metrics = CacheMetrics::default();
    while let Ok(batch) = rx.recv() {
        for request in &batch {
            let outcome = cache.handle(request);
            metrics.record(request.size, outcome);
        }
    }
    metrics.evictions = cache.evictions;
    metrics.used_bytes = cache.used();
    metrics.resident_objects = cache.len() as u64;
    let guardrail = cache.guardrail();
    if let Some(snap) = &guardrail {
        metrics.guardrail_trips = snap.trips;
        metrics.guardrail_forced_requests = snap.forced_requests;
        metrics.shadow_total_bytes = snap.shadow_total_bytes;
        metrics.shadow_lru_hit_bytes = snap.shadow_lru_hit_bytes;
        metrics.shadow_realized_hit_bytes = snap.shadow_realized_hit_bytes;
        metrics.shadow_doorkeeper_skips = snap.doorkeeper_skips;
        metrics.shadow_doorkeeper_saved_bytes = snap.doorkeeper_saved_bytes;
    }
    ShardStatus {
        shard,
        capacity: cache.capacity(),
        model_version: cache.model_version(),
        tracker_bytes: cache.tracker().approximate_bytes() as u64,
        shared_sketch_bytes: cache
            .tracker()
            .shared_pool()
            .map_or(0, |p| p.sketch_bytes() as u64),
        index_bytes: cache.approximate_index_bytes() as u64,
        model_bytes: cache.model_footprint_bytes() as u64,
        metrics,
        guardrail,
    }
}

/// A hash-partitioned LFO cache: `N` independent [`LfoCache`] shards on
/// dedicated worker threads, all refreshing from one shared [`ModelSlot`].
/// See the module docs for the architecture.
pub struct ShardedLfoCache {
    senders: Vec<SyncSender<Vec<Request>>>,
    workers: Vec<JoinHandle<ShardStatus>>,
    /// Per-shard routing buffers, flushed at `batch_size`.
    buffers: Vec<Vec<Request>>,
    slot: ModelSlot,
    batch_size: usize,
    capacity: u64,
    /// The fleet-shared doorkeeper, kept so callers can read its stats
    /// (the shards hold their own `Arc`s).
    sketch_pool: Option<Arc<SharedDoorkeeper>>,
}

impl ShardedLfoCache {
    /// Creates a sharded cache of `capacity` total bytes with a fresh
    /// (empty) model slot; shards run LRU-fallback until a model is
    /// published through [`ShardedLfoCache::slot`].
    pub fn new(capacity: u64, config: LfoConfig, num_shards: usize) -> Self {
        Self::with_slot(capacity, config, num_shards, ModelSlot::new())
    }

    /// Creates a sharded cache attached to an externally shared slot, with
    /// default [`ShardParams`].
    pub fn with_slot(capacity: u64, config: LfoConfig, num_shards: usize, slot: ModelSlot) -> Self {
        Self::with_params(capacity, config, ShardParams::with_shards(num_shards), slot)
    }

    /// Creates a sharded cache cold-started from a persisted artifact: the
    /// artifact's model and cutoff are published into a fresh slot before
    /// any shard is built, so every shard serves with the restored model
    /// from its first request — no LRU warm-up window.
    pub fn from_artifact(
        capacity: u64,
        params: ShardParams,
        artifact: &crate::persist::LfoArtifact,
    ) -> Self {
        let slot = ModelSlot::new();
        artifact.publish_to(&slot);
        Self::with_params(capacity, artifact.config.clone(), params, slot)
    }

    /// Fully parameterized constructor.
    ///
    /// In [`ShardMode::Pooled`] every shard is created with the full
    /// `capacity` and joined to one [`SharedOccupancy`] pool that enforces
    /// the fleet-wide budget. In [`ShardMode::Partitioned`] the capacity is
    /// split as evenly as integer division allows: shard `i` gets
    /// `capacity / N`, with the remainder bytes going one each to the first
    /// `capacity % N` shards (so the shard capacities sum exactly to
    /// `capacity`, and a 1-shard cache gets all of it).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `batch_size` is 0.
    pub fn with_params(
        capacity: u64,
        config: LfoConfig,
        params: ShardParams,
        slot: ModelSlot,
    ) -> Self {
        assert!(params.num_shards > 0, "need at least one shard");
        assert!(params.batch_size > 0, "batch_size must be positive");
        let n = params.num_shards as u64;
        let (base, rem) = (capacity / n, capacity % n);
        let pool = SharedOccupancy::new(capacity, params.num_shards);
        // One doorkeeper for the whole fleet, sized to the *pool* budget:
        // fleet sketch memory scales with the budget, not budget × shards,
        // and shards share first-sighting evidence instead of re-probing
        // the one-hit-wonder tail N times. Pooled-mode only — a
        // partitioned fleet owns disjoint `capacity/N` budgets, so its
        // trackers stay private like its byte accounting.
        let sketch_pool = (params.shared_sketch
            && params.mode == ShardMode::Pooled
            && config.budget().is_bounded())
        .then(|| Arc::new(SharedDoorkeeper::new(config.budget(), params.num_shards)));
        let mut senders = Vec::with_capacity(params.num_shards);
        let mut workers = Vec::with_capacity(params.num_shards);
        for shard in 0..params.num_shards {
            let shard_capacity = match params.mode {
                ShardMode::Pooled => capacity,
                ShardMode::Partitioned => base + u64::from((shard as u64) < rem),
            };
            let mut cache = LfoCache::with_slot(shard_capacity, config.clone(), slot.clone());
            // The model is trained against a global cache's free bytes, so
            // each shard derives the feature per the configured ShardMode:
            // the fleet-wide pool (default) or its own free scaled by N.
            match params.mode {
                ShardMode::Pooled => cache.join_pool(pool.clone(), shard),
                ShardMode::Partitioned => cache.set_feature_free_scale(n),
            }
            if let Some(sketch) = &sketch_pool {
                cache.join_sketch_pool(Arc::clone(sketch), shard);
            }
            if let Some(guard) = params.guardrail {
                // Each shard sees ~1/N of the stream, so its ghosts model
                // 1/N of the byte budget — in Pooled mode the shard's
                // `capacity` field is the whole pool's, so scope it down;
                // in Partitioned mode the shard's own slice already is the
                // right basis.
                let basis = match params.mode {
                    ShardMode::Pooled => (capacity / n).max(1),
                    ShardMode::Partitioned => shard_capacity.max(1),
                };
                cache.enable_guardrail_scoped(guard, basis);
            }
            let (tx, rx) = sync_channel::<Vec<Request>>(params.queue_depth.max(1));
            senders.push(tx);
            workers.push(std::thread::spawn(move || shard_worker(shard, cache, rx)));
        }
        ShardedLfoCache {
            senders,
            workers,
            buffers: vec![Vec::with_capacity(params.batch_size); params.num_shards],
            slot,
            batch_size: params.batch_size,
            capacity,
            sketch_pool,
        }
    }

    /// The fleet-shared doorkeeper pool, when one is active (Pooled mode,
    /// bounded budget, `shared_sketch` on) — exposes the CAS-contention
    /// counters the concurrency benchmark reports.
    pub fn sketch_pool(&self) -> Option<&Arc<SharedDoorkeeper>> {
        self.sketch_pool.as_ref()
    }

    /// The shared publication slot; publishing through it (or any clone)
    /// rolls the model out to every shard.
    pub fn slot(&self) -> &ModelSlot {
        &self.slot
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// Total byte capacity across shards.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The shard `object` routes to.
    pub fn shard_of(&self, object: ObjectId) -> usize {
        shard_of(object, self.senders.len())
    }

    /// Routes one request to its shard. Batches are flushed to the worker
    /// when full; a full worker queue blocks here (backpressure), which is
    /// what bounds memory when the router outruns the shards.
    pub fn handle(&mut self, request: &Request) {
        let shard = self.shard_of(request.object);
        self.buffers[shard].push(*request);
        if self.buffers[shard].len() >= self.batch_size {
            let batch = std::mem::replace(
                &mut self.buffers[shard],
                Vec::with_capacity(self.batch_size),
            );
            self.senders[shard]
                .send(batch)
                .expect("shard worker exited early");
        }
    }

    /// Flushes all partially filled routing buffers to the workers.
    pub fn flush(&mut self) {
        for (shard, buffer) in self.buffers.iter_mut().enumerate() {
            if !buffer.is_empty() {
                let batch = std::mem::take(buffer);
                self.senders[shard]
                    .send(batch)
                    .expect("shard worker exited early");
            }
        }
    }

    /// Flushes, stops the workers, and returns the per-shard report.
    pub fn finish(mut self) -> ShardReport {
        self.flush();
        self.senders.clear(); // drop all senders: workers drain and exit
        let mut shards: Vec<ShardStatus> = self
            .workers
            .drain(..)
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        shards.sort_by_key(|s| s.shard);
        ShardReport { shards }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, id: u64, size: u64) -> Request {
        Request::new(t, id, size)
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for n in [1usize, 2, 3, 8, 16] {
            for id in 0..500u64 {
                let s = shard_of(ObjectId(id), n);
                assert!(s < n);
                assert_eq!(s, shard_of(ObjectId(id), n), "routing must be pure");
            }
        }
    }

    #[test]
    fn routing_is_stable_across_releases() {
        // Pinned values: the hash is part of the serving contract (a
        // changed mixer would silently re-partition a warm fleet).
        assert_eq!(shard_of(ObjectId(0), 4), 3);
        assert_eq!(shard_of(ObjectId(1), 4), 2);
        assert_eq!(shard_of(ObjectId(2), 4), 2);
        assert_eq!(shard_of(ObjectId(42), 4), 2);
        assert_eq!(shard_of(ObjectId(u64::MAX), 4), 3);
    }

    #[test]
    fn routing_spreads_objects_roughly_evenly() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for id in 0..8_000u64 {
            counts[shard_of(ObjectId(id), n)] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (800..=1200).contains(&c),
                "shard {shard} got {c} of 8000 objects"
            );
        }
    }

    #[test]
    fn one_shard_gets_the_full_capacity_and_serves() {
        let mut sharded = ShardedLfoCache::new(1_000, LfoConfig::default(), 1);
        assert_eq!(sharded.capacity(), 1_000);
        for i in 0..100u64 {
            sharded.handle(&req(i, i % 7, 90));
        }
        let report = sharded.finish();
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shards[0].capacity, 1_000);
        let total = report.total();
        assert_eq!(total.requests, 100);
        assert!(total.used_bytes <= 1_000);
    }

    #[test]
    fn partitioned_capacity_split_sums_exactly() {
        let params = ShardParams {
            mode: ShardMode::Partitioned,
            ..ShardParams::with_shards(4)
        };
        let sharded =
            ShardedLfoCache::with_params(1_003, LfoConfig::default(), params, ModelSlot::new());
        let report = sharded.finish();
        let caps: Vec<u64> = report.shards.iter().map(|s| s.capacity).collect();
        assert_eq!(caps.iter().sum::<u64>(), 1_003);
        assert_eq!(caps, vec![251, 251, 251, 250]);
    }

    #[test]
    fn pooled_shards_respect_the_fleet_budget() {
        // Every shard sees the full capacity, but the pool keeps the sum of
        // resident bytes at (or under) the fleet budget; with the LRU
        // fallback admitting everything, evictions must kick in.
        let mut sharded = ShardedLfoCache::new(1_000, LfoConfig::default(), 4);
        for i in 0..500u64 {
            sharded.handle(&req(i, i % 53, 90));
        }
        let report = sharded.finish();
        assert!(report.shards.iter().all(|s| s.capacity == 1_000));
        let total = report.total();
        // A shard that does not own the global eviction frontier defers
        // reclaim to the owner's next request, so the pool may end over
        // budget transiently — but never past the 2× hard valve (which
        // evicts locally regardless of frontier ownership) plus one
        // in-flight admission per other shard racing the valve check.
        assert!(
            total.used_bytes < 2 * 1_000 + 3 * 90,
            "pool overshot the hard valve: {} bytes resident",
            total.used_bytes
        );
        assert!(total.evictions > 0);
    }

    #[test]
    fn aggregate_is_exactly_the_sum_of_shards() {
        let mut sharded = ShardedLfoCache::new(10_000, LfoConfig::default(), 4);
        for i in 0..2_000u64 {
            sharded.handle(&req(i, i % 101, 50 + i % 40));
        }
        let report = sharded.finish();
        let total = report.total();
        let mut manual = CacheMetrics::default();
        for s in &report.shards {
            manual.add(&s.metrics);
        }
        assert_eq!(total, manual);
        assert_eq!(total.requests, 2_000);
        assert_eq!(
            total.hits + total.admitted_misses + total.bypassed_misses,
            2_000
        );
    }

    #[test]
    fn report_carries_metadata_footprints() {
        let mut sharded = ShardedLfoCache::new(100_000, LfoConfig::default(), 2);
        for i in 0..200u64 {
            sharded.handle(&req(i, i % 37, 60));
        }
        let report = sharded.finish();
        assert!(report.shards.iter().all(|s| s.tracker_bytes > 0));
        assert!(report.shards.iter().all(|s| s.index_bytes > 0));
        // LRU fallback: no model published, so no model footprint.
        assert!(report.shards.iter().all(|s| s.model_bytes == 0));
        assert!(report.metadata_bytes() > 0);
        assert!(report.metadata_bytes_per_object() > 0.0);
        // The per-object number covers at least one index entry per object.
        assert!(report.metadata_bytes_per_object() >= 32.0);
    }

    #[test]
    fn pooled_bounded_fleet_shares_one_doorkeeper_sketch() {
        use crate::features::TrackerBudget;
        let config = LfoConfig {
            tracker_budget: Some(TrackerBudget::capped(64)),
            ..LfoConfig::default()
        };
        let mut sharded = ShardedLfoCache::with_params(
            100_000,
            config,
            ShardParams::with_shards(4),
            ModelSlot::new(),
        );
        let pool = sharded.sketch_pool().expect("bounded pooled fleet shares");
        let fleet_sketch = pool.sketch_bytes() as u64;
        assert!(fleet_sketch > 0);
        for i in 0..600u64 {
            sharded.handle(&req(i, i % 90, 60));
        }
        let report = sharded.finish();
        // Every shard reports the same borrowed sketch, and the fleet
        // report counts it once — not once per shard.
        assert!(report
            .shards
            .iter()
            .all(|s| s.shared_sketch_bytes == fleet_sketch));
        let per_shard: u64 = report
            .shards
            .iter()
            .map(|s| s.tracker_bytes + s.index_bytes)
            .sum();
        assert_eq!(report.metadata_bytes(), per_shard + fleet_sketch);
        // Shards saw traffic and share first sightings through the pool.
        assert_eq!(report.total().requests, 600);
    }

    #[test]
    fn shared_sketch_is_inert_for_unbounded_or_partitioned_fleets() {
        use crate::features::TrackerBudget;
        // Default (unbounded) config: nothing to share.
        let sharded = ShardedLfoCache::new(10_000, LfoConfig::default(), 2);
        assert!(sharded.sketch_pool().is_none());
        sharded.finish();
        // Partitioned mode keeps trackers private even with a budget.
        let config = LfoConfig {
            tracker_budget: Some(TrackerBudget::capped(64)),
            ..LfoConfig::default()
        };
        let params = ShardParams {
            mode: ShardMode::Partitioned,
            ..ShardParams::with_shards(2)
        };
        let sharded = ShardedLfoCache::with_params(10_000, config, params, ModelSlot::new());
        assert!(sharded.sketch_pool().is_none());
        let report = sharded.finish();
        assert!(report.shards.iter().all(|s| s.shared_sketch_bytes == 0));
    }

    #[test]
    fn flush_is_idempotent_and_finish_drains_partial_batches() {
        let mut sharded = ShardedLfoCache::new(5_000, LfoConfig::default(), 2);
        for i in 0..13u64 {
            sharded.handle(&req(i, i, 10));
        }
        sharded.flush();
        sharded.flush();
        sharded.handle(&req(13, 13, 10));
        let report = sharded.finish();
        assert_eq!(report.total().requests, 14);
    }
}
