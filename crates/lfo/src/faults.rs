//! Deterministic fault injection for the staged pipeline.
//!
//! The paper's robustness claim (§4: the cache must keep serving at line
//! rate even when the learning loop misbehaves) is only testable if every
//! failure mode can be produced on demand. A [`FaultPlan`] is a scripted,
//! seeded set of per-window fault points — labeler errors, trainer panics,
//! stalled solves, corrupted training rows — threaded through
//! [`PipelineConfig`](crate::PipelineConfig) and consulted by the stage
//! threads at their window boundaries. An empty plan is free: the stages
//! check a `Vec` that never matches, and the pipeline's output is
//! bit-identical to a build without fault hooks.
//!
//! Faults are *deterministic*: a plan names exact windows and firing
//! counts, and row corruption is a pure function of the plan seed, so every
//! failure scenario replays identically across runs and platforms.

use std::time::Duration;

use gbdt::Dataset;

/// One failure mode the pipeline must survive.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// The labeler's OPT solve fails for the window (as a real
    /// [`OptError`](opt::OptError) would).
    LabelError,
    /// The trainer panics mid-training (caught by stage supervision).
    TrainerPanic,
    /// Training stalls for the given extra wall-clock before completing —
    /// used to exercise the per-window training deadline.
    SlowTraining(Duration),
    /// The leading `fraction` of the window's training rows are corrupted
    /// (features scrambled, labels flipped) before training — the scripted
    /// trigger for the drift and accuracy rollout gates.
    CorruptRows {
        /// Fraction of rows (from the front of the window) to corrupt.
        fraction: f64,
    },
    /// A seeded `fraction` of the window's training labels are flipped
    /// while the feature rows stay untouched — model poisoning that the
    /// deploy-time gates cannot see (the PSI drift gate compares features
    /// only, and with no incumbent the accuracy gate has no reference), so
    /// the bad model reaches the slot and only the runtime guardrail
    /// (DESIGN.md §13) can catch it.
    ModelPoisoning {
        /// Fraction of the window's labels to flip (seeded row selection).
        fraction: f64,
    },
    /// The window's persisted artifact is torn mid-write: after the save
    /// completes, the file is truncated to half its length (a lost tail /
    /// torn sector). The *next* run's warm start must detect the damage
    /// via the header byte count and fall back to the cold path.
    TornArtifactWrite,
    /// One bit of the window's persisted artifact is flipped (silent disk
    /// corruption), at an offset determined by the plan seed. The next
    /// run's warm start must detect it via the content checksum.
    ArtifactBitFlip,
    /// The process "crashes" between the artifact temp-file write and the
    /// rename: the save fails, the temp file is left behind, and the store
    /// keeps resolving the previous artifact — never a partial one.
    ArtifactCrash,
}

/// The pipeline stage that consults a fault point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FaultStage {
    /// OPT solve + training-set construction.
    Label,
    /// Model fitting + rollout gating.
    Train,
    /// Durable artifact write after the accepting slot swap.
    Persist,
}

impl FaultKind {
    pub(crate) fn stage(&self) -> FaultStage {
        match self {
            FaultKind::LabelError
            | FaultKind::CorruptRows { .. }
            | FaultKind::ModelPoisoning { .. } => FaultStage::Label,
            FaultKind::TrainerPanic | FaultKind::SlowTraining(_) => FaultStage::Train,
            FaultKind::TornArtifactWrite
            | FaultKind::ArtifactBitFlip
            | FaultKind::ArtifactCrash => FaultStage::Persist,
        }
    }
}

/// A scripted fault at one window, firing a bounded number of times.
///
/// `count` is the number of *attempts* the fault affects: a count of 1
/// fails the first attempt and lets the stage's retry succeed; a count
/// larger than the retry budget exhausts supervision and skips the window.
#[derive(Clone, Debug)]
pub struct FaultPoint {
    /// Window index (0-based) the fault fires in.
    pub window: usize,
    /// What goes wrong.
    pub kind: FaultKind,
    /// Remaining attempts this fault affects.
    pub count: usize,
}

/// A deterministic schedule of pipeline faults.
///
/// Built with the fluent [`inject`](FaultPlan::inject) /
/// [`inject_n`](FaultPlan::inject_n) API and handed to
/// [`PipelineConfig::faults`](crate::PipelineConfig); the default (empty)
/// plan injects nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    points: Vec<FaultPoint>,
}

impl FaultPlan {
    /// An empty plan (no faults) with seed 0.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// An empty plan with an explicit corruption seed.
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            points: Vec::new(),
        }
    }

    /// Adds a fault that fires once at `window`.
    pub fn inject(self, window: usize, kind: FaultKind) -> Self {
        self.inject_n(window, kind, 1)
    }

    /// Adds a fault that affects the first `count` attempts at `window`.
    pub fn inject_n(mut self, window: usize, kind: FaultKind, count: usize) -> Self {
        self.points.push(FaultPoint {
            window,
            kind,
            count,
        });
        self
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.points.iter().all(|p| p.count == 0)
    }

    /// The corruption seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Consumes one firing of the next pending fault for `window` at
    /// `stage`, if any.
    pub(crate) fn take(&mut self, window: usize, stage: FaultStage) -> Option<FaultKind> {
        let point = self
            .points
            .iter_mut()
            .find(|p| p.window == window && p.count > 0 && p.kind.stage() == stage)?;
        point.count -= 1;
        Some(point.kind.clone())
    }
}

/// Corrupts the leading `fraction` of `data`'s rows: features are scrambled
/// into a far-away but finite range (a distribution shift the PSI drift
/// gate must catch) and labels are flipped (an imitation-target corruption
/// the accuracy gate must catch). Deterministic in `seed`.
pub(crate) fn corrupt_rows(data: &Dataset, fraction: f64, seed: u64) -> Dataset {
    let n = data.num_rows();
    let corrupt = ((n as f64) * fraction.clamp(0.0, 1.0)).ceil() as usize;
    let offset = 5.0e7 + (seed % 13) as f32 * 1.0e6;
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for r in 0..n {
        let mut row = data.row(r);
        let mut label = data.label(r);
        if r < corrupt {
            for v in &mut row {
                *v = v.mul_add(1.0e3, offset);
            }
            label = 1.0 - label.clamp(0.0, 1.0);
        }
        rows.push(row);
        labels.push(label);
    }
    Dataset::from_rows(rows, labels).expect("corrupted rows stay finite and rectangular")
}

/// Flips a seeded-hash-selected `fraction` of `data`'s labels, leaving the
/// feature rows byte-identical. Unlike [`corrupt_rows`], the poisoned set
/// is *indistinguishable by feature distribution* from the clean one — the
/// PSI drift gate passes by construction — so the resulting model is the
/// canonical bad-but-gate-passing candidate the runtime guardrail must
/// catch. Deterministic in `seed`.
pub(crate) fn poison_labels(data: &Dataset, fraction: f64, seed: u64) -> Dataset {
    let n = data.num_rows();
    let fraction = fraction.clamp(0.0, 1.0);
    // Hash-select rows so the flipped set is spread across the window (a
    // prefix flip would concentrate the damage on early-trace objects):
    // row r is poisoned iff its seeded hash lands under the fraction.
    let threshold = (fraction * u64::MAX as f64) as u64;
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for r in 0..n {
        let mut label = data.label(r);
        if splitmix64(seed ^ (r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) <= threshold {
            label = 1.0 - label.clamp(0.0, 1.0);
        }
        rows.push(data.row(r));
        labels.push(label);
    }
    Dataset::from_rows(rows, labels).expect("poisoned rows stay finite and rectangular")
}

/// SplitMix64 finalizer (public-domain constants), the same mix the
/// guardrail's sampler uses.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_takes_nothing() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.take(0, FaultStage::Label), None);
        assert_eq!(plan.take(0, FaultStage::Train), None);
    }

    #[test]
    fn take_decrements_and_respects_stage() {
        let mut plan = FaultPlan::new().inject(2, FaultKind::LabelError).inject_n(
            2,
            FaultKind::TrainerPanic,
            2,
        );
        // Wrong window: nothing.
        assert_eq!(plan.take(1, FaultStage::Label), None);
        // Label fault fires once, then is exhausted.
        assert_eq!(plan.take(2, FaultStage::Label), Some(FaultKind::LabelError));
        assert_eq!(plan.take(2, FaultStage::Label), None);
        // Train fault fires twice.
        assert_eq!(
            plan.take(2, FaultStage::Train),
            Some(FaultKind::TrainerPanic)
        );
        assert_eq!(
            plan.take(2, FaultStage::Train),
            Some(FaultKind::TrainerPanic)
        );
        assert_eq!(plan.take(2, FaultStage::Train), None);
        assert!(plan.is_empty());
    }

    #[test]
    fn corrupt_rows_is_prefix_only_and_deterministic() {
        let rows: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32, 2.0 * i as f32]).collect();
        let labels: Vec<f32> = (0..10).map(|i| (i % 2) as f32).collect();
        let data = Dataset::from_rows(rows, labels).unwrap();
        let a = corrupt_rows(&data, 0.5, 7);
        let b = corrupt_rows(&data, 0.5, 7);
        for r in 0..10 {
            assert_eq!(a.row(r), b.row(r), "row {r} not deterministic");
            assert_eq!(a.label(r), b.label(r));
            if r < 5 {
                assert!(a.row(r)[0] > 1.0e6, "row {r} not scrambled");
                assert_eq!(a.label(r), 1.0 - data.label(r));
            } else {
                assert_eq!(a.row(r), data.row(r), "clean row {r} modified");
                assert_eq!(a.label(r), data.label(r));
            }
        }
        // A different seed scrambles to a different (still finite) range.
        let c = corrupt_rows(&data, 0.5, 8);
        assert_ne!(a.row(0), c.row(0));
        assert!(c.row(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn poison_labels_flips_labels_but_never_features() {
        let rows: Vec<Vec<f32>> = (0..200).map(|i| vec![i as f32, 3.0 * i as f32]).collect();
        let labels: Vec<f32> = (0..200).map(|i| (i % 2) as f32).collect();
        let data = Dataset::from_rows(rows, labels).unwrap();
        let a = poison_labels(&data, 0.5, 42);
        let b = poison_labels(&data, 0.5, 42);
        let mut flipped = 0usize;
        for r in 0..200 {
            // Features byte-identical — the PSI gate sees no shift at all.
            assert_eq!(a.row(r), data.row(r), "row {r} features modified");
            assert_eq!(a.label(r), b.label(r), "row {r} not deterministic");
            if a.label(r) != data.label(r) {
                assert_eq!(a.label(r), 1.0 - data.label(r));
                flipped += 1;
            }
        }
        // Hash selection lands near the requested fraction, not a prefix.
        assert!((60..=140).contains(&flipped), "flipped {flipped}/200");
        // fraction 0 is a no-op; fraction 1 flips everything.
        let none = poison_labels(&data, 0.0, 42);
        let all = poison_labels(&data, 1.0, 42);
        for r in 0..200 {
            assert_eq!(none.label(r), data.label(r));
            assert_eq!(all.label(r), 1.0 - data.label(r));
        }
    }
}
