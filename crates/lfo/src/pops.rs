//! Multi-PoP edge/regional topology with a federated control plane
//! (DESIGN.md §15).
//!
//! The ROADMAP north-star is "millions of users across geographies", and
//! real CDN deployments reach it with a two-tier topology: many edge PoPs
//! (points of presence) close to users, each with its own cache size and
//! traffic mix, missing into a shared regional mid-tier cache that
//! shields the origin. This module provides both halves:
//!
//! - [`PopsTopology`] — the data plane: N edge [`LfoCache`]s, one shared
//!   regional [`LfoCache`]; a request hits its PoP's edge cache first,
//!   edge misses flow to the regional tier, regional misses go to the
//!   origin. Per-tier [`CacheMetrics`] plus origin counters roll up into
//!   a [`PopsReport`] (origin offload, aggregate BHR).
//! - [`train_fleet`] — the control plane: one call trains admission
//!   models for the whole edge fleet under a [`RolloutPlan`]. `PerPop`
//!   trains every PoP from scratch on its own window. `Federated` reuses
//!   the PR 5 incremental machinery to make fleet training cheap: one
//!   scratch *base* model on the pooled fleet window plus a frozen
//!   [`BinMap`] grid, then per-PoP *delta trees* continued from the base
//!   on the shared grid ([`crate::train::train_window_continued`]), so
//!   each PoP pays delta-tree cost instead of full scratch cost while
//!   still specializing to its local mix.
//!
//! Every per-PoP delta rollout carries the base grid's fingerprint in its
//! [`Lineage`], exactly like single-cache incremental artifacts — the
//! fingerprint is what authorizes quantized serving at publish time. A
//! PoP whose delta candidate fails the [`FederationGate`] falls back to a
//! scratch model for that PoP alone; the other PoPs' rollouts proceed
//! untouched (no fleet-wide stall).
//!
//! **Degenerate contract:** a topology with one edge PoP and a zero-byte
//! regional tier is decision-identical, counter for counter, to the
//! underlying single [`LfoCache`] (a zero-byte cache can never admit or
//! hit, so the second tier adds no behavior). The
//! `tests/pops_topology.rs` proptest enforces this across seeds and
//! trace shapes.

use std::sync::Arc;
use std::time::Instant;

use cdn_cache::cache::CachePolicy;
use cdn_trace::Request;
use gbdt::{BinMap, Dataset, Model};

use crate::config::{LfoConfig, RetrainConfig};
use crate::persist::{LfoArtifact, Lineage, LineageKind, Provenance};
use crate::pipeline::TrainKind;
use crate::policy::{LfoCache, ModelSlot};
use crate::shard::CacheMetrics;
use crate::train::{equalize_cutoff, evaluate, train_window, train_window_continued};

/// Size and policy configuration of one edge PoP's cache.
#[derive(Clone, Debug)]
pub struct EdgeSpec {
    /// Edge cache capacity in bytes.
    pub capacity: u64,
    /// Edge cache policy configuration.
    pub config: LfoConfig,
}

/// Which tier served a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServedBy {
    /// Hit in the PoP's edge cache.
    Edge,
    /// Edge miss, hit in the shared regional cache.
    Regional,
    /// Missed both tiers: fetched from the origin.
    Origin,
}

/// The two-tier data plane: N edge caches in front of one shared
/// regional cache. See the module docs.
pub struct PopsTopology {
    edges: Vec<LfoCache>,
    edge_metrics: Vec<CacheMetrics>,
    regional: LfoCache,
    regional_metrics: CacheMetrics,
    origin_requests: u64,
    origin_bytes: u64,
}

/// Aggregated topology metrics; produced by [`PopsTopology::report`].
#[derive(Clone, Debug)]
pub struct PopsReport {
    /// Per-edge-PoP serving metrics (indexed by PoP).
    pub per_edge: Vec<CacheMetrics>,
    /// Regional-tier serving metrics (its request stream is the edge
    /// misses).
    pub regional: CacheMetrics,
    /// Requests that missed both tiers.
    pub origin_requests: u64,
    /// Bytes fetched from the origin.
    pub origin_bytes: u64,
}

impl PopsReport {
    /// Total bytes requested at the edges (the user-facing demand).
    pub fn total_bytes(&self) -> u64 {
        self.per_edge.iter().map(|m| m.total_bytes).sum()
    }

    /// Fraction of demanded bytes the topology kept off the origin —
    /// the headline number a CDN operator pays for.
    pub fn origin_offload(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            1.0 - self.origin_bytes as f64 / total as f64
        }
    }

    /// Aggregate byte hit ratio across both tiers: bytes served from any
    /// cache over bytes demanded. Numerically equal to
    /// [`PopsReport::origin_offload`] (every byte not hit in a tier goes
    /// to the origin), spelled out from the tier counters as a
    /// cross-check.
    pub fn aggregate_bhr(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        let edge_hits: u64 = self.per_edge.iter().map(|m| m.hit_bytes).sum();
        (edge_hits + self.regional.hit_bytes) as f64 / total as f64
    }

    /// Byte hit ratio of the edge tier alone.
    pub fn edge_bhr(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        let edge_hits: u64 = self.per_edge.iter().map(|m| m.hit_bytes).sum();
        edge_hits as f64 / total as f64
    }
}

impl PopsTopology {
    /// Builds a topology of the given edge PoPs in front of one regional
    /// cache. A `regional_capacity` of zero degenerates to independent
    /// single-tier edges (the regional cache can never admit).
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty.
    pub fn new(edges: &[EdgeSpec], regional_capacity: u64, regional_config: LfoConfig) -> Self {
        assert!(!edges.is_empty(), "a topology needs at least one edge PoP");
        let caches: Vec<LfoCache> = edges
            .iter()
            .map(|e| LfoCache::new(e.capacity, e.config.clone()))
            .collect();
        PopsTopology {
            edge_metrics: vec![CacheMetrics::default(); caches.len()],
            edges: caches,
            regional: LfoCache::new(regional_capacity, regional_config),
            regional_metrics: CacheMetrics::default(),
            origin_requests: 0,
            origin_bytes: 0,
        }
    }

    /// Number of edge PoPs.
    pub fn num_pops(&self) -> usize {
        self.edges.len()
    }

    /// Routes one request through its PoP's edge cache and, on a miss,
    /// through the shared regional tier.
    pub fn handle(&mut self, pop: usize, request: &Request) -> ServedBy {
        let outcome = self.edges[pop].handle(request);
        self.edge_metrics[pop].record(request.size, outcome);
        if outcome.is_hit() {
            return ServedBy::Edge;
        }
        let regional = self.regional.handle(request);
        self.regional_metrics.record(request.size, regional);
        if regional.is_hit() {
            ServedBy::Regional
        } else {
            self.origin_requests += 1;
            self.origin_bytes += request.size;
            ServedBy::Origin
        }
    }

    /// Read access to one edge cache.
    pub fn edge(&self, pop: usize) -> &LfoCache {
        &self.edges[pop]
    }

    /// One edge PoP's model-publication slot (for trainer threads).
    pub fn edge_slot(&self, pop: usize) -> &ModelSlot {
        self.edges[pop].slot()
    }

    /// Read access to the regional cache.
    pub fn regional(&self) -> &LfoCache {
        &self.regional
    }

    /// Installs a model on one edge PoP (LRU fallback until then).
    pub fn install_edge_model(&mut self, pop: usize, model: Arc<Model>) {
        self.edges[pop].install_model(model);
    }

    /// Updates one edge PoP's admission cutoff.
    pub fn set_edge_cutoff(&mut self, pop: usize, cutoff: f64) {
        self.edges[pop].set_cutoff(cutoff);
    }

    /// Installs a model on the shared regional cache.
    pub fn install_regional_model(&mut self, model: Arc<Model>) {
        self.regional.install_model(model);
    }

    /// Updates the shared regional cache's admission cutoff.
    pub fn set_regional_cutoff(&mut self, cutoff: f64) {
        self.regional.set_cutoff(cutoff);
    }

    /// Live per-edge metrics (shutdown occupancy fields not yet filled).
    pub fn edge_metrics(&self, pop: usize) -> &CacheMetrics {
        &self.edge_metrics[pop]
    }

    /// Snapshots the aggregated report, filling each tier's occupancy and
    /// eviction counters from the caches (the same shutdown protocol the
    /// sharded layer uses).
    pub fn report(&self) -> PopsReport {
        let mut per_edge = self.edge_metrics.clone();
        for (m, cache) in per_edge.iter_mut().zip(&self.edges) {
            m.evictions = cache.evictions;
            m.used_bytes = cache.used();
            m.resident_objects = cache.len() as u64;
        }
        let mut regional = self.regional_metrics;
        regional.evictions = self.regional.evictions;
        regional.used_bytes = self.regional.used();
        regional.resident_objects = self.regional.len() as u64;
        PopsReport {
            per_edge,
            regional,
            origin_requests: self.origin_requests,
            origin_bytes: self.origin_bytes,
        }
    }
}

/// How the control plane trains the edge fleet.
#[derive(Clone, Debug)]
pub enum RolloutPlan {
    /// Every PoP trains its own model from scratch on its local window —
    /// the expensive baseline (N full trainings per rollout cycle).
    PerPop,
    /// Federated: one scratch base model + frozen [`BinMap`] grid on the
    /// pooled fleet window, then per-PoP delta trees continued from the
    /// base on the shared grid. Per-PoP cost drops from a full training
    /// to `retrain.delta_trees` trees.
    Federated {
        /// Delta-tree budget and ensemble cap for the per-PoP
        /// continuations.
        retrain: RetrainConfig,
    },
}

/// Acceptance gate for per-PoP federated candidates. A rejected PoP
/// falls back to scratch training for that PoP alone — the other PoPs'
/// rollouts are never stalled by one PoP's bad delta.
#[derive(Clone, Debug)]
pub struct FederationGate {
    /// Minimum holdout accuracy a delta candidate must reach.
    pub min_holdout_accuracy: f64,
    /// Fraction of each PoP's window held out for the gate, in `(0, 1)`.
    pub holdout_fraction: f64,
    /// PoPs whose delta candidates are rejected unconditionally — the
    /// deterministic fault hook (same spirit as [`crate::faults`]) tests
    /// use to exercise the fallback path.
    pub force_reject: Vec<usize>,
}

impl Default for FederationGate {
    fn default() -> Self {
        FederationGate {
            min_holdout_accuracy: 0.7,
            holdout_fraction: 0.25,
            force_reject: Vec::new(),
        }
    }
}

/// One PoP's trained rollout.
#[derive(Clone, Debug)]
pub struct PopRollout {
    /// The PoP this model serves.
    pub pop: usize,
    /// How the model was produced (scratch, delta, or gated fallback).
    pub kind: TrainKind,
    /// The admission model.
    pub model: Arc<Model>,
    /// Equalized admission cutoff tuned on the PoP's training split.
    pub cutoff: f64,
    /// Training lineage (delta rollouts carry the shared grid
    /// fingerprint).
    pub lineage: Lineage,
    /// Wall-clock milliseconds this PoP's own training call took
    /// (excludes the shared base for federated rollouts — that cost is
    /// paid once, in [`FleetRollout::base_train_ms`]).
    pub train_ms: f64,
    /// Accuracy on the PoP's holdout split at the deployed cutoff.
    pub holdout_accuracy: f64,
}

impl PopRollout {
    /// Wraps this rollout as a persistable artifact with per-PoP
    /// provenance. Delta rollouts carry the shared grid so a restore can
    /// resume federated training (and quantized serving) on it.
    pub fn artifact(
        &self,
        config: LfoConfig,
        trace_id: &str,
        window: usize,
        bin_map: Option<&BinMap>,
    ) -> LfoArtifact {
        let artifact = LfoArtifact::new(
            config,
            (*self.model).clone(),
            self.cutoff,
            Provenance {
                trace_id: trace_id.to_string(),
                window,
                slot_version: 0,
                note: format!("fleet rollout, pop {}, {:?}", self.pop, self.kind),
                lineage: Some(self.lineage.clone()),
                pop: Some(self.pop),
            },
        );
        if self.kind == TrainKind::Incremental {
            artifact.with_bin_map(bin_map.cloned())
        } else {
            artifact
        }
    }
}

/// The control plane's output: one rollout per PoP plus the shared
/// federation state.
#[derive(Clone, Debug)]
pub struct FleetRollout {
    /// Per-PoP rollouts, indexed by PoP.
    pub rollouts: Vec<PopRollout>,
    /// Fingerprint (hex) of the shared frozen grid; `None` for
    /// [`RolloutPlan::PerPop`].
    pub base_fingerprint: Option<String>,
    /// The shared frozen grid itself.
    pub bin_map: Option<BinMap>,
    /// Wall-clock milliseconds of the shared base training (0 for
    /// [`RolloutPlan::PerPop`]).
    pub base_train_ms: f64,
}

impl FleetRollout {
    /// Publishes every PoP's rollout to its edge slot. Delta rollouts are
    /// published with the shared grid so the quantized serving layout
    /// compiles (fingerprint-gated); scratch rollouts serve through the
    /// flat engine.
    pub fn publish_to(&self, topology: &PopsTopology) {
        for r in &self.rollouts {
            let map = if r.kind == TrainKind::Incremental {
                self.bin_map.as_ref()
            } else {
                None
            };
            topology
                .edge_slot(r.pop)
                .publish_compiled(Arc::clone(&r.model), r.cutoff, map);
        }
    }

    /// Mean per-PoP training cost in milliseconds — what one PoP's
    /// trainer pays per rollout cycle, excluding the shared base.
    pub fn mean_pop_train_ms(&self) -> f64 {
        if self.rollouts.is_empty() {
            return 0.0;
        }
        self.rollouts.iter().map(|r| r.train_ms).sum::<f64>() / self.rollouts.len() as f64
    }
}

/// Rows `range` of `data` as an owned sub-dataset.
fn subset(data: &Dataset, range: std::ops::Range<usize>) -> Dataset {
    let rows: Vec<Vec<f32>> = range.clone().map(|r| data.row(r)).collect();
    let labels: Vec<f32> = data.labels()[range].to_vec();
    Dataset::from_rows(rows, labels).expect("subset of a valid dataset is valid")
}

/// Splits one PoP's window into (train, holdout) by the gate's holdout
/// fraction — the holdout is the window tail, matching the single-cache
/// gate's protocol.
fn split_window(data: &Dataset, holdout_fraction: f64) -> (Dataset, Dataset) {
    let n = data.num_rows();
    let holdout = ((n as f64 * holdout_fraction) as usize).clamp(1, n.saturating_sub(1).max(1));
    let cut = n - holdout;
    (subset(data, 0..cut), subset(data, cut..n))
}

/// Trains the edge fleet: one [`Dataset`] per PoP in, one [`PopRollout`]
/// per PoP out. See [`RolloutPlan`] for the two strategies and the
/// module docs for the federation protocol.
///
/// # Panics
///
/// Panics if `per_pop` is empty or any PoP's window has fewer than two
/// rows (nothing to hold out).
pub fn train_fleet(
    per_pop: &[Dataset],
    config: &LfoConfig,
    plan: &RolloutPlan,
    gate: &FederationGate,
) -> FleetRollout {
    assert!(!per_pop.is_empty(), "fleet needs at least one PoP window");
    assert!(
        (0.0..1.0).contains(&gate.holdout_fraction) && gate.holdout_fraction > 0.0,
        "holdout fraction must be in (0, 1)"
    );
    for (pop, data) in per_pop.iter().enumerate() {
        assert!(data.num_rows() >= 2, "PoP {pop} window too small to split");
    }
    match plan {
        RolloutPlan::PerPop => {
            let rollouts = per_pop
                .iter()
                .enumerate()
                .map(|(pop, data)| {
                    let (train, holdout) = split_window(data, gate.holdout_fraction);
                    let started = Instant::now();
                    let trained = train_window(&train, config);
                    let train_ms = started.elapsed().as_secs_f64() * 1e3;
                    finish_rollout(pop, TrainKind::Scratch, trained, &holdout, train_ms, None)
                })
                .collect();
            FleetRollout {
                rollouts,
                base_fingerprint: None,
                bin_map: None,
                base_train_ms: 0.0,
            }
        }
        RolloutPlan::Federated { retrain } => {
            // Shared phase, paid once per fleet: scratch base on the
            // pooled fleet window + the frozen quantile grid every PoP's
            // deltas bin against.
            let pooled = pool_windows(per_pop);
            let started = Instant::now();
            let base = train_window(&pooled, config);
            let base_train_ms = started.elapsed().as_secs_f64() * 1e3;
            let map = BinMap::fit(&pooled, config.gbdt.max_bins);
            let fingerprint = format!("{:016x}", map.fingerprint());

            let rollouts = per_pop
                .iter()
                .enumerate()
                .map(|(pop, data)| {
                    let (train, holdout) = split_window(data, gate.holdout_fraction);
                    let started = Instant::now();
                    let delta =
                        train_window_continued(&base.model, &train, config, retrain, Some(&map));
                    let delta_ms = started.elapsed().as_secs_f64() * 1e3;
                    let cutoff = equalize_cutoff(&delta.train_probs, &delta.train_labels);
                    let accuracy = 1.0 - evaluate(&delta.model, &holdout, cutoff).error_fraction();
                    let rejected =
                        accuracy < gate.min_holdout_accuracy || gate.force_reject.contains(&pop);
                    if rejected {
                        // Gated fallback: this PoP retrains from scratch;
                        // no other PoP waits on it.
                        let started = Instant::now();
                        let scratch = train_window(&train, config);
                        let scratch_ms = started.elapsed().as_secs_f64() * 1e3;
                        return finish_rollout(
                            pop,
                            TrainKind::ScratchFallback,
                            scratch,
                            &holdout,
                            delta_ms + scratch_ms,
                            None,
                        );
                    }
                    let lineage = Lineage {
                        kind: LineageKind::Delta,
                        base_window: Some(0),
                        delta_trees: retrain.delta_trees,
                        total_trees: delta.model.trees().len(),
                        bin_map_fingerprint: Some(fingerprint.clone()),
                    };
                    PopRollout {
                        pop,
                        kind: TrainKind::Incremental,
                        model: Arc::new(delta.model),
                        cutoff,
                        lineage,
                        train_ms: delta_ms,
                        holdout_accuracy: accuracy,
                    }
                })
                .collect();
            FleetRollout {
                rollouts,
                base_fingerprint: Some(fingerprint),
                bin_map: Some(map),
                base_train_ms,
            }
        }
    }
}

/// Concatenates the fleet's windows into the pooled base-training set.
fn pool_windows(per_pop: &[Dataset]) -> Dataset {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for data in per_pop {
        for r in 0..data.num_rows() {
            rows.push(data.row(r));
        }
        labels.extend_from_slice(data.labels());
    }
    Dataset::from_rows(rows, labels).expect("pooled fleet window is valid")
}

/// Assembles a scratch-trained rollout: equalized cutoff on the training
/// split, holdout accuracy at that cutoff, full lineage.
fn finish_rollout(
    pop: usize,
    kind: TrainKind,
    trained: crate::train::TrainedWindow,
    holdout: &Dataset,
    train_ms: f64,
    fingerprint: Option<String>,
) -> PopRollout {
    let cutoff = equalize_cutoff(&trained.train_probs, &trained.train_labels);
    let accuracy = 1.0 - evaluate(&trained.model, holdout, cutoff).error_fraction();
    let total_trees = trained.model.trees().len();
    PopRollout {
        pop,
        kind,
        model: Arc::new(trained.model),
        cutoff,
        lineage: Lineage {
            kind: LineageKind::Full,
            base_window: None,
            delta_trees: total_trees,
            total_trees,
            bin_map_fingerprint: fingerprint,
        },
        train_ms,
        holdout_accuracy: accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureTracker;
    use crate::labels::build_training_set;
    use cdn_trace::{split_by_pop, GeneratorConfig, PopTraceConfig, PopTraceGenerator, Request};
    use opt::{compute_opt, OptConfig};

    fn pop_windows(num_pops: usize, n: u64, cache: u64) -> Vec<Dataset> {
        let mut config = PopTraceConfig::production(41, num_pops, n);
        config.overlap = 0.8;
        config.skew = 0.3;
        let merged = PopTraceGenerator::new(config).generate();
        let per_pop = split_by_pop(&merged, num_pops);
        let lfo = LfoConfig::default();
        per_pop
            .iter()
            .map(|reqs| {
                let opt = compute_opt(reqs, &OptConfig::bhr(cache)).unwrap();
                let mut tracker = FeatureTracker::new(lfo.num_gaps, lfo.cost_model);
                build_training_set(reqs, &opt, &mut tracker, cache)
            })
            .collect()
    }

    fn replay(topology: &mut PopsTopology, merged: &[cdn_trace::PopRequest]) {
        for pr in merged {
            topology.handle(pr.pop, &pr.request);
        }
    }

    #[test]
    fn two_tier_routing_and_report_counters_are_consistent() {
        let spec = EdgeSpec {
            capacity: 256 * 1024,
            config: LfoConfig::default(),
        };
        let mut topology =
            PopsTopology::new(&[spec.clone(), spec], 1024 * 1024, LfoConfig::default());
        let merged = PopTraceGenerator::new(PopTraceConfig::production(5, 2, 3_000)).generate();
        replay(&mut topology, &merged);
        let report = topology.report();
        let edge_requests: u64 = report.per_edge.iter().map(|m| m.requests).sum();
        assert_eq!(edge_requests, 6_000);
        let edge_hits: u64 = report.per_edge.iter().map(|m| m.hits).sum();
        // Every edge miss reaches the regional tier; every regional miss
        // reaches the origin.
        assert_eq!(report.regional.requests, edge_requests - edge_hits);
        assert_eq!(
            report.origin_requests,
            report.regional.requests - report.regional.hits
        );
        assert!(report.origin_offload() > 0.0);
        assert!((report.aggregate_bhr() - report.origin_offload()).abs() < 1e-12);
    }

    #[test]
    fn zero_byte_regional_never_hits_or_admits() {
        let spec = EdgeSpec {
            capacity: 64 * 1024,
            config: LfoConfig::default(),
        };
        let mut topology = PopsTopology::new(&[spec], 0, LfoConfig::default());
        let reqs: Vec<Request> = TraceGeneratorSmall::generate(11, 2_000);
        for r in &reqs {
            topology.handle(0, r);
        }
        let report = topology.report();
        assert_eq!(report.regional.hits, 0);
        assert_eq!(report.regional.admitted_misses, 0);
        assert_eq!(report.regional.resident_objects, 0);
        assert_eq!(
            report.regional.requests,
            report.per_edge[0].requests - report.per_edge[0].hits
        );
    }

    /// Tiny helper so the test above reads clearly.
    struct TraceGeneratorSmall;
    impl TraceGeneratorSmall {
        fn generate(seed: u64, n: u64) -> Vec<Request> {
            cdn_trace::TraceGenerator::new(GeneratorConfig::small(seed, n))
                .generate()
                .requests()
                .to_vec()
        }
    }

    #[test]
    fn federated_rollouts_share_the_base_fingerprint_and_cost_less() {
        let windows = pop_windows(3, 2_500, 2 * 1024 * 1024);
        let config = LfoConfig::default();
        let gate = FederationGate {
            min_holdout_accuracy: 0.0,
            ..FederationGate::default()
        };
        let scratch = train_fleet(&windows, &config, &RolloutPlan::PerPop, &gate);
        let federated = train_fleet(
            &windows,
            &config,
            &RolloutPlan::Federated {
                retrain: RetrainConfig {
                    delta_trees: 6,
                    full_refresh: 8,
                    max_trees: 60,
                },
            },
            &gate,
        );
        let fp = federated.base_fingerprint.as_deref().expect("fingerprint");
        for r in &federated.rollouts {
            assert_eq!(r.kind, TrainKind::Incremental);
            assert_eq!(r.lineage.kind, LineageKind::Delta);
            assert_eq!(r.lineage.bin_map_fingerprint.as_deref(), Some(fp));
            assert!(r.model.trees().len() > 30, "delta appends to the base");
        }
        assert!(
            federated.mean_pop_train_ms() < scratch.mean_pop_train_ms(),
            "per-PoP delta cost {:.1}ms must undercut scratch {:.1}ms",
            federated.mean_pop_train_ms(),
            scratch.mean_pop_train_ms()
        );
    }

    #[test]
    fn force_rejected_pop_falls_back_without_stalling_the_fleet() {
        let windows = pop_windows(3, 2_000, 2 * 1024 * 1024);
        let config = LfoConfig::default();
        let gate = FederationGate {
            min_holdout_accuracy: 0.0,
            force_reject: vec![1],
            ..FederationGate::default()
        };
        let fleet = train_fleet(
            &windows,
            &config,
            &RolloutPlan::Federated {
                retrain: RetrainConfig {
                    delta_trees: 6,
                    full_refresh: 8,
                    max_trees: 60,
                },
            },
            &gate,
        );
        assert_eq!(fleet.rollouts[1].kind, TrainKind::ScratchFallback);
        assert_eq!(fleet.rollouts[1].lineage.kind, LineageKind::Full);
        assert_eq!(fleet.rollouts[1].lineage.bin_map_fingerprint, None);
        for pop in [0, 2] {
            assert_eq!(fleet.rollouts[pop].kind, TrainKind::Incremental);
            assert_eq!(
                fleet.rollouts[pop].lineage.bin_map_fingerprint.as_deref(),
                fleet.base_fingerprint.as_deref()
            );
        }
    }

    #[test]
    fn publish_to_rolls_models_onto_the_edges() {
        let windows = pop_windows(2, 2_000, 1024 * 1024);
        let config = LfoConfig::default();
        let gate = FederationGate {
            min_holdout_accuracy: 0.0,
            ..FederationGate::default()
        };
        let fleet = train_fleet(
            &windows,
            &config,
            &RolloutPlan::Federated {
                retrain: RetrainConfig {
                    delta_trees: 5,
                    full_refresh: 8,
                    max_trees: 60,
                },
            },
            &gate,
        );
        let spec = EdgeSpec {
            capacity: 512 * 1024,
            config: config.clone(),
        };
        let topology = PopsTopology::new(&[spec.clone(), spec], 1024 * 1024, config);
        assert!(!topology.edge(0).has_model());
        fleet.publish_to(&topology);
        assert!(topology.edge(0).has_model());
        assert!(topology.edge(1).has_model());
        assert!(!topology.regional().has_model(), "regional stays LRU");
    }

    #[test]
    fn artifact_carries_pop_provenance_and_gated_grid() {
        let windows = pop_windows(2, 2_000, 1024 * 1024);
        let config = LfoConfig::default();
        let gate = FederationGate {
            min_holdout_accuracy: 0.0,
            ..FederationGate::default()
        };
        let fleet = train_fleet(
            &windows,
            &config,
            &RolloutPlan::Federated {
                retrain: RetrainConfig {
                    delta_trees: 5,
                    full_refresh: 8,
                    max_trees: 60,
                },
            },
            &gate,
        );
        let artifact = fleet.rollouts[1].artifact(config, "pops-unit", 0, fleet.bin_map.as_ref());
        assert_eq!(artifact.provenance.pop, Some(1));
        assert!(
            artifact.quantization_map().is_some(),
            "delta artifact is authorized to quantize against the shared grid"
        );
        let bytes = artifact.to_bytes().unwrap();
        let back = LfoArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.provenance.pop, Some(1));
    }
}
