//! Persistence of trained LFO deployments.
//!
//! A production rollout ships the trained model (and the configuration it
//! was trained under) to serving hosts; this module defines that artifact.
//! The format is versioned JSON — models are small (30 trees × ≤31 leaves),
//! so human-inspectable JSON beats a bespoke binary format for
//! debuggability, which the paper calls out as a key advantage of trees
//! over RL ("debugging and maintenance is complicated" for model-free RL).

use std::io::{Read, Write};

use gbdt::Model;
use serde::{Deserialize, Serialize};

use crate::config::LfoConfig;

/// Current artifact format version.
pub const ARTIFACT_VERSION: u32 = 1;

/// A deployable LFO artifact: model + the config that produced it.
#[derive(Serialize, Deserialize)]
pub struct LfoArtifact {
    /// Format version (checked on load).
    pub version: u32,
    /// The configuration the model was trained under.
    pub config: LfoConfig,
    /// The trained admission classifier.
    pub model: Model,
    /// The admission cutoff deployed with the model (may differ from
    /// `config.cutoff` under cutoff tuning).
    pub deployed_cutoff: f64,
    /// Free-form provenance (trace id, window index, trainer host...).
    pub provenance: String,
}

/// Errors from artifact (de)serialization.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Format(serde_json::Error),
    /// The artifact was produced by an incompatible version.
    VersionMismatch {
        /// Version found in the artifact.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Format(e) => write!(f, "format error: {e}"),
            PersistError::VersionMismatch { found, expected } => {
                write!(f, "artifact version {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

impl LfoArtifact {
    /// Wraps a trained model for deployment.
    pub fn new(
        config: LfoConfig,
        model: Model,
        deployed_cutoff: f64,
        provenance: impl Into<String>,
    ) -> Self {
        LfoArtifact {
            version: ARTIFACT_VERSION,
            config,
            model,
            deployed_cutoff,
            provenance: provenance.into(),
        }
    }

    /// Serializes to a writer as JSON.
    pub fn save<W: Write>(&self, w: W) -> Result<(), PersistError> {
        serde_json::to_writer(w, self)?;
        Ok(())
    }

    /// Deserializes from a reader, checking the version.
    pub fn load<R: Read>(r: R) -> Result<Self, PersistError> {
        let artifact: LfoArtifact = serde_json::from_reader(r)?;
        if artifact.version != ARTIFACT_VERSION {
            return Err(PersistError::VersionMismatch {
                found: artifact.version,
                expected: ARTIFACT_VERSION,
            });
        }
        Ok(artifact)
    }

    /// Builds a serving cache from the artifact.
    pub fn into_cache(self, capacity: u64) -> crate::policy::LfoCache {
        let mut cache = crate::policy::LfoCache::new(capacity, self.config);
        cache.set_cutoff(self.deployed_cutoff);
        cache.install_model(std::sync::Arc::new(self.model));
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::CachePolicy;
    use cdn_trace::Request;
    use gbdt::{train, Dataset, GbdtParams};

    fn toy_artifact() -> LfoArtifact {
        let config = LfoConfig::default();
        let rows: Vec<Vec<f32>> = (0..100)
            .map(|i| {
                let mut row = vec![i as f32 * 100.0, i as f32 * 100.0, 0.0];
                row.extend(std::iter::repeat_n(5.0, config.num_gaps));
                row
            })
            .collect();
        let labels: Vec<f32> = (0..100).map(|i| (i < 50) as u8 as f32).collect();
        let model = train(
            &Dataset::from_rows(rows, labels).unwrap(),
            &GbdtParams::lfo_paper(),
        );
        LfoArtifact::new(config, model, 0.65, "unit-test window 3")
    }

    #[test]
    fn roundtrip_preserves_predictions_and_metadata() {
        let artifact = toy_artifact();
        let mut row = vec![100.0f32, 100.0, 0.0];
        row.extend(std::iter::repeat_n(5.0, 50));
        let before = artifact.model.predict_proba(&row);

        let mut buf = Vec::new();
        artifact.save(&mut buf).unwrap();
        let back = LfoArtifact::load(buf.as_slice()).unwrap();
        assert_eq!(back.deployed_cutoff, 0.65);
        assert_eq!(back.provenance, "unit-test window 3");
        assert!((back.model.predict_proba(&row) - before).abs() < 1e-12);
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut artifact = toy_artifact();
        artifact.version = 999;
        let mut buf = Vec::new();
        serde_json::to_writer(&mut buf, &artifact).unwrap();
        assert!(matches!(
            LfoArtifact::load(buf.as_slice()),
            Err(PersistError::VersionMismatch { found: 999, .. })
        ));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(
            LfoArtifact::load(&b"not json"[..]),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn into_cache_deploys_model_and_cutoff() {
        let artifact = toy_artifact();
        let mut cache = artifact.into_cache(1_000_000);
        assert!(cache.has_model());
        assert_eq!(cache.cutoff(), 0.65);
        // It behaves as a live cache immediately.
        let _ = cache.handle(&Request::new(0, 1u64, 100));
        assert!(cache.used() <= cache.capacity());
    }
}
