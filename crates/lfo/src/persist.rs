//! Crash-safe persistence of trained LFO deployments.
//!
//! A production rollout ships the trained model (and the configuration it
//! was trained under) to serving hosts; this module defines that artifact
//! and the on-disk store it lives in. The payload is versioned JSON —
//! models are small (30 trees × ≤31 leaves), so human-inspectable JSON
//! beats a bespoke binary format for debuggability, which the paper calls
//! out as a key advantage of trees over RL ("debugging and maintenance is
//! complicated" for model-free RL).
//!
//! ## On-disk format
//!
//! An artifact file is two lines:
//!
//! ```text
//! {"format":"lfo-artifact","version":2,"payload_bytes":N,"checksum":"<fnv1a64 hex>"}
//! {"config":{...},"model":{...},"deployed_cutoff":0.5,"provenance":{...},"validation":{...}}
//! ```
//!
//! The header is parsed first and carries a byte count and an FNV-1a 64
//! checksum over the *exact* payload bytes, so a torn write (truncation)
//! and silent disk corruption (bit flips) are both detected before any
//! model bytes are trusted — the restore path degrades to the cold LRU
//! start instead of deploying a damaged model. The payload itself stays
//! plain JSON for `jq`-style inspection.
//!
//! ## Store layout
//!
//! An [`ArtifactStore`] is a directory of `artifact-NNNNNN.json` files with
//! monotonically increasing sequence numbers. Writes are atomic: the
//! artifact is serialized to a `.tmp-…` file in the same directory, fsynced,
//! and renamed into place (then the directory is fsynced), so a crash at
//! any point leaves either the previous `latest` or the new one — never a
//! partial file under the visible name. Retention is bounded: after each
//! save the oldest artifacts beyond [`ArtifactStore::retain`] are pruned.
//! The store assumes a single writer (the pipeline's Deployer).

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gbdt::{BinMap, Model};
use serde::{Deserialize, Serialize};

use crate::config::LfoConfig;
use crate::features::TrackerSnapshot;
use crate::policy::ModelSlot;

/// Current artifact format version (bumped when the envelope or payload
/// schema changes incompatibly; see `tests/artifact_compat.rs` for the
/// golden-fixture stability contract).
pub const ARTIFACT_VERSION: u32 = 2;

/// Magic string identifying an artifact header.
const MAGIC: &str = "lfo-artifact";

/// Prefix of temporary files used by the atomic write protocol.
const TMP_PREFIX: &str = ".tmp-";

/// FNV-1a 64-bit hash — the artifact content checksum. Dependency-free,
/// deterministic across platforms, and sensitive to any single-bit change.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How the artifact's ensemble was produced: a full from-scratch rebuild,
/// or a delta append on top of an incumbent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineageKind {
    /// All trees grown from scratch on this window.
    #[default]
    Full,
    /// New trees appended to an incumbent ensemble (warm start).
    Delta,
}

/// Training lineage of an artifact's model — records whether (and from
/// what) the ensemble was warm-started, so an operator can trace a serving
/// model back through its chain of delta windows to the last full rebuild.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Lineage {
    /// Full rebuild or delta append.
    pub kind: LineageKind,
    /// Window index of the base model the delta was appended to
    /// (`None` for full rebuilds).
    pub base_window: Option<usize>,
    /// Trees added by this window's training call.
    pub delta_trees: usize,
    /// Total trees in the deployed ensemble.
    pub total_trees: usize,
    /// FNV-1a fingerprint (hex) of the frozen [`BinMap`] the window was
    /// quantized against; `None` when quantiles were fit fresh.
    pub bin_map_fingerprint: Option<String>,
}

/// Structured provenance recorded with every artifact: enough to answer
/// "which run, which window, which rollout produced the model now serving".
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Identifier of the trace/run the model was trained on.
    pub trace_id: String,
    /// Sliding-window index the model was trained on.
    pub window: usize,
    /// [`ModelSlot`] version right after the accepting swap.
    pub slot_version: u64,
    /// Free-form note (trainer host, experiment name, ...).
    pub note: String,
    /// Training lineage (absent in pre-incremental artifacts).
    pub lineage: Option<Lineage>,
    /// Edge PoP the model serves in a multi-PoP topology (`None` for
    /// single-cache deployments and pre-topology artifacts).
    pub pop: Option<usize>,
}

/// Validation data stored alongside the model so a *restore* can re-run
/// the deployment gates without the original training window: a sample of
/// the training window's feature rows (the PSI drift reference) and a
/// small labeled holdout with the accuracy recorded at save time (the
/// accuracy self-check). Both are bounded to a few hundred rows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StoredValidation {
    /// Drift reference: the training window's trailing-quarter feature
    /// rows, re-tracked from a fresh tracker so the restore probe (also
    /// tracked from fresh) compares at a matching gap-history horizon.
    pub train_sample: Vec<Vec<f32>>,
    /// Holdout feature rows (the gate's holdout split, or the window tail).
    pub holdout_rows: Vec<Vec<f32>>,
    /// Labels paired with `holdout_rows`.
    pub holdout_labels: Vec<f32>,
    /// The model's accuracy on the holdout at `deployed_cutoff`, recorded
    /// at save time — a restored model must reproduce it.
    pub holdout_accuracy: f64,
}

/// A deployable LFO artifact: model + the config that produced it.
#[derive(Clone, Serialize, Deserialize)]
pub struct LfoArtifact {
    /// The configuration the model was trained under.
    pub config: LfoConfig,
    /// The trained admission classifier.
    pub model: Model,
    /// The admission cutoff deployed with the model (may differ from
    /// `config.cutoff` under cutoff tuning).
    pub deployed_cutoff: f64,
    /// Where the model came from.
    pub provenance: Provenance,
    /// Stored validation data for restore-time gating.
    pub validation: StoredValidation,
    /// Bounded feature-tracker history (the hottest objects at save time),
    /// so a restored model scores meaningful gap features immediately
    /// instead of seeing every object as first-seen.
    pub tracker: TrackerSnapshot,
    /// The frozen quantile grid the model's incremental chain is binned
    /// against, carried so a warm restart resumes delta training on the
    /// same grid. Absent in pre-incremental artifacts and whenever
    /// incremental retraining is off.
    pub bin_map: Option<BinMap>,
}

/// The artifact envelope header: parsed and verified before any payload
/// byte is trusted.
#[derive(Serialize, Deserialize)]
struct Header {
    format: String,
    version: u32,
    payload_bytes: u64,
    checksum: String,
}

/// Errors from artifact (de)serialization and the store.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON in the payload.
    Format(serde_json::Error),
    /// The file has no recognizable artifact header (wrong magic, damaged
    /// or missing header line) — it is not (or no longer) an LFO artifact.
    NotAnArtifact,
    /// The artifact was produced by an incompatible format version.
    VersionMismatch {
        /// Version found in the artifact.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The payload byte count does not match the header — a torn write.
    Truncated {
        /// Payload bytes promised by the header.
        expected: u64,
        /// Payload bytes actually present.
        found: u64,
    },
    /// The payload checksum does not match the header — disk corruption.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes on disk.
        found: u64,
    },
    /// The store holds no artifact.
    Missing(PathBuf),
    /// The artifact is internally inconsistent or incompatible with the
    /// requesting configuration (e.g. feature-count mismatch).
    Incompatible(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Format(e) => write!(f, "format error: {e}"),
            PersistError::NotAnArtifact => write!(f, "not an LFO artifact (bad or missing header)"),
            PersistError::VersionMismatch { found, expected } => {
                write!(f, "artifact version {found}, expected {expected}")
            }
            PersistError::Truncated { expected, found } => {
                write!(
                    f,
                    "artifact truncated: {found} payload bytes, header promises {expected}"
                )
            }
            PersistError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "artifact checksum {found:016x}, header records {expected:016x}"
                )
            }
            PersistError::Missing(dir) => {
                write!(f, "no artifact in store {}", dir.display())
            }
            PersistError::Incompatible(why) => write!(f, "incompatible artifact: {why}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

impl LfoArtifact {
    /// Wraps a trained model for deployment.
    pub fn new(
        config: LfoConfig,
        model: Model,
        deployed_cutoff: f64,
        provenance: Provenance,
    ) -> Self {
        LfoArtifact {
            config,
            model,
            deployed_cutoff,
            provenance,
            validation: StoredValidation::default(),
            tracker: TrackerSnapshot::default(),
            bin_map: None,
        }
    }

    /// Attaches stored validation data (for restore-time gating).
    pub fn with_validation(mut self, validation: StoredValidation) -> Self {
        self.validation = validation;
        self
    }

    /// Attaches a feature-tracker snapshot (for warm-start serving).
    pub fn with_tracker(mut self, tracker: TrackerSnapshot) -> Self {
        self.tracker = tracker;
        self
    }

    /// Attaches the frozen bin map (for incremental warm restarts and
    /// publish-time quantization), stamping its fingerprint into the
    /// provenance lineage. The fingerprint is what authorizes compiling the
    /// quantized serving layout at publish time — see
    /// [`LfoArtifact::quantization_map`].
    pub fn with_bin_map(mut self, bin_map: Option<BinMap>) -> Self {
        if let Some(map) = &bin_map {
            let lineage = self.provenance.lineage.get_or_insert_with(Lineage::default);
            lineage.bin_map_fingerprint = Some(format!("{:016x}", map.fingerprint()));
        }
        self.bin_map = bin_map;
        self
    }

    /// The bin map this artifact is *authorized* to quantize against: the
    /// stored map, but only when the lineage fingerprint proves it is the
    /// grid the model's training chain was binned on. A fingerprint-less
    /// artifact (pre-quantization builds, or a map attached by direct field
    /// assignment) returns `None` and serves through the flat walk — never
    /// a silent requantization against an unproven grid.
    pub fn quantization_map(&self) -> Option<&BinMap> {
        let map = self.bin_map.as_ref()?;
        let recorded = self
            .provenance
            .lineage
            .as_ref()?
            .bin_map_fingerprint
            .as_deref()?;
        if recorded == format!("{:016x}", map.fingerprint()) {
            Some(map)
        } else {
            None
        }
    }

    /// Serializes to the checksummed envelope format.
    pub fn to_bytes(&self) -> Result<Vec<u8>, PersistError> {
        let payload = serde_json::to_string(self)?;
        let header = Header {
            format: MAGIC.to_string(),
            version: ARTIFACT_VERSION,
            payload_bytes: payload.len() as u64,
            checksum: format!("{:016x}", checksum(payload.as_bytes())),
        };
        let mut out = serde_json::to_string(&header)?.into_bytes();
        out.push(b'\n');
        out.extend_from_slice(payload.as_bytes());
        Ok(out)
    }

    /// Parses the envelope format, verifying magic, version, byte count,
    /// checksum, and internal consistency — in that order, so damage is
    /// reported as what it is rather than as a JSON parse error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(PersistError::NotAnArtifact)?;
        let header_str =
            std::str::from_utf8(&bytes[..newline]).map_err(|_| PersistError::NotAnArtifact)?;
        let header: Header =
            serde_json::from_str(header_str).map_err(|_| PersistError::NotAnArtifact)?;
        if header.format != MAGIC {
            return Err(PersistError::NotAnArtifact);
        }
        if header.version != ARTIFACT_VERSION {
            return Err(PersistError::VersionMismatch {
                found: header.version,
                expected: ARTIFACT_VERSION,
            });
        }
        let payload = &bytes[newline + 1..];
        if payload.len() as u64 != header.payload_bytes {
            return Err(PersistError::Truncated {
                expected: header.payload_bytes,
                found: payload.len() as u64,
            });
        }
        let expected =
            u64::from_str_radix(&header.checksum, 16).map_err(|_| PersistError::NotAnArtifact)?;
        let found = checksum(payload);
        if found != expected {
            return Err(PersistError::ChecksumMismatch { expected, found });
        }
        let artifact: LfoArtifact = serde_json::from_reader(payload)?;
        if artifact.model.num_features() != artifact.config.num_features() {
            return Err(PersistError::Incompatible(format!(
                "model expects {} features, config defines {}",
                artifact.model.num_features(),
                artifact.config.num_features()
            )));
        }
        Ok(artifact)
    }

    /// Serializes to a writer in the envelope format.
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), PersistError> {
        w.write_all(&self.to_bytes()?)?;
        Ok(())
    }

    /// Deserializes from a reader, verifying the envelope.
    pub fn load<R: Read>(mut r: R) -> Result<Self, PersistError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        LfoArtifact::from_bytes(&bytes)
    }

    /// Loads and verifies an artifact file.
    pub fn load_file(path: &Path) -> Result<Self, PersistError> {
        LfoArtifact::from_bytes(&fs::read(path)?)
    }

    /// Publishes the artifact's model and cutoff into a serving
    /// [`ModelSlot`] — the cold-start path for sharded caches and
    /// prediction servers. When the artifact carries its frozen training
    /// grid *and* the lineage fingerprint vouches for it, the quantized
    /// serving layout is compiled here; otherwise the publish is flat-only
    /// and subscribers serve through the f32 walk.
    pub fn publish_to(&self, slot: &ModelSlot) {
        slot.publish_compiled(
            Arc::new(self.model.clone()),
            self.deployed_cutoff,
            self.quantization_map(),
        );
    }

    /// Builds a serving cache from the artifact, tracker history included.
    pub fn into_cache(self, capacity: u64) -> crate::policy::LfoCache {
        let mut cache = crate::policy::LfoCache::new(capacity, self.config);
        cache.set_cutoff(self.deployed_cutoff);
        cache.install_model(Arc::new(self.model));
        cache.tracker_mut().load_snapshot(&self.tracker);
        cache
    }
}

/// Where a simulated crash interrupts [`ArtifactStore::save`] — a test
/// hook proving the atomic write protocol never exposes a partial artifact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CrashPoint {
    /// No simulated crash (production behaviour).
    #[default]
    None,
    /// Crash after the temp file is written and fsynced but before the
    /// rename — the visible store must still resolve the previous artifact.
    BeforeRename,
}

/// A directory of versioned artifacts with atomic writes, `latest`
/// resolution by highest sequence number, and bounded retention.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    retain: usize,
    crash: CrashPoint,
}

impl ArtifactStore {
    /// Artifacts kept by default after each save.
    pub const DEFAULT_RETAIN: usize = 4;

    /// Opens (creating if needed) a store directory with default retention.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, PersistError> {
        ArtifactStore::with_retention(dir, Self::DEFAULT_RETAIN)
    }

    /// Opens a store keeping at most `retain` artifacts (minimum 1).
    pub fn with_retention(dir: impl Into<PathBuf>, retain: usize) -> Result<Self, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ArtifactStore {
            dir,
            retain: retain.max(1),
            crash: CrashPoint::None,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The retention bound.
    pub fn retain(&self) -> usize {
        self.retain
    }

    /// Arms (or disarms) the simulated-crash test hook.
    pub fn set_crash_point(&mut self, crash: CrashPoint) {
        self.crash = crash;
    }

    /// Sequence number of `artifact-NNNNNN.json`, if the name matches.
    fn sequence_of(name: &str) -> Option<u64> {
        let digits = name.strip_prefix("artifact-")?.strip_suffix(".json")?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }

    /// All artifact files in the store, sorted by ascending sequence.
    /// Temp files from interrupted writes are never visible here.
    pub fn artifacts(&self) -> Result<Vec<(u64, PathBuf)>, PersistError> {
        let mut found = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(seq) = name.to_str().and_then(Self::sequence_of) {
                found.push((seq, entry.path()));
            }
        }
        found.sort_by_key(|(seq, _)| *seq);
        Ok(found)
    }

    /// Path of the newest artifact, if any.
    pub fn latest_path(&self) -> Result<Option<PathBuf>, PersistError> {
        Ok(self.artifacts()?.pop().map(|(_, path)| path))
    }

    /// Loads and verifies the newest artifact;
    /// [`PersistError::Missing`] when the store is empty.
    pub fn load_latest(&self) -> Result<LfoArtifact, PersistError> {
        match self.latest_path()? {
            Some(path) => LfoArtifact::load_file(&path),
            None => Err(PersistError::Missing(self.dir.clone())),
        }
    }

    /// Atomically writes `artifact` as the new latest: serialize to a temp
    /// file in the same directory, fsync, rename into place, fsync the
    /// directory, then prune beyond the retention bound.
    pub fn save(&self, artifact: &LfoArtifact) -> Result<PathBuf, PersistError> {
        let sequence = self.artifacts()?.last().map_or(1, |(seq, _)| seq + 1);
        let final_path = self.dir.join(format!("artifact-{sequence:06}.json"));
        let temp_path = self
            .dir
            .join(format!("{TMP_PREFIX}artifact-{sequence:06}.json"));
        {
            let mut file = File::create(&temp_path)?;
            file.write_all(&artifact.to_bytes()?)?;
            file.sync_all()?;
        }
        if self.crash == CrashPoint::BeforeRename {
            // The temp file stays behind, exactly as a real crash would
            // leave it; the visible store is untouched.
            return Err(PersistError::Io(std::io::Error::other(
                "simulated crash between temp write and rename",
            )));
        }
        fs::rename(&temp_path, &final_path)?;
        // Durability of the rename itself; failure to fsync a directory is
        // non-fatal on filesystems that do not support it.
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        self.prune()?;
        Ok(final_path)
    }

    /// Deletes artifacts beyond the retention bound (oldest first) and any
    /// stale temp files left by interrupted writes.
    fn prune(&self) -> Result<(), PersistError> {
        let artifacts = self.artifacts()?;
        if artifacts.len() > self.retain {
            for (_, path) in &artifacts[..artifacts.len() - self.retain] {
                let _ = fs::remove_file(path);
            }
        }
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let is_stale_temp = name.to_str().is_some_and(|n| n.starts_with(TMP_PREFIX));
            if is_stale_temp {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(())
    }
}

/// Truncates an artifact file to half its length — a torn write.
/// Test/fault-injection utility (see [`crate::FaultKind::TornArtifactWrite`]).
pub fn tear_artifact(path: &Path) -> std::io::Result<()> {
    let len = fs::metadata(path)?.len();
    let file = fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len / 2)?;
    file.sync_all()?;
    Ok(())
}

/// Flips one bit of an artifact's payload at a seed-determined offset —
/// silent disk corruption the checksum must catch. Test/fault-injection
/// utility (see [`crate::FaultKind::ArtifactBitFlip`]).
pub fn flip_artifact_bit(path: &Path, seed: u64) -> std::io::Result<()> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Ok(());
    }
    // Land inside the payload when there is one, so the damage exercises
    // the checksum rather than destroying the header.
    let start = bytes
        .iter()
        .position(|&b| b == b'\n')
        .map_or(0, |nl| (nl + 1).min(bytes.len() - 1));
    let span = bytes.len() - start;
    let offset = start + (seed as usize) % span.max(1);
    bytes[offset] ^= 1 << (seed % 8) as u8;
    fs::write(path, bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::CachePolicy;
    use cdn_trace::Request;
    use gbdt::{train, Dataset, GbdtParams};

    fn toy_artifact() -> LfoArtifact {
        let config = LfoConfig::default();
        let rows: Vec<Vec<f32>> = (0..100)
            .map(|i| {
                let mut row = vec![i as f32 * 100.0, i as f32 * 100.0, 0.0];
                row.extend(std::iter::repeat_n(5.0, config.num_gaps));
                row
            })
            .collect();
        let labels: Vec<f32> = (0..100).map(|i| (i < 50) as u8 as f32).collect();
        let model = train(
            &Dataset::from_rows(rows, labels).unwrap(),
            &GbdtParams::lfo_paper(),
        );
        LfoArtifact::new(
            config,
            model,
            0.65,
            Provenance {
                trace_id: "unit-test".into(),
                window: 3,
                slot_version: 7,
                note: "toy".into(),
                lineage: None,
                pop: None,
            },
        )
    }

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lfo-persist-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_predictions_and_metadata() {
        let artifact = toy_artifact();
        let mut row = vec![100.0f32, 100.0, 0.0];
        row.extend(std::iter::repeat_n(5.0, 50));
        let before = artifact.model.predict_proba(&row);

        let mut buf = Vec::new();
        artifact.save(&mut buf).unwrap();
        let back = LfoArtifact::load(buf.as_slice()).unwrap();
        assert_eq!(back.deployed_cutoff, 0.65);
        assert_eq!(back.provenance, artifact.provenance);
        assert_eq!(back.provenance.window, 3);
        assert_eq!(back.provenance.slot_version, 7);
        // Bit-equal, not approximately equal: the JSON float formatting is
        // shortest-roundtrip, so serialization is lossless.
        assert_eq!(back.model.predict_proba(&row).to_bits(), before.to_bits());
        assert_eq!(back.model, artifact.model);
    }

    #[test]
    fn lineage_and_bin_map_roundtrip() {
        let mut artifact = toy_artifact();
        let data = Dataset::from_rows(
            (0..60)
                .map(|r| {
                    (0..artifact.config.num_features())
                        .map(|c| ((r * 7 + c * 13) % 101) as f32)
                        .collect()
                })
                .collect(),
            vec![0.0; 60],
        )
        .unwrap();
        let map = BinMap::fit(&data, artifact.config.gbdt.max_bins);
        let fingerprint = map.fingerprint();
        artifact.bin_map = Some(map);
        artifact.provenance.lineage = Some(Lineage {
            kind: LineageKind::Delta,
            base_window: Some(2),
            delta_trees: 6,
            total_trees: 36,
            bin_map_fingerprint: Some(format!("{fingerprint:016x}")),
        });

        let mut buf = Vec::new();
        artifact.save(&mut buf).unwrap();
        let back = LfoArtifact::load(buf.as_slice()).unwrap();
        assert_eq!(back.provenance.lineage, artifact.provenance.lineage);
        let back_map = back.bin_map.expect("bin map survived the roundtrip");
        assert_eq!(back_map.fingerprint(), fingerprint);
    }

    #[test]
    fn artifacts_without_optional_fields_still_load() {
        // A payload with the `bin_map` and `lineage` keys removed outright
        // (not just null) is what a pre-incremental build wrote; both
        // fields must deserialize as None.
        let artifact = toy_artifact();
        let bytes = artifact.to_bytes().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let (_, payload) = text.split_once('\n').unwrap();
        let stripped = payload
            .replace(",\"lineage\":null", "")
            .replace(",\"bin_map\":null", "");
        assert_ne!(stripped, payload, "optional keys not found to strip");
        let header = format!(
            "{{\"format\":\"{MAGIC}\",\"version\":{ARTIFACT_VERSION},\
             \"payload_bytes\":{},\"checksum\":\"{:016x}\"}}",
            stripped.len(),
            checksum(stripped.as_bytes())
        );
        let rebuilt = format!("{header}\n{stripped}").into_bytes();
        let back = LfoArtifact::from_bytes(&rebuilt).expect("stripped payload loads");
        assert!(back.provenance.lineage.is_none());
        assert!(back.bin_map.is_none());
        assert_eq!(back.model, artifact.model);
    }

    #[test]
    fn version_mismatch_rejected() {
        let artifact = toy_artifact();
        let mut bytes = artifact.to_bytes().unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let skewed = text.replacen(
            &format!("\"version\":{ARTIFACT_VERSION}"),
            "\"version\":999",
            1,
        );
        assert_ne!(text, skewed, "header version marker not found");
        bytes = skewed.into_bytes();
        assert!(matches!(
            LfoArtifact::from_bytes(&bytes),
            Err(PersistError::VersionMismatch { found: 999, .. })
        ));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(
            LfoArtifact::load(&b"not json"[..]),
            Err(PersistError::NotAnArtifact)
        ));
        assert!(matches!(
            LfoArtifact::load(&b"{\"format\":\"something-else\"}\n{}"[..]),
            Err(PersistError::NotAnArtifact)
        ));
    }

    #[test]
    fn truncation_detected_before_parse() {
        let bytes = toy_artifact().to_bytes().unwrap();
        let torn = &bytes[..bytes.len() / 2];
        assert!(matches!(
            LfoArtifact::from_bytes(torn),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn bit_flip_detected_by_checksum() {
        let mut bytes = toy_artifact().to_bytes().unwrap();
        let newline = bytes.iter().position(|&b| b == b'\n').unwrap();
        let offset = newline + 1 + (bytes.len() - newline) / 2;
        bytes[offset] ^= 0x01;
        assert!(matches!(
            LfoArtifact::from_bytes(&bytes),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn checksum_is_fnv1a64() {
        // Pinned reference values keep the hash stable across refactors —
        // existing artifacts on disk depend on it.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(checksum(b"lfo"), 0x126f_8b19_1dca_2d88);
    }

    #[test]
    fn into_cache_deploys_model_and_cutoff() {
        let artifact = toy_artifact();
        let mut cache = artifact.into_cache(1_000_000);
        assert!(cache.has_model());
        assert_eq!(cache.cutoff(), 0.65);
        // It behaves as a live cache immediately.
        let _ = cache.handle(&Request::new(0, 1u64, 100));
        assert!(cache.used() <= cache.capacity());
    }

    #[test]
    fn publish_to_slot_serves_cold_start() {
        let artifact = toy_artifact();
        let slot = ModelSlot::new();
        assert!(!slot.has_model());
        artifact.publish_to(&slot);
        assert!(slot.has_model());
        assert_eq!(slot.version(), 1);
    }

    fn artifact_grid(artifact: &LfoArtifact) -> BinMap {
        let data = Dataset::from_rows(
            (0..80)
                .map(|r| {
                    (0..artifact.config.num_features())
                        .map(|c| ((r * 11 + c * 7) % 97) as f32 * 3.0)
                        .collect()
                })
                .collect(),
            vec![0.0; 80],
        )
        .unwrap();
        BinMap::fit(&data, artifact.config.gbdt.max_bins)
    }

    #[test]
    fn with_bin_map_stamps_the_lineage_fingerprint() {
        let artifact = toy_artifact();
        let map = artifact_grid(&artifact);
        let fingerprint = format!("{:016x}", map.fingerprint());
        let stamped = toy_artifact().with_bin_map(Some(map));
        let lineage = stamped
            .provenance
            .lineage
            .as_ref()
            .expect("lineage created");
        assert_eq!(lineage.bin_map_fingerprint.as_deref(), Some(&*fingerprint));
        assert!(stamped.quantization_map().is_some());
    }

    #[test]
    fn publish_quantizes_only_with_a_verified_fingerprint() {
        // Stamped map: the publish compiles the quantized layout.
        let artifact = toy_artifact();
        let map = artifact_grid(&artifact);
        let stamped = toy_artifact().with_bin_map(Some(map.clone()));
        let slot = ModelSlot::new();
        stamped.publish_to(&slot);
        assert!(slot.compiled().unwrap().quantized.is_some());

        // A map attached by direct field assignment carries no fingerprint:
        // flat-only publish, no silent requantization.
        let mut legacy = toy_artifact();
        legacy.bin_map = Some(map.clone());
        assert!(legacy.quantization_map().is_none());
        let slot = ModelSlot::new();
        legacy.publish_to(&slot);
        assert!(slot.compiled().unwrap().quantized.is_none());

        // A fingerprint recorded for a *different* grid must not authorize
        // this one.
        let mut skewed = toy_artifact().with_bin_map(Some(map));
        skewed
            .provenance
            .lineage
            .as_mut()
            .unwrap()
            .bin_map_fingerprint = Some("deadbeefdeadbeef".into());
        assert!(skewed.quantization_map().is_none());
        let slot = ModelSlot::new();
        skewed.publish_to(&slot);
        assert!(slot.compiled().unwrap().quantized.is_none());
    }

    #[test]
    fn store_saves_resolves_latest_and_prunes() {
        let dir = temp_store_dir("retention");
        let store = ArtifactStore::with_retention(&dir, 2).unwrap();
        let mut artifact = toy_artifact();
        for window in 0..4 {
            artifact.provenance.window = window;
            store.save(&artifact).unwrap();
        }
        let kept = store.artifacts().unwrap();
        assert_eq!(kept.len(), 2, "retention must prune to 2");
        assert_eq!(kept[0].0, 3);
        assert_eq!(kept[1].0, 4);
        let latest = store.load_latest().unwrap();
        assert_eq!(latest.provenance.window, 3, "latest = last saved");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_reports_missing() {
        let dir = temp_store_dir("empty");
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(matches!(store.load_latest(), Err(PersistError::Missing(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashed_save_never_exposes_partial_latest() {
        let dir = temp_store_dir("crash");
        let mut store = ArtifactStore::open(&dir).unwrap();
        let mut artifact = toy_artifact();
        artifact.provenance.window = 0;
        store.save(&artifact).unwrap();

        // Crash between temp write and rename: save errors, the temp file
        // is left behind, but the store still resolves the previous
        // artifact and loads it cleanly.
        store.set_crash_point(CrashPoint::BeforeRename);
        artifact.provenance.window = 1;
        assert!(store.save(&artifact).is_err());
        let stale_temp_exists = fs::read_dir(&dir).unwrap().any(|e| {
            e.unwrap()
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(TMP_PREFIX))
        });
        assert!(stale_temp_exists, "crash must leave the temp file behind");
        let survivor = store.load_latest().unwrap();
        assert_eq!(survivor.provenance.window, 0);

        // The next successful save supersedes and cleans up the stale temp.
        store.set_crash_point(CrashPoint::None);
        artifact.provenance.window = 2;
        store.save(&artifact).unwrap();
        assert_eq!(store.load_latest().unwrap().provenance.window, 2);
        let stale_temp_exists = fs::read_dir(&dir).unwrap().any(|e| {
            e.unwrap()
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(TMP_PREFIX))
        });
        assert!(!stale_temp_exists, "recovery must clean stale temp files");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_helpers_produce_detectable_damage() {
        let dir = temp_store_dir("damage");
        let store = ArtifactStore::open(&dir).unwrap();
        let artifact = toy_artifact();

        let path = store.save(&artifact).unwrap();
        tear_artifact(&path).unwrap();
        assert!(matches!(
            LfoArtifact::load_file(&path),
            Err(PersistError::Truncated { .. })
        ));

        let path = store.save(&artifact).unwrap();
        flip_artifact_bit(&path, 12345).unwrap();
        assert!(matches!(
            LfoArtifact::load_file(&path),
            Err(PersistError::ChecksumMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
