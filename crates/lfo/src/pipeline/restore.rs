//! Warm-start restore: load the last persisted artifact and re-run the
//! deployment gates before letting it near the [`ModelSlot`].
//!
//! A restore is a rollout with extra failure modes: besides the gates a
//! live candidate faces, the artifact can be missing, torn, bit-flipped,
//! version-skewed, or trained under an incompatible configuration. The
//! ladder here is strictest-first:
//!
//! 1. **Integrity** — envelope magic, format version, payload byte count,
//!    content checksum, model/config consistency ([`LfoArtifact`] refuses
//!    to parse damaged bytes; see [`crate::persist`]).
//! 2. **Compatibility** — the artifact's feature schema must match the
//!    requesting run's (a model scoring the wrong feature vector would be
//!    silently garbage).
//! 3. **Accuracy self-check** — when [`GateConfig::accuracy`] is on, the
//!    model must reproduce (within the gate margin) the holdout accuracy
//!    recorded at save time on the holdout rows stored *in* the artifact.
//! 4. **Drift gate** — when [`GateConfig::drift`] is on, the PSI between
//!    the artifact's stored training sample and probe features derived
//!    from the head of the *new* run's trace must stay under the gate
//!    threshold (the free-bytes column is excluded on both sides, as in
//!    the live gate).
//!
//! Every outcome — restored or not — lands in a
//! [`RestoreReport`](super::RestoreReport); failure always degrades to the
//! cold LRU start, never an abort.

use std::path::Path;
use std::sync::Arc;

use cdn_trace::Request;
use gbdt::{BinMap, Dataset, Model};

use crate::drift::FeatureSketch;
use crate::features::TrackerSnapshot;
use crate::persist::{ArtifactStore, LfoArtifact, PersistError, Provenance};
use crate::train::evaluate;

use super::report::{RestoreReport, RolloutDecision};
use super::stages::strip_free_bytes;
use super::PipelineConfig;

/// A restore attempt that never got a usable artifact.
fn skipped(error: PersistError, detail: String) -> RestoreReport {
    RestoreReport {
        decision: RolloutDecision::SkippedFault,
        error: Some(error),
        detail,
        drift_psi: None,
        holdout_accuracy: None,
        recorded_accuracy: None,
        provenance: None,
    }
}

/// Probe feature rows from the head of the new run's trace: a fresh
/// tracker over at most one window of requests — the restore-time stand-in
/// for the live sample the in-run gate uses.
///
/// Two deliberate differences from the in-run sample. First, the leading
/// three quarters of the probe span only warm the tracker: a fresh tracker
/// emits missing-gap sentinels for every object, and sampling those reads
/// as massive PSI against the artifact's (warm-tracked) training sample
/// even when the traffic is unchanged — the gate is after distribution
/// shift, not the restart's warm-up transient. Second, the probe samples
/// every request rather than the gate's serving stride: this runs once at
/// startup, and a sparse sample's bin noise alone can push PSI past the
/// threshold.
fn probe_features(requests: &[Request], config: &PipelineConfig) -> Vec<Vec<f32>> {
    let mut tracker = config.lfo.tracker();
    let probe = requests.len().min(config.window.max(1));
    let warmup = probe * 3 / 4;
    let mut rows = Vec::with_capacity(probe - warmup);
    for (i, request) in requests[..probe].iter().enumerate() {
        if i >= warmup {
            // The cache is empty at restore time, so free = capacity; the
            // column is stripped before the PSI comparison anyway.
            rows.push(tracker.features(request, config.cache_size));
        }
        tracker.record(request);
    }
    rows
}

/// Everything a warm start recovers from an artifact: the model + cutoff
/// to publish, the tracker snapshot (so restored features are warm), and —
/// when the artifact was written by an incremental pipeline — the frozen
/// bin map and base window, so retraining resumes incrementally instead of
/// paying a full rebuild on the first post-restart window.
pub(super) struct RestoredModel {
    pub model: Arc<Model>,
    pub cutoff: f64,
    pub tracker: TrackerSnapshot,
    pub bin_map: Option<BinMap>,
}

/// Attempts to restore the newest artifact from `dir` under `config`'s
/// gates. On success returns the [`RestoredModel`] to publish (the caller
/// installs it into the slot before window 0); the report records the
/// decision either way.
pub(super) fn attempt_restore(
    dir: &Path,
    requests: &[Request],
    config: &PipelineConfig,
) -> (Option<RestoredModel>, RestoreReport) {
    let store = match ArtifactStore::open(dir) {
        Ok(store) => store,
        Err(error) => {
            let detail = format!("artifact store unavailable: {error}");
            return (None, skipped(error, detail));
        }
    };
    let artifact = match store.load_latest() {
        Ok(artifact) => artifact,
        Err(error) => {
            let detail = format!("no usable artifact: {error}");
            return (None, skipped(error, detail));
        }
    };

    // Compatibility: the model must score this run's feature vector.
    if artifact.config.num_features() != config.lfo.num_features() {
        let why = format!(
            "artifact has {} features, this run expects {}",
            artifact.config.num_features(),
            config.lfo.num_features()
        );
        let mut report = skipped(PersistError::Incompatible(why.clone()), why);
        report.provenance = Some(artifact.provenance.clone());
        return (None, report);
    }

    let LfoArtifact {
        model,
        deployed_cutoff,
        provenance,
        validation,
        tracker,
        bin_map,
        ..
    } = artifact;
    let mut report = RestoreReport {
        decision: RolloutDecision::Deployed,
        error: None,
        detail: describe(&provenance),
        drift_psi: None,
        holdout_accuracy: None,
        recorded_accuracy: None,
        provenance: Some(provenance),
    };

    // Accuracy self-check: the restored model must reproduce the holdout
    // accuracy recorded at save time (a damaged-but-parseable model, or a
    // cutoff that no longer fits, fails here).
    if let Some(gate) = config.gates.accuracy {
        if !validation.holdout_rows.is_empty() {
            match Dataset::from_rows(
                validation.holdout_rows.clone(),
                validation.holdout_labels.clone(),
            ) {
                Ok(holdout) => {
                    let accuracy =
                        1.0 - evaluate(&model, &holdout, deployed_cutoff).error_fraction();
                    report.holdout_accuracy = Some(accuracy);
                    report.recorded_accuracy = Some(validation.holdout_accuracy);
                    if accuracy + gate.margin < validation.holdout_accuracy {
                        report.decision = RolloutDecision::RejectedAccuracy;
                        report.detail = format!(
                            "holdout accuracy {accuracy:.4} below recorded {:.4} - margin",
                            validation.holdout_accuracy
                        );
                        return (None, report);
                    }
                }
                Err(e) => {
                    report.decision = RolloutDecision::SkippedFault;
                    report.error = Some(PersistError::Incompatible(format!(
                        "stored holdout unusable: {e}"
                    )));
                    report.detail = "stored holdout unusable".into();
                    return (None, report);
                }
            }
        }
    }

    // Drift gate: the artifact's training distribution vs. this run's
    // traffic, exactly as the in-run gate compares train vs. live.
    if let Some(gate) = config.gates.drift {
        if !validation.train_sample.is_empty() && !requests.is_empty() {
            let reference: Vec<Vec<f32>> = validation
                .train_sample
                .iter()
                .map(|row| strip_free_bytes(row.clone()))
                .collect();
            let probe: Vec<Vec<f32>> = probe_features(requests, config)
                .into_iter()
                .map(strip_free_bytes)
                .collect();
            if let Ok(per_feature) = FeatureSketch::fit(&reference).and_then(|s| s.psi(&probe)) {
                let (worst, score) = per_feature
                    .iter()
                    .copied()
                    .enumerate()
                    .fold((0, 0.0), |acc, (i, v)| if v > acc.1 { (i, v) } else { acc });
                report.drift_psi = Some(score);
                if score > gate.max_psi {
                    // The free-bytes column was stripped, so names shift
                    // down by one past it.
                    let names = config.lfo.feature_names();
                    let name = names
                        .get(if worst < 2 { worst } else { worst + 1 })
                        .cloned()
                        .unwrap_or_else(|| format!("feature {worst}"));
                    report.decision = RolloutDecision::RejectedDrift;
                    report.detail = format!(
                        "probe PSI {score:.3} on '{name}' above gate {:.3}",
                        gate.max_psi
                    );
                    return (None, report);
                }
            }
        }
    }

    (
        Some(RestoredModel {
            model: Arc::new(model),
            cutoff: deployed_cutoff,
            tracker,
            bin_map,
        }),
        report,
    )
}

fn describe(provenance: &Provenance) -> String {
    format!(
        "restored model from window {} (trace '{}', slot v{})",
        provenance.window, provenance.trace_id, provenance.slot_version
    )
}
