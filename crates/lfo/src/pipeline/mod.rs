//! The sliding-window pipeline (paper Figure 2), staged.
//!
//! "LFO records a sliding window of consecutive requests (W\[t\]). For the
//! requests in W\[t\], LFO calculates OPT's decisions and derives a vector
//! of online features. LFO then trains a caching policy that maps the
//! online features to OPT's decisions. The trained policy is then used over
//! the next window, t + 1, during which LFO again records the requests."
//!
//! The pipeline simultaneously (a) serves requests through the live
//! [`LfoCache`](crate::LfoCache) (untrained ⇒ LRU fallback in the first
//! window) and (b) evaluates each window's model against the *next*
//! window's OPT decisions — the paper's prediction-error metric ("LFO is
//! trained on one part e.g. requests 0–1M and evaluated on the ensuing
//! part").
//!
//! [`run_pipeline`] runs the staged architecture — Collector → Labeler
//! (OPT) → Trainer → Deployer, with labeling/training off the serving
//! path on background threads (see [`stages`]) and models rolled out via an
//! atomic [`ModelSlot`](crate::ModelSlot) swap. The default
//! [`DeployMode::Boundary`] reproduces the serial schedule bit-for-bit;
//! [`run_pipeline_serial`] keeps the single-threaded reference
//! implementation for comparison and testing.

mod report;
mod restore;
mod stages;

pub use report::{
    PipelineReport, RestoreReport, RolloutDecision, StageTiming, TrainKind, WindowReport,
};

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cdn_cache::{simulate, IntervalMetrics, SimConfig};
use cdn_trace::Request;
use gbdt::Model;
use opt::{
    compute_opt, compute_opt_pruned, compute_opt_segmented_parallel, OptConfig, OptError, OptResult,
};

use crate::config::{LfoConfig, RetrainConfig};
use crate::faults::FaultPlan;
use crate::guardrail::GuardrailConfig;
use crate::labels::build_training_set;
use crate::policy::LfoCache;
use crate::train::{equalize_cutoff, evaluate, train_window};

use report::merge;

/// When a freshly trained model becomes visible to the serving cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeployMode {
    /// Deploy at the window boundary: the collector waits for window *t*'s
    /// model before serving window *t+1*. Per-window metrics are
    /// bit-identical to [`run_pipeline_serial`].
    #[default]
    Boundary,
    /// Deploy the moment training finishes: the trainer publishes into the
    /// shared [`ModelSlot`](crate::ModelSlot) and the cache picks the model
    /// up mid-window on its next request. Lowest time-to-rollout, at the
    /// cost of run-to-run timing-dependent (but structurally valid) metrics.
    Async,
}

/// Retry, backoff, and deadline budgets for the labeler and trainer stages.
///
/// Stage supervision treats the learning loop as an unreliable component:
/// a failed or panicking stage is retried with bounded backoff, and on
/// exhaustion the *window* is skipped — the collector keeps serving on the
/// incumbent model (or the LRU fallback) instead of the run aborting.
#[derive(Clone, Copy, Debug)]
pub struct SupervisionConfig {
    /// Attempts beyond the first, per window per stage.
    pub max_retries: u32,
    /// Base backoff between attempts; attempt *k* sleeps `k × backoff`.
    pub backoff: Duration,
    /// Per-window training deadline: a model that finishes training later
    /// than this is discarded (the window rolls out nothing) instead of
    /// deploying stale. `None` disables the deadline.
    pub train_deadline: Option<Duration>,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            max_retries: 2,
            backoff: Duration::from_millis(5),
            train_deadline: None,
        }
    }
}

/// The holdout-accuracy rollout gate.
///
/// When enabled, the trainer holds the trailing `holdout_fraction` of each
/// window's rows out of training and compares the candidate's accuracy on
/// that holdout against the incumbent's; a candidate that undershoots the
/// incumbent by more than `margin` is rejected (the incumbent keeps
/// serving). Note the holdout shrinks the training set, so gated runs are
/// not bit-identical to ungated ones.
#[derive(Clone, Copy, Debug)]
pub struct AccuracyGate {
    /// Fraction of each window's rows held out for validation.
    pub holdout_fraction: f64,
    /// Allowed accuracy shortfall vs. the incumbent.
    pub margin: f64,
}

impl Default for AccuracyGate {
    fn default() -> Self {
        AccuracyGate {
            holdout_fraction: 0.2,
            margin: 0.01,
        }
    }
}

/// The PSI drift rollout gate.
///
/// When enabled, the collector samples live feature rows as it serves and
/// the trainer fits a [`crate::FeatureSketch`] on each candidate's training
/// rows; a candidate whose training distribution scores a max per-feature
/// PSI above `max_psi` against the live sample is rejected. The free-bytes
/// feature is excluded from the comparison (training rows carry OPT's
/// occupancy, live rows the real cache's — a systematic, benign offset).
#[derive(Clone, Copy, Debug)]
pub struct DriftGate {
    /// Reject above this max per-feature PSI (0.25 = "shifted" in the
    /// standard interpretation).
    pub max_psi: f64,
    /// Serve-side feature sampling stride (every Nth request).
    pub sample_every: usize,
}

impl Default for DriftGate {
    fn default() -> Self {
        DriftGate {
            max_psi: 0.25,
            sample_every: 16,
        }
    }
}

/// Validation gates between the trainer and the serving [`crate::ModelSlot`].
///
/// Both gates default to off, preserving the unconditional-rollout
/// behaviour (and bit-identical boundary determinism) of the ungated
/// pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct GateConfig {
    /// Holdout accuracy vs. the incumbent.
    pub accuracy: Option<AccuracyGate>,
    /// PSI drift between training and live features.
    pub drift: Option<DriftGate>,
}

impl GateConfig {
    /// Whether any gate is enabled.
    pub fn enabled(&self) -> bool {
        self.accuracy.is_some() || self.drift.is_some()
    }
}

/// Durable persistence of accepted models
/// ([`PipelineConfig::persist`]).
///
/// When set, the Deployer writes every *accepted* model — after its
/// [`crate::ModelSlot`] swap — into an [`crate::ArtifactStore`] at `dir`
/// via the atomic write protocol, so a later run can warm-start from the
/// last good model ([`PipelineConfig::warm_start`]). Persistence failures
/// are recorded ([`WindowReport::persisted`] stays `false`), never fatal.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// Artifact store directory (created if needed).
    pub dir: PathBuf,
    /// Artifacts kept after each save (oldest pruned first).
    pub retain: usize,
    /// Trace/run identifier recorded in each artifact's provenance.
    pub trace_id: String,
}

impl PersistConfig {
    /// Persistence into `dir` with default retention and no trace id.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            retain: crate::persist::ArtifactStore::DEFAULT_RETAIN,
            trace_id: String::new(),
        }
    }

    /// Sets the provenance trace id.
    pub fn with_trace_id(mut self, trace_id: impl Into<String>) -> Self {
        self.trace_id = trace_id.into();
        self
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Requests per window (the paper uses 1M on the production trace).
    pub window: usize,
    /// Cache capacity in bytes.
    pub cache_size: u64,
    /// LFO learner/policy settings.
    pub lfo: LfoConfig,
    /// OPT time-axis segment size; 0 = exact solve per window.
    pub opt_segment: usize,
    /// OPT rank-pruning keep fraction; 1.0 = no pruning.
    pub opt_prune: f64,
    /// Model rollout discipline for the staged pipeline.
    pub deploy: DeployMode,
    /// Scoped threads for intra-stage parallelism (segmented OPT solves and
    /// the GBDT grower's per-feature split search); 0 = one per available
    /// core, 1 = serial. Any value yields bit-identical results.
    pub threads: usize,
    /// Scripted fault injection (default: empty, injects nothing).
    pub faults: FaultPlan,
    /// Stage retry/backoff/deadline budgets.
    pub supervision: SupervisionConfig,
    /// Rollout validation gates (default: disabled).
    pub gates: GateConfig,
    /// Durable persistence of accepted models (default: off).
    pub persist: Option<PersistConfig>,
    /// Warm-start from the newest artifact in this store directory: the
    /// artifact is integrity-checked, re-validated through the same
    /// [`GateConfig`] gates (accuracy self-check on its stored holdout,
    /// PSI of its training sample against this run's probe features), and
    /// only then published to the [`crate::ModelSlot`] before window 0. A
    /// missing, damaged, or rejected artifact degrades to the cold LRU
    /// start with the decision recorded in
    /// [`PipelineReport::restore`] — never an abort.
    pub warm_start: Option<PathBuf>,
    /// Incremental warm-start retraining policy (default: disabled —
    /// every window is a full from-scratch rebuild, which reproduces the
    /// original scratch pipeline bit for bit).
    pub retrain: RetrainConfig,
    /// Runtime learned-vs-LRU guardrail on the serving cache (DESIGN.md
    /// §13; default: off, which leaves serving untouched). Trips are
    /// reported per window, forced-LRU time counts as degraded service,
    /// and — when [`GuardrailConfig::trip_forces_scratch`] is set — a trip
    /// makes the trainer's next candidate a from-scratch rebuild. When a
    /// warm start restores an artifact, the guardrail starts in shadow
    /// probation: the restored model serves LRU until it proves the bound
    /// on shadow-scored decisions. Like the fault/gate planes, the serial
    /// reference ignores this knob.
    pub guardrail: Option<GuardrailConfig>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            window: 100_000,
            cache_size: 64 * 1024 * 1024,
            lfo: LfoConfig::default(),
            opt_segment: 0,
            opt_prune: 1.0,
            deploy: DeployMode::Boundary,
            threads: 1,
            faults: FaultPlan::default(),
            supervision: SupervisionConfig::default(),
            gates: GateConfig::default(),
            persist: None,
            warm_start: None,
            retrain: RetrainConfig::default(),
            guardrail: None,
        }
    }
}

impl PipelineConfig {
    /// The effective intra-stage thread count (resolving 0 = auto).
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Solves OPT for one window with the configured approximation, matching
/// the serial reference exactly (the parallel segmented solver merges in
/// segment order, so its result equals the serial one bit-for-bit).
fn solve_opt(
    window: &[Request],
    opt_config: &OptConfig,
    config: &PipelineConfig,
    threads: usize,
) -> Result<OptResult, OptError> {
    if config.opt_prune < 1.0 {
        Ok(compute_opt_pruned(window, opt_config, config.opt_prune)?.result)
    } else if config.opt_segment > 0 {
        compute_opt_segmented_parallel(window, opt_config, config.opt_segment, threads)
    } else {
        compute_opt(window, opt_config)
    }
}

/// Runs the Figure 2 loop over `requests` with the staged architecture:
/// labeling and training happen on background threads while the collector
/// serves, and models roll out per [`PipelineConfig::deploy`].
///
/// The only error is an empty trace. Per-window failures — a failing OPT
/// solve, a trainer panic, an injected fault — are handled by stage
/// supervision: bounded retries, then the window is *skipped* and the
/// cache keeps serving on its incumbent model (or the LRU fallback), with
/// the decision recorded in the [`WindowReport`].
pub fn run_pipeline(
    requests: &[Request],
    config: &PipelineConfig,
) -> Result<PipelineReport, OptError> {
    stages::run_staged(requests, config)
}

/// The single-threaded reference implementation of the Figure 2 loop.
///
/// Kept for determinism testing and wall-clock comparison: under
/// [`DeployMode::Boundary`] (with an empty [`FaultPlan`] and gates
/// disabled) the staged [`run_pipeline`] produces bit-identical per-window
/// metrics to this function. The reference ignores the fault-tolerance
/// control plane ([`PipelineConfig::faults`], `supervision`, `gates`) and
/// the durability plane (`persist`, `warm_start`) — it *is* the
/// "everything works" schedule the staged pipeline degrades from, and it
/// still aborts on the first [`OptError`].
pub fn run_pipeline_serial(
    requests: &[Request],
    config: &PipelineConfig,
) -> Result<PipelineReport, OptError> {
    if requests.is_empty() {
        return Err(OptError::EmptyWindow);
    }
    let opt_config = OptConfig {
        cache_size: config.cache_size,
        cost_model: config.lfo.cost_model,
        ..OptConfig::bhr(config.cache_size)
    };

    let mut cache = LfoCache::new(config.cache_size, config.lfo.clone());
    let mut training_tracker = config.lfo.tracker();
    let mut report = PipelineReport {
        windows: Vec::new(),
        live_total: IntervalMetrics::default(),
        live_trained: IntervalMetrics::default(),
        final_model: None,
        restore: None,
    };
    let mut previous_model: Option<Arc<Model>> = None;

    for (index, window) in requests.chunks(config.window.max(1)).enumerate() {
        let had_model = cache.has_model();
        let slot_version = cache.slot().version();

        // (a) Serve the window live through the LFO cache.
        let serve_started = Instant::now();
        let live = simulate(&mut cache, window, &SimConfig::default()).measured;
        let serve = serve_started.elapsed();

        // (b) Compute OPT for the window just recorded, and (c) build the
        // training set (advances the training tracker).
        let label_started = Instant::now();
        let opt = solve_opt(window, &opt_config, config, 1)?;
        let data = build_training_set(window, &opt, &mut training_tracker, config.cache_size);
        let label = label_started.elapsed();

        // (d) Evaluate the previous model on this window (paper's
        // train-on-t, test-on-t+1 protocol).
        let train_started = Instant::now();
        let (prediction_error, false_positive, false_negative) = match &previous_model {
            Some(model) => {
                let confusion = evaluate(model, &data, config.lfo.cutoff);
                (
                    Some(confusion.error_fraction()),
                    Some(confusion.false_positive_fraction()),
                    Some(confusion.false_negative_fraction()),
                )
            }
            None => (None, None, None),
        };

        // (e) Train on this window; deploy for the next — optionally with
        // a re-tuned cutoff (§3's FP/FN equalization).
        let trained = train_window(&data, &config.lfo);
        let deployed_cutoff = match config.lfo.cutoff_mode {
            crate::CutoffMode::Fixed(c) => c,
            crate::CutoffMode::EqualizeErrorRates => {
                equalize_cutoff(&trained.train_probs, &trained.train_labels)
            }
        };
        let train = train_started.elapsed();
        cache.set_cutoff(deployed_cutoff);
        let num_trees = trained.model.trees().len();
        let model = Arc::new(trained.model);
        cache.install_model(Arc::clone(&model));
        previous_model = Some(Arc::clone(&model));
        report.final_model = Some(model);

        merge(&mut report.live_total, &live);
        if had_model {
            merge(&mut report.live_trained, &live);
        }
        report.windows.push(WindowReport {
            index,
            requests: window.len(),
            live,
            had_model,
            slot_version,
            prediction_error,
            false_positive,
            false_negative,
            train_accuracy: Some(trained.train_accuracy),
            opt_bhr: Some(opt.bhr()),
            opt_ohr: Some(opt.ohr()),
            deployed_cutoff: Some(deployed_cutoff),
            rollout: RolloutDecision::Deployed,
            retries: 0,
            drift_psi: None,
            holdout_accuracy: None,
            incumbent_accuracy: None,
            persisted: false,
            train_kind: report::TrainKind::Scratch,
            model_trees: Some(num_trees),
            guardrail_trips: 0,
            guardrail_forced_requests: 0,
            timing: StageTiming {
                serve,
                label,
                train,
                deploy_wait: Duration::ZERO,
            },
        });
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::{GeneratorConfig, TraceGenerator};

    fn small_config(window: usize, cache: u64) -> PipelineConfig {
        PipelineConfig {
            window,
            cache_size: cache,
            ..Default::default()
        }
    }

    /// Asserts every serial-reproducible field of two reports is identical,
    /// bit-for-bit where floating point is involved. Timings are excluded —
    /// they are the only fields allowed to differ.
    fn assert_reports_identical(a: &PipelineReport, b: &PipelineReport) {
        assert_eq!(a.windows.len(), b.windows.len());
        for (wa, wb) in a.windows.iter().zip(&b.windows) {
            assert_eq!(wa.index, wb.index);
            assert_eq!(wa.requests, wb.requests);
            assert_eq!(wa.live.requests, wb.live.requests);
            assert_eq!(wa.live.hits, wb.live.hits);
            assert_eq!(wa.live.total_bytes, wb.live.total_bytes);
            assert_eq!(wa.live.hit_bytes, wb.live.hit_bytes);
            assert_eq!(wa.had_model, wb.had_model);
            assert_eq!(wa.slot_version, wb.slot_version);
            assert_eq!(wa.rollout, wb.rollout);
            assert_eq!(
                wa.prediction_error.map(f64::to_bits),
                wb.prediction_error.map(f64::to_bits),
                "window {}",
                wa.index
            );
            assert_eq!(
                wa.false_positive.map(f64::to_bits),
                wb.false_positive.map(f64::to_bits)
            );
            assert_eq!(
                wa.false_negative.map(f64::to_bits),
                wb.false_negative.map(f64::to_bits)
            );
            assert_eq!(
                wa.train_accuracy.map(f64::to_bits),
                wb.train_accuracy.map(f64::to_bits)
            );
            assert_eq!(wa.opt_bhr.map(f64::to_bits), wb.opt_bhr.map(f64::to_bits));
            assert_eq!(wa.opt_ohr.map(f64::to_bits), wb.opt_ohr.map(f64::to_bits));
            assert_eq!(
                wa.deployed_cutoff.map(f64::to_bits),
                wb.deployed_cutoff.map(f64::to_bits)
            );
        }
        assert_eq!(a.live_total.hit_bytes, b.live_total.hit_bytes);
        assert_eq!(a.live_trained.hit_bytes, b.live_trained.hit_bytes);
        assert_eq!(
            a.mean_prediction_accuracy().map(f64::to_bits),
            b.mean_prediction_accuracy().map(f64::to_bits)
        );
    }

    #[test]
    fn empty_trace_rejected() {
        assert!(run_pipeline(&[], &PipelineConfig::default()).is_err());
        assert!(run_pipeline_serial(&[], &PipelineConfig::default()).is_err());
    }

    #[test]
    fn window_structure_and_model_rollout() {
        let trace = TraceGenerator::new(GeneratorConfig::small(1, 9_000)).generate();
        let report = run_pipeline(trace.requests(), &small_config(3_000, 4 * 1024 * 1024)).unwrap();
        assert_eq!(report.windows.len(), 3);
        assert!(!report.windows[0].had_model, "window 0 must be untrained");
        assert!(report.windows[1].had_model);
        assert!(report.windows[2].had_model);
        assert!(report.windows[0].prediction_error.is_none());
        assert!(report.windows[1].prediction_error.is_some());
        assert!(report.final_model.is_some());
    }

    #[test]
    fn prediction_accuracy_is_high() {
        let trace = TraceGenerator::new(GeneratorConfig::small(2, 15_000)).generate();
        let report = run_pipeline(trace.requests(), &small_config(5_000, 8 * 1024 * 1024)).unwrap();
        let acc = report.mean_prediction_accuracy().unwrap();
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn live_metrics_partition_into_windows() {
        let trace = TraceGenerator::new(GeneratorConfig::small(3, 6_000)).generate();
        let report = run_pipeline(trace.requests(), &small_config(2_000, 2 * 1024 * 1024)).unwrap();
        let sum: u64 = report.windows.iter().map(|w| w.live.requests).sum();
        assert_eq!(sum, 6_000);
        assert_eq!(report.live_total.requests, 6_000);
        assert_eq!(report.live_trained.requests, 4_000);
    }

    #[test]
    fn equalized_cutoff_mode_tunes_per_window() {
        let trace = TraceGenerator::new(GeneratorConfig::small(6, 6_000)).generate();
        let mut config = small_config(3_000, 4 * 1024 * 1024);
        config.lfo.cutoff_mode = crate::CutoffMode::EqualizeErrorRates;
        let report = run_pipeline(trace.requests(), &config).unwrap();
        for w in &report.windows {
            assert!((0.0..=1.0).contains(&w.deployed_cutoff.unwrap()));
        }
        // At least one window should deviate from the fixed 0.5.
        assert!(
            report
                .windows
                .iter()
                .any(|w| (w.deployed_cutoff.unwrap() - 0.5).abs() > 1e-9),
            "tuning never moved the cutoff"
        );
    }

    #[test]
    fn pruned_opt_pipeline_also_works() {
        let trace = TraceGenerator::new(GeneratorConfig::small(4, 6_000)).generate();
        let mut config = small_config(3_000, 4 * 1024 * 1024);
        config.opt_prune = 0.5;
        let report = run_pipeline(trace.requests(), &config).unwrap();
        assert_eq!(report.windows.len(), 2);
        assert!(report.mean_prediction_accuracy().unwrap() > 0.7);
    }

    #[test]
    fn segmented_opt_pipeline_also_works() {
        let trace = TraceGenerator::new(GeneratorConfig::small(5, 6_000)).generate();
        let mut config = small_config(3_000, 4 * 1024 * 1024);
        config.opt_segment = 1_000;
        let report = run_pipeline(trace.requests(), &config).unwrap();
        assert_eq!(report.windows.len(), 2);
    }

    #[test]
    fn staged_boundary_matches_serial_bit_for_bit() {
        let trace = TraceGenerator::new(GeneratorConfig::small(8, 8_000)).generate();
        let mut config = small_config(2_000, 4 * 1024 * 1024);
        config.opt_segment = 500;
        config.threads = 3;
        let serial = run_pipeline_serial(trace.requests(), &config).unwrap();
        let staged = run_pipeline(trace.requests(), &config).unwrap();
        assert_reports_identical(&serial, &staged);
    }

    #[test]
    fn staged_boundary_matches_serial_with_tuned_cutoffs() {
        let trace = TraceGenerator::new(GeneratorConfig::small(9, 6_000)).generate();
        let mut config = small_config(1_500, 4 * 1024 * 1024);
        config.lfo.cutoff_mode = crate::CutoffMode::EqualizeErrorRates;
        config.threads = 2;
        let serial = run_pipeline_serial(trace.requests(), &config).unwrap();
        let staged = run_pipeline(trace.requests(), &config).unwrap();
        assert_reports_identical(&serial, &staged);
    }

    #[test]
    fn async_deploy_survives_small_uneven_windows() {
        // 8 windows of 700 with a 100-request final partial window; async
        // rollout + auto thread count. Metrics are timing-dependent, but the
        // structure must hold.
        let trace = TraceGenerator::new(GeneratorConfig::small(10, 5_000)).generate();
        let mut config = small_config(700, 2 * 1024 * 1024);
        config.deploy = DeployMode::Async;
        config.threads = 0;
        config.opt_segment = 200;
        let report = run_pipeline(trace.requests(), &config).unwrap();
        assert_eq!(report.windows.len(), 8);
        assert_eq!(report.windows.last().unwrap().requests, 100);
        let sum: u64 = report.windows.iter().map(|w| w.live.requests).sum();
        assert_eq!(sum, 5_000);
        assert!(report.final_model.is_some());
        for (position, w) in report.windows.iter().enumerate() {
            assert_eq!(w.index, position);
            let bhr = w.opt_bhr.unwrap();
            assert!((0.0..=1.0).contains(&bhr), "opt_bhr {bhr}");
            assert!((0.0..=1.0).contains(&w.opt_ohr.unwrap()));
            assert!((0.0..=1.0).contains(&w.train_accuracy.unwrap()));
            assert_eq!(w.rollout, RolloutDecision::Deployed);
            if let Some(e) = w.prediction_error {
                assert!((0.0..=1.0).contains(&e));
            }
            assert_eq!(w.timing.deploy_wait, Duration::ZERO);
        }
        // Every window after the first *may* have a model; the last ones
        // almost surely do. At minimum window 0 is untrained.
        assert!(!report.windows[0].had_model);
    }

    #[test]
    fn mean_prediction_accuracy_weights_by_request_count() {
        let window = |index: usize, requests: usize, error: Option<f64>| WindowReport {
            index,
            requests,
            live: IntervalMetrics::default(),
            had_model: index > 0,
            slot_version: 2 * index as u64,
            prediction_error: error,
            false_positive: None,
            false_negative: None,
            train_accuracy: Some(1.0),
            opt_bhr: Some(0.5),
            opt_ohr: Some(0.5),
            deployed_cutoff: Some(0.5),
            rollout: RolloutDecision::Deployed,
            retries: 0,
            drift_psi: None,
            holdout_accuracy: None,
            incumbent_accuracy: None,
            persisted: false,
            train_kind: TrainKind::default(),
            model_trees: None,
            guardrail_trips: 0,
            guardrail_forced_requests: 0,
            timing: StageTiming::default(),
        };
        let report = PipelineReport {
            windows: vec![
                window(0, 1_000, None),
                window(1, 1_000, Some(0.10)),
                window(2, 100, Some(0.90)),
            ],
            live_total: IntervalMetrics::default(),
            live_trained: IntervalMetrics::default(),
            final_model: None,
            restore: None,
        };
        // Weighted: 1 - (0.10·1000 + 0.90·100) / 1100 ≈ 0.8273, not the
        // unweighted 1 - 0.5 = 0.5.
        let acc = report.mean_prediction_accuracy().unwrap();
        assert!((acc - (1.0 - 190.0 / 1100.0)).abs() < 1e-12, "acc {acc}");
    }

    #[test]
    fn total_timing_accumulates_all_stages() {
        let trace = TraceGenerator::new(GeneratorConfig::small(11, 4_000)).generate();
        let report = run_pipeline(trace.requests(), &small_config(2_000, 2 * 1024 * 1024)).unwrap();
        let total = report.total_timing();
        let serve_sum: Duration = report.windows.iter().map(|w| w.timing.serve).sum();
        assert_eq!(total.serve, serve_sum);
        assert!(total.label > Duration::ZERO);
        assert!(total.train > Duration::ZERO);
    }
}
