//! The staged pipeline: Collector → Labeler → Trainer → Deployer.
//!
//! The collector (main thread) serves windows through the live [`LfoCache`]
//! while a labeler thread computes OPT decisions + features and a trainer
//! thread fits each window's model. Because the labeler's feature tracker is
//! independent of the serving cache, labeling and training of window *t*
//! overlap with serving of window *t* itself.
//!
//! Under [`DeployMode::Boundary`] the collector blocks at each window
//! boundary until window *t*'s model is trained and deploys it before the
//! first request of window *t+1* — the exact schedule of
//! [`super::run_pipeline_serial`], so per-window metrics are bit-identical.
//! Under [`DeployMode::Async`] the trainer publishes straight into the
//! shared [`ModelSlot`] the moment training finishes, so a model can roll
//! out mid-window and the collector never blocks.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cdn_cache::{simulate, IntervalMetrics, SimConfig};
use cdn_trace::Request;
use gbdt::{Dataset, Model};
use opt::{OptConfig, OptError};

use crate::labels::build_training_set;
use crate::policy::{LfoCache, ModelSlot};
use crate::train::{equalize_cutoff, evaluate, train_window};

use super::report::{merge, PipelineReport, StageTiming, WindowReport};
use super::{solve_opt, DeployMode, PipelineConfig};

/// Labeler → trainer: one window's training set and OPT reference ratios.
struct LabeledWindow {
    data: Dataset,
    opt_bhr: f64,
    opt_ohr: f64,
    label_time: Duration,
}

/// Trainer → deployer: one window's model and training-side diagnostics.
struct TrainOutcome {
    index: usize,
    model: Arc<Model>,
    deployed_cutoff: f64,
    train_accuracy: f64,
    prediction_error: Option<f64>,
    false_positive: Option<f64>,
    false_negative: Option<f64>,
    opt_bhr: f64,
    opt_ohr: f64,
    label_time: Duration,
    train_time: Duration,
}

/// Collector-side view of one window.
struct ServePart {
    index: usize,
    requests: usize,
    live: IntervalMetrics,
    had_model: bool,
    serve_time: Duration,
    deploy_wait: Duration,
}

pub(super) fn run_staged(
    requests: &[Request],
    config: &PipelineConfig,
) -> Result<PipelineReport, OptError> {
    if requests.is_empty() {
        return Err(OptError::EmptyWindow);
    }
    let opt_config = OptConfig {
        cache_size: config.cache_size,
        cost_model: config.lfo.cost_model,
        ..OptConfig::bhr(config.cache_size)
    };
    let threads = config.resolved_threads();
    // The thread knob only trades wall-clock for cores: segmented OPT solves
    // merge in segment order and the GBDT grower reduces split candidates in
    // feature order, so results are bit-identical for any thread count.
    let mut lfo = config.lfo.clone();
    lfo.gbdt.num_threads = threads;

    let slot = ModelSlot::new();
    let mut cache = LfoCache::with_slot(config.cache_size, lfo.clone(), slot.clone());
    let windows: Vec<&[Request]> = requests.chunks(config.window.max(1)).collect();

    let mut serve_parts: Vec<ServePart> = Vec::with_capacity(windows.len());
    let mut outcomes: Vec<TrainOutcome> = Vec::with_capacity(windows.len());
    let mut opt_failure: Option<OptError> = None;

    std::thread::scope(|scope| {
        let (window_tx, window_rx) = channel::<(usize, &[Request])>();
        let (labeled_tx, labeled_rx) = channel::<Result<(usize, LabeledWindow), OptError>>();
        let (outcome_tx, outcome_rx) = channel::<Result<TrainOutcome, OptError>>();

        // Labeler: owns the training-side feature tracker (sequential state),
        // so windows must be labeled in order — but independently of serving.
        let labeler_lfo = lfo.clone();
        scope.spawn(move || {
            let mut tracker = labeler_lfo.tracker();
            while let Ok((index, window)) = window_rx.recv() {
                let started = Instant::now();
                let opt = match solve_opt(window, &opt_config, config, threads) {
                    Ok(opt) => opt,
                    Err(error) => {
                        let _ = labeled_tx.send(Err(error));
                        return;
                    }
                };
                let data = build_training_set(window, &opt, &mut tracker, config.cache_size);
                let labeled = LabeledWindow {
                    data,
                    opt_bhr: opt.bhr(),
                    opt_ohr: opt.ohr(),
                    label_time: started.elapsed(),
                };
                if labeled_tx.send(Ok((index, labeled))).is_err() {
                    return;
                }
            }
        });

        // Trainer: evaluates the previous window's model on the new labels
        // (the paper's train-on-t, test-on-t+1 protocol), trains this
        // window's model, and — in async mode — publishes it immediately.
        let trainer_slot = slot.clone();
        let trainer_lfo = lfo.clone();
        let deploy = config.deploy;
        scope.spawn(move || {
            let mut previous: Option<Arc<Model>> = None;
            while let Ok(message) = labeled_rx.recv() {
                let (index, labeled) = match message {
                    Ok(labeled) => labeled,
                    Err(error) => {
                        let _ = outcome_tx.send(Err(error));
                        return;
                    }
                };
                let started = Instant::now();
                let (prediction_error, false_positive, false_negative) = match &previous {
                    Some(model) => {
                        let confusion = evaluate(model, &labeled.data, trainer_lfo.cutoff);
                        (
                            Some(confusion.error_fraction()),
                            Some(confusion.false_positive_fraction()),
                            Some(confusion.false_negative_fraction()),
                        )
                    }
                    None => (None, None, None),
                };
                let trained = train_window(&labeled.data, &trainer_lfo);
                let deployed_cutoff = match trainer_lfo.cutoff_mode {
                    crate::CutoffMode::Fixed(c) => c,
                    crate::CutoffMode::EqualizeErrorRates => {
                        equalize_cutoff(&trained.train_probs, &trained.train_labels)
                    }
                };
                let model = Arc::new(trained.model);
                if deploy == DeployMode::Async {
                    // Mid-window rollout: the serving cache picks this up on
                    // its next request via the slot's version bump.
                    trainer_slot.publish(Arc::clone(&model), deployed_cutoff);
                }
                previous = Some(Arc::clone(&model));
                let outcome = TrainOutcome {
                    index,
                    model,
                    deployed_cutoff,
                    train_accuracy: trained.train_accuracy,
                    prediction_error,
                    false_positive,
                    false_negative,
                    opt_bhr: labeled.opt_bhr,
                    opt_ohr: labeled.opt_ohr,
                    label_time: labeled.label_time,
                    train_time: started.elapsed(),
                };
                if outcome_tx.send(Ok(outcome)).is_err() {
                    return;
                }
            }
        });

        // Collector/deployer (this thread). The whole trace is already in
        // memory, so every window is handed to the labeler upfront; the
        // labeler works ahead while earlier windows are still being served.
        for (index, window) in windows.iter().enumerate() {
            let _ = window_tx.send((index, window));
        }
        drop(window_tx);

        let sim = SimConfig::default();
        for (index, window) in windows.iter().enumerate() {
            let had_model = cache.has_model();
            let started = Instant::now();
            let live = simulate(&mut cache, window, &sim).measured;
            let serve_time = started.elapsed();

            let mut deploy_wait = Duration::ZERO;
            match config.deploy {
                DeployMode::Boundary => {
                    // Deterministic rollout: window t's model must be live
                    // before the first request of window t+1, exactly as in
                    // the serial reference.
                    let waited = Instant::now();
                    match outcome_rx.recv() {
                        Ok(Ok(outcome)) => {
                            debug_assert_eq!(outcome.index, index);
                            cache.set_cutoff(outcome.deployed_cutoff);
                            cache.install_model(Arc::clone(&outcome.model));
                            outcomes.push(outcome);
                        }
                        Ok(Err(error)) => opt_failure = Some(error),
                        Err(_) => {}
                    }
                    deploy_wait = waited.elapsed();
                }
                DeployMode::Async => {
                    // Models were already published mid-window; just collect
                    // whatever diagnostics have arrived so far.
                    while let Ok(message) = outcome_rx.try_recv() {
                        match message {
                            Ok(outcome) => outcomes.push(outcome),
                            Err(error) => {
                                opt_failure = Some(error);
                                break;
                            }
                        }
                    }
                }
            }
            serve_parts.push(ServePart {
                index,
                requests: window.len(),
                live,
                had_model,
                serve_time,
                deploy_wait,
            });
            if opt_failure.is_some() {
                break;
            }
        }

        // Drain the stage threads' tail (async stragglers, or everything
        // after an error); ends when the trainer drops its sender.
        for message in outcome_rx.iter() {
            match message {
                Ok(outcome) => outcomes.push(outcome),
                Err(error) => opt_failure = Some(error),
            }
        }
    });

    if let Some(error) = opt_failure {
        return Err(error);
    }

    outcomes.sort_by_key(|o| o.index);
    debug_assert_eq!(serve_parts.len(), outcomes.len());
    let mut report = PipelineReport {
        windows: Vec::with_capacity(serve_parts.len()),
        live_total: IntervalMetrics::default(),
        live_trained: IntervalMetrics::default(),
        final_model: outcomes.last().map(|o| Arc::clone(&o.model)),
    };
    for (part, outcome) in serve_parts.into_iter().zip(outcomes) {
        debug_assert_eq!(part.index, outcome.index);
        merge(&mut report.live_total, &part.live);
        if part.had_model {
            merge(&mut report.live_trained, &part.live);
        }
        report.windows.push(WindowReport {
            index: part.index,
            requests: part.requests,
            live: part.live,
            had_model: part.had_model,
            prediction_error: outcome.prediction_error,
            false_positive: outcome.false_positive,
            false_negative: outcome.false_negative,
            train_accuracy: outcome.train_accuracy,
            opt_bhr: outcome.opt_bhr,
            opt_ohr: outcome.opt_ohr,
            deployed_cutoff: outcome.deployed_cutoff,
            timing: StageTiming {
                serve: part.serve_time,
                label: outcome.label_time,
                train: outcome.train_time,
                deploy_wait: part.deploy_wait,
            },
        });
    }
    Ok(report)
}
