//! The staged pipeline: Collector → Labeler → Trainer → Deployer, under
//! fault-tolerant stage supervision.
//!
//! The collector (main thread) serves windows through the live [`LfoCache`]
//! while a labeler thread computes OPT decisions + features and a trainer
//! thread fits each window's model. Because the labeler's feature tracker is
//! independent of the serving cache, labeling and training of window *t*
//! overlap with serving of window *t* itself.
//!
//! Under [`DeployMode::Boundary`] the collector blocks at each window
//! boundary until window *t*'s model is trained and deploys it before the
//! first request of window *t+1* — the exact schedule of
//! [`super::run_pipeline_serial`], so per-window metrics are bit-identical.
//! Under [`DeployMode::Async`] the trainer publishes straight into the
//! shared [`ModelSlot`] the moment training finishes, so a model can roll
//! out mid-window and the collector never blocks.
//!
//! The learner is treated as an unreliable component behind the serving
//! path (DESIGN.md §8): per-window labeler errors and trainer panics are
//! retried with bounded backoff and, on exhaustion, the *window* is skipped
//! — the cache keeps serving its incumbent model (or the LRU fallback).
//! Before a trained model reaches the [`ModelSlot`] it must pass the
//! configured rollout gates (holdout accuracy vs. the incumbent, PSI drift
//! vs. the live feature distribution); every decision lands in the
//! [`WindowReport`](super::WindowReport) as a
//! [`RolloutDecision`](super::RolloutDecision).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cdn_cache::{simulate, IntervalMetrics, SimConfig};
use cdn_trace::Request;
use gbdt::{BinMap, Dataset, Model};
use opt::{OptConfig, OptError};

use crate::config::LfoConfig;
use crate::drift::FeatureSketch;
use crate::faults::{corrupt_rows, poison_labels, FaultKind, FaultPlan, FaultStage};
use crate::features::TrackerSnapshot;
use crate::labels::build_training_set;
use crate::persist::{
    flip_artifact_bit, tear_artifact, ArtifactStore, CrashPoint, LfoArtifact, Lineage, LineageKind,
    Provenance, StoredValidation,
};
use crate::policy::{LfoCache, ModelSlot};
use crate::train::{
    equalize_cutoff, evaluate, train_window, train_window_continued, TrainedWindow,
};

use super::report::{
    merge, PipelineReport, RestoreReport, RolloutDecision, StageTiming, TrainKind, WindowReport,
};
use super::{restore, solve_opt, DeployMode, PersistConfig, PipelineConfig};

/// Feature index of the free-cache-bytes feature (see
/// [`LfoConfig::feature_names`](crate::LfoConfig::feature_names)). Training
/// rows carry OPT's occupancy and live rows the real cache's, so the drift
/// gate excludes this column from the PSI comparison.
const FREE_BYTES_FEATURE: usize = 2;

/// Cap on training rows sampled into the drift sketch per window.
const DRIFT_SKETCH_ROWS: usize = 4096;

/// Cap on feature rows stored in a persisted artifact (per sample kind).
const PERSIST_SAMPLE_ROWS: usize = 256;

/// Cap on objects whose gap history is snapshotted into a persisted
/// artifact — enough to cover the hot set a restored model will score
/// first, small enough to keep artifacts a few MB at most.
const TRACKER_SNAPSHOT_OBJECTS: usize = 4096;

/// Labeler → trainer: one window's training set and OPT reference ratios.
struct LabeledWindow {
    data: Dataset,
    opt_bhr: f64,
    opt_ohr: f64,
    /// Horizon-matched drift reference for a future restore (empty when
    /// persistence is off); see [`restore_reference`].
    restore_sample: Vec<Vec<f32>>,
    /// Tracker state at the window's end (empty when persistence is off),
    /// persisted so a restore can warm-start the serving features too.
    tracker: TrackerSnapshot,
}

/// Builds the drift reference stored in a persisted artifact: the window
/// re-tracked with a *fresh* tracker, sampling features over the trailing
/// quarter only. The restore-time probe is computed the same way over the
/// head of the new run's trace, so both sides see identical gap-history
/// horizons — a reference drawn from the training set itself (whose
/// tracker carries history from every earlier window) would read as drift
/// against any freshly restarted tracker even on unchanged traffic.
fn restore_reference(window: &[Request], lfo: &LfoConfig, cache_size: u64) -> Vec<Vec<f32>> {
    let mut tracker = lfo.tracker();
    let start = window.len() * 3 / 4;
    let tail = window.len() - start;
    let stride = tail.div_ceil(PERSIST_SAMPLE_ROWS).max(1);
    let mut rows = Vec::with_capacity(tail.div_ceil(stride));
    for (i, request) in window.iter().enumerate() {
        if i >= start && (i - start).is_multiple_of(stride) {
            rows.push(tracker.features(request, cache_size));
        }
        tracker.record(request);
    }
    rows
}

/// Labeler → trainer: the window's labeling outcome (every window produces
/// exactly one message, skipped or not).
struct LabelMessage {
    index: usize,
    /// `Err` carries the skip reason after supervision exhausted retries.
    outcome: Result<LabeledWindow, String>,
    retries: u32,
    label_time: Duration,
}

/// Trainer → deployer: one window's rollout decision and diagnostics.
/// `model` is `Some` exactly when `rollout == Deployed`.
struct TrainOutcome {
    index: usize,
    model: Option<Arc<Model>>,
    rollout: RolloutDecision,
    retries: u32,
    deployed_cutoff: Option<f64>,
    train_accuracy: Option<f64>,
    prediction_error: Option<f64>,
    false_positive: Option<f64>,
    false_negative: Option<f64>,
    opt_bhr: Option<f64>,
    opt_ohr: Option<f64>,
    drift_psi: Option<f64>,
    holdout_accuracy: Option<f64>,
    incumbent_accuracy: Option<f64>,
    /// Validation data for the artifact (built when persistence is on and
    /// the model deployed; consumed by whichever thread persists).
    validation: Option<StoredValidation>,
    tracker: TrackerSnapshot,
    persisted: bool,
    /// How the candidate was trained (scratch, incremental, or the
    /// gate-rejection fallback).
    train_kind: TrainKind,
    /// Trees in the final candidate ensemble; `None` when the window
    /// produced no candidate.
    model_trees: Option<usize>,
    /// Lineage for the artifact, present exactly when `model` is (consumed
    /// by whichever thread persists).
    lineage: Option<Lineage>,
    /// Frozen bin map to persist alongside the artifact, when incremental
    /// retraining is active.
    bin_map: Option<Arc<BinMap>>,
    label_time: Duration,
    train_time: Duration,
}

impl TrainOutcome {
    /// An outcome for a window that produced no candidate model.
    fn skipped(
        index: usize,
        rollout: RolloutDecision,
        retries: u32,
        label_time: Duration,
        train_time: Duration,
    ) -> Self {
        TrainOutcome {
            index,
            model: None,
            rollout,
            retries,
            deployed_cutoff: None,
            train_accuracy: None,
            prediction_error: None,
            false_positive: None,
            false_negative: None,
            opt_bhr: None,
            opt_ohr: None,
            drift_psi: None,
            holdout_accuracy: None,
            incumbent_accuracy: None,
            validation: None,
            tracker: TrackerSnapshot::default(),
            persisted: false,
            train_kind: TrainKind::Scratch,
            model_trees: None,
            lineage: None,
            bin_map: None,
            label_time,
            train_time,
        }
    }
}

/// Collector-side view of one window.
struct ServePart {
    index: usize,
    requests: usize,
    live: IntervalMetrics,
    had_model: bool,
    slot_version: u64,
    serve_time: Duration,
    deploy_wait: Duration,
    /// Guardrail trips fired while this window was served.
    guardrail_trips: u64,
    /// Requests of this window served under guardrail-forced LRU.
    guardrail_forced_requests: u64,
}

/// Splits a labeled window into (train, holdout) for the accuracy gate.
/// Returns `None` when either side would be empty (the gate then passes).
fn split_holdout(data: &Dataset, holdout_fraction: f64) -> Option<(Dataset, Dataset)> {
    let n = data.num_rows();
    let holdout = ((n as f64) * holdout_fraction.clamp(0.0, 1.0)).round() as usize;
    if holdout == 0 || holdout >= n {
        return None;
    }
    let cut = n - holdout;
    let rows = |range: std::ops::Range<usize>| -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rs = Vec::with_capacity(range.len());
        let mut ls = Vec::with_capacity(range.len());
        for r in range {
            rs.push(data.row(r));
            ls.push(data.label(r));
        }
        (rs, ls)
    };
    let (train_rows, train_labels) = rows(0..cut);
    let (hold_rows, hold_labels) = rows(cut..n);
    let train = Dataset::from_rows(train_rows, train_labels).ok()?;
    let hold = Dataset::from_rows(hold_rows, hold_labels).ok()?;
    Some((train, hold))
}

/// Drops the free-bytes column so the drift comparison only covers features
/// that are computed identically on both sides (also used by the restore
/// path's probe-PSI gate).
pub(super) fn strip_free_bytes(mut row: Vec<f32>) -> Vec<f32> {
    if row.len() > FREE_BYTES_FEATURE {
        row.remove(FREE_BYTES_FEATURE);
    }
    row
}

/// Max per-feature PSI of the live sample against the training window's
/// feature distribution; `None` when either side is too small to compare.
fn drift_score(train_data: &Dataset, live: &[Vec<f32>]) -> Option<f64> {
    if live.is_empty() {
        return None;
    }
    let n = train_data.num_rows();
    let stride = n.div_ceil(DRIFT_SKETCH_ROWS).max(1);
    let reference: Vec<Vec<f32>> = (0..n)
        .step_by(stride)
        .map(|r| strip_free_bytes(train_data.row(r)))
        .collect();
    let live_rows: Vec<Vec<f32>> = live.iter().map(|r| strip_free_bytes(r.clone())).collect();
    let sketch = FeatureSketch::fit(&reference).ok()?;
    sketch.max_psi(&live_rows).ok()
}

/// Strided (rows, labels) sample of a dataset, capped at
/// [`PERSIST_SAMPLE_ROWS`].
fn sample_rows(data: &Dataset) -> (Vec<Vec<f32>>, Vec<f32>) {
    let n = data.num_rows();
    let stride = n.div_ceil(PERSIST_SAMPLE_ROWS).max(1);
    let mut rows = Vec::with_capacity(n.div_ceil(stride));
    let mut labels = Vec::with_capacity(n.div_ceil(stride));
    for r in (0..n).step_by(stride) {
        rows.push(data.row(r));
        labels.push(data.label(r));
    }
    (rows, labels)
}

/// Builds the validation block stored inside an artifact: the labeler's
/// horizon-matched [`restore_reference`] (the restore drift reference) and
/// a labeled holdout with the model's accuracy on it at the deployed
/// cutoff (the restore accuracy self-check). Uses the gate's holdout split
/// when one exists, the window tail otherwise.
fn build_validation(
    full: &Dataset,
    holdout: Option<&Dataset>,
    model: &Model,
    cutoff: f64,
    train_sample: Vec<Vec<f32>>,
) -> StoredValidation {
    let (holdout_rows, holdout_labels) = match holdout {
        Some(hold) => sample_rows(hold),
        None => {
            let n = full.num_rows();
            let start = n.saturating_sub(PERSIST_SAMPLE_ROWS);
            let mut rows = Vec::with_capacity(n - start);
            let mut labels = Vec::with_capacity(n - start);
            for r in start..n {
                rows.push(full.row(r));
                labels.push(full.label(r));
            }
            (rows, labels)
        }
    };
    let holdout_accuracy = Dataset::from_rows(holdout_rows.clone(), holdout_labels.clone())
        .map(|data| 1.0 - evaluate(model, &data, cutoff).error_fraction())
        .unwrap_or(0.0);
    StoredValidation {
        train_sample,
        holdout_rows,
        holdout_labels,
        holdout_accuracy,
    }
}

/// Persists an accepted model after its slot swap; returns whether the
/// artifact is durably on disk. A save failure (including the injected
/// crash-before-rename) is recorded, never fatal — durability degrades,
/// serving does not. Injected torn-write / bit-flip faults damage the file
/// *after* a successful save, modelling disk corruption the next run's
/// restore must catch.
#[allow(clippy::too_many_arguments)]
fn persist_model(
    store: &mut ArtifactStore,
    persist: &PersistConfig,
    lfo: &LfoConfig,
    model: &Model,
    cutoff: f64,
    window: usize,
    slot_version: u64,
    validation: StoredValidation,
    tracker: TrackerSnapshot,
    lineage: Option<Lineage>,
    bin_map: Option<&BinMap>,
    faults: &mut FaultPlan,
) -> bool {
    let provenance = Provenance {
        trace_id: persist.trace_id.clone(),
        window,
        slot_version,
        note: format!("staged pipeline, window {window}"),
        lineage,
        pop: None,
    };
    let artifact = LfoArtifact::new(lfo.clone(), model.clone(), cutoff, provenance)
        .with_validation(validation)
        .with_tracker(tracker)
        .with_bin_map(bin_map.cloned());
    let injected = faults.take(window, FaultStage::Persist);
    if matches!(injected, Some(FaultKind::ArtifactCrash)) {
        store.set_crash_point(CrashPoint::BeforeRename);
    }
    let saved = store.save(&artifact);
    store.set_crash_point(CrashPoint::None);
    match saved {
        Err(_) => false,
        Ok(path) => {
            match injected {
                Some(FaultKind::TornArtifactWrite) => {
                    let _ = tear_artifact(&path);
                }
                Some(FaultKind::ArtifactBitFlip) => {
                    let _ = flip_artifact_bit(&path, faults.seed());
                }
                _ => {}
            }
            true
        }
    }
}

/// Blocks until the live-feature sample for `index` arrives (boundary
/// deploy sends exactly one sample per window, in order).
fn live_sample_for(
    live_rx: &Receiver<(usize, Vec<Vec<f32>>)>,
    index: usize,
    latest: &mut Option<(usize, Vec<Vec<f32>>)>,
) -> Option<Vec<Vec<f32>>> {
    while latest.as_ref().is_none_or(|(i, _)| *i < index) {
        match live_rx.recv() {
            Ok(got) => *latest = Some(got),
            Err(_) => break,
        }
    }
    latest
        .as_ref()
        .filter(|(i, _)| *i == index)
        .map(|(_, rows)| rows.clone())
}

/// Takes whatever live-feature samples have arrived and returns the newest
/// (async deploy gates against the freshest view of live traffic).
fn latest_live_sample(
    live_rx: &Receiver<(usize, Vec<Vec<f32>>)>,
    latest: &mut Option<(usize, Vec<Vec<f32>>)>,
) -> Option<Vec<Vec<f32>>> {
    while let Ok(got) = live_rx.try_recv() {
        *latest = Some(got);
    }
    latest.as_ref().map(|(_, rows)| rows.clone())
}

pub(super) fn run_staged(
    requests: &[Request],
    config: &PipelineConfig,
) -> Result<PipelineReport, OptError> {
    if requests.is_empty() {
        return Err(OptError::EmptyWindow);
    }
    let opt_config = OptConfig {
        cache_size: config.cache_size,
        cost_model: config.lfo.cost_model,
        ..OptConfig::bhr(config.cache_size)
    };
    let threads = config.resolved_threads();
    // The thread knob only trades wall-clock for cores: segmented OPT solves
    // merge in segment order and the GBDT grower reduces split candidates in
    // feature order, so results are bit-identical for any thread count.
    let mut lfo = config.lfo.clone();
    lfo.gbdt.num_threads = threads;

    let slot = ModelSlot::new();

    // Warm start: restore the last persisted artifact (if configured)
    // through the integrity checks and deployment gates, publishing into
    // the slot *before* the cache is built so window 0 serves warm. Any
    // failure degrades to the cold LRU start with the decision recorded.
    let mut restore_report: Option<RestoreReport> = None;
    let mut restored: Option<(Arc<Model>, f64)> = None;
    let mut restored_tracker: Option<TrackerSnapshot> = None;
    let mut restored_bin_map: Option<Arc<BinMap>> = None;
    if let Some(dir) = &config.warm_start {
        let (outcome, report) = restore::attempt_restore(dir, requests, config);
        if let Some(r) = outcome {
            slot.publish(Arc::clone(&r.model), r.cutoff);
            restored = Some((r.model, r.cutoff));
            restored_tracker = Some(r.tracker);
            // The artifact's frozen grid only matters when this run retrains
            // incrementally; otherwise every window refits its own bins.
            if config.retrain.incremental() {
                restored_bin_map = r.bin_map.map(Arc::new);
            }
        }
        restore_report = Some(report);
    }

    let mut cache = LfoCache::with_slot(config.cache_size, lfo.clone(), slot.clone());
    // The model is only half the restored state: without its gap history
    // every object looks first-seen, and the admission policy shuts the
    // door on the working set while the cache refills. Load the artifact's
    // tracker snapshot into the serving cache so warm features match.
    if let Some(snapshot) = &restored_tracker {
        cache.tracker_mut().load_snapshot(snapshot);
    }
    if let Some(gate) = config.gates.drift {
        cache.enable_feature_sampling(gate.sample_every);
    }
    // Runtime guardrail (DESIGN.md §13). A warm-started model earned its
    // deploy on *last* run's traffic, so it starts in shadow probation:
    // LRU serves while the restored model re-proves the bound on
    // shadow-scored decisions before taking over.
    if let Some(mut guard) = config.guardrail {
        if restored.is_some() {
            guard.start_in_fallback = true;
        }
        cache.enable_guardrail(guard);
    }
    let windows: Vec<&[Request]> = requests.chunks(config.window.max(1)).collect();

    let mut serve_parts: Vec<ServePart> = Vec::with_capacity(windows.len());
    let mut outcomes: Vec<TrainOutcome> = Vec::with_capacity(windows.len());
    let supervision = config.supervision;
    let gates = config.gates;

    std::thread::scope(|scope| {
        let (window_tx, window_rx) = channel::<(usize, &[Request])>();
        let (labeled_tx, labeled_rx) = channel::<LabelMessage>();
        let (outcome_tx, outcome_rx) = channel::<TrainOutcome>();
        let (live_tx, live_rx) = channel::<(usize, Vec<Vec<f32>>)>();
        // Collector → trainer: guardrail trips observed during a window,
        // sent only under `trip_forces_scratch` — the trainer then refuses
        // the incremental shortcut for its next candidate (DESIGN.md §13).
        let (guard_tx, guard_rx) = channel::<u64>();

        // Labeler: owns the training-side feature tracker (sequential state),
        // so windows must be labeled in order — but independently of serving.
        // Per-window failures are retried with bounded backoff; exhaustion
        // skips the window, advancing the tracker so gap history stays
        // continuous for later windows.
        let labeler_lfo = lfo.clone();
        let mut label_faults = config.faults.clone();
        let labeler_snapshot = restored_tracker.clone();
        scope.spawn(move || {
            let mut tracker = labeler_lfo.tracker();
            // Warm start: seed the training-side tracker from the restored
            // artifact too, so window 0's labels see the same gap history
            // the serving cache does.
            if let Some(snapshot) = &labeler_snapshot {
                tracker.load_snapshot(snapshot);
            }
            while let Ok((index, window)) = window_rx.recv() {
                let started = Instant::now();
                let mut retries = 0u32;
                let outcome = loop {
                    let injected = label_faults.take(index, FaultStage::Label);
                    let solved: Result<_, String> = match injected {
                        Some(FaultKind::LabelError) => Err("injected labeler fault".into()),
                        _ => solve_opt(window, &opt_config, config, threads)
                            .map_err(|e| e.to_string()),
                    };
                    match solved {
                        Ok(opt) => {
                            let mut data =
                                build_training_set(window, &opt, &mut tracker, config.cache_size);
                            match injected {
                                Some(FaultKind::CorruptRows { fraction }) => {
                                    data = corrupt_rows(&data, fraction, label_faults.seed());
                                }
                                Some(FaultKind::ModelPoisoning { fraction }) => {
                                    data = poison_labels(&data, fraction, label_faults.seed());
                                }
                                _ => {}
                            }
                            let (restore_sample, snapshot) = if config.persist.is_some() {
                                (
                                    restore_reference(window, &labeler_lfo, config.cache_size),
                                    tracker.snapshot(TRACKER_SNAPSHOT_OBJECTS),
                                )
                            } else {
                                (Vec::new(), TrackerSnapshot::default())
                            };
                            break Ok(LabeledWindow {
                                data,
                                opt_bhr: opt.bhr(),
                                opt_ohr: opt.ohr(),
                                restore_sample,
                                tracker: snapshot,
                            });
                        }
                        Err(reason) => {
                            if retries >= supervision.max_retries {
                                for r in window {
                                    let _ = tracker.observe(r, config.cache_size);
                                }
                                break Err(reason);
                            }
                            retries += 1;
                            std::thread::sleep(supervision.backoff * retries);
                        }
                    }
                };
                let message = LabelMessage {
                    index,
                    outcome,
                    retries,
                    label_time: started.elapsed(),
                };
                if labeled_tx.send(message).is_err() {
                    return;
                }
            }
        });

        // Trainer + gatekeeper: evaluates the incumbent on the new labels
        // (the paper's train-on-t, test-on-t+1 protocol), trains this
        // window's candidate under panic supervision, then decides its
        // rollout — deadline, drift gate, accuracy gate — before publishing.
        let trainer_slot = slot.clone();
        let trainer_lfo = lfo.clone();
        let deploy = config.deploy;
        let mut train_faults = config.faults.clone();
        // Persistence runs on whichever thread performs the slot swap: the
        // trainer under async deploy, the collector under boundary deploy.
        let persist_enabled = config.persist.is_some();
        let trainer_persist = match config.deploy {
            DeployMode::Async => config.persist.clone(),
            DeployMode::Boundary => None,
        };
        let mut trainer_store = trainer_persist
            .as_ref()
            .and_then(|p| ArtifactStore::with_retention(&p.dir, p.retain).ok());
        let mut trainer_persist_faults = config.faults.clone();
        let restored_incumbent = restored.take();
        let restored_frozen = restored_bin_map.take();
        let retrain = config.retrain;
        scope.spawn(move || {
            let mut incumbent: Option<(Arc<Model>, f64)> = restored_incumbent;
            // Incremental-retraining state (DESIGN.md §11): the frozen
            // quantile grid fitted at the last full rebuild, which window
            // that rebuild happened on (`None` when the incumbent came from
            // a previous run's artifact), and how many incremental deploys
            // have happened since.
            let mut frozen: Option<Arc<BinMap>> = restored_frozen;
            let mut incumbent_window: Option<usize> = None;
            let mut windows_since_full: usize = 0;
            let mut latest_live: Option<(usize, Vec<Vec<f32>>)> = None;
            // Set when the collector reports a guardrail trip: the learned
            // policy just lost to LRU on live traffic, so the incumbent's
            // trees are suspect — the next candidate must be a full rebuild
            // (the PR 5 ScratchFallback path), not deltas on top of them.
            let mut guard_forced_scratch = false;
            while let Ok(message) = labeled_rx.recv() {
                while let Ok(trips) = guard_rx.try_recv() {
                    if trips > 0 {
                        guard_forced_scratch = true;
                    }
                }
                let LabelMessage {
                    index,
                    outcome,
                    retries: label_retries,
                    label_time,
                } = message;
                let started = Instant::now();
                let labeled = match outcome {
                    Ok(labeled) => labeled,
                    Err(_) => {
                        let skipped = TrainOutcome::skipped(
                            index,
                            RolloutDecision::SkippedFault,
                            label_retries,
                            label_time,
                            started.elapsed(),
                        );
                        if outcome_tx.send(skipped).is_err() {
                            return;
                        }
                        continue;
                    }
                };

                let (prediction_error, false_positive, false_negative) = match &incumbent {
                    Some((model, _)) => {
                        let confusion = evaluate(model, &labeled.data, trainer_lfo.cutoff);
                        (
                            Some(confusion.error_fraction()),
                            Some(confusion.false_positive_fraction()),
                            Some(confusion.false_negative_fraction()),
                        )
                    }
                    None => (None, None, None),
                };

                // Accuracy gate: hold the window's tail out of training.
                let split = gates
                    .accuracy
                    .and_then(|g| split_holdout(&labeled.data, g.holdout_fraction));
                let (train_data, holdout): (&Dataset, Option<&Dataset>) = match &split {
                    Some((train, hold)) => (train, Some(hold)),
                    None => (&labeled.data, None),
                };

                // Delta vs. full rebuild: warm-start from the incumbent
                // against the frozen grid unless the refresh cadence (or a
                // missing incumbent/grid) demands a full rebuild. When
                // incremental retraining is disabled (`full_refresh == 1`)
                // this is always false and the path below is byte-for-byte
                // the original scratch pipeline.
                let would_incremental = retrain.incremental()
                    && windows_since_full + 1 < retrain.full_refresh
                    && incumbent.is_some()
                    && frozen.is_some();
                // A reported guardrail trip vetoes the shortcut: the window
                // that would have warm-started from the suspect incumbent
                // retrains from scratch instead.
                let do_incremental = would_incremental && !guard_forced_scratch;
                let trip_fallback = would_incremental && guard_forced_scratch;
                let base = do_incremental
                    .then(|| incumbent.as_ref().map(|(m, _)| Arc::clone(m)))
                    .flatten();
                let window_frozen = do_incremental.then(|| frozen.clone()).flatten();

                // Supervised training: catch panics (real or injected),
                // retry with bounded backoff, give up after the budget.
                let mut retries = label_retries;
                let trained = loop {
                    let injected = train_faults.take(index, FaultStage::Train);
                    if let Some(FaultKind::SlowTraining(stall)) = injected {
                        std::thread::sleep(stall);
                    }
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        if matches!(injected, Some(FaultKind::TrainerPanic)) {
                            panic!("injected trainer panic (fault plan)");
                        }
                        match &base {
                            Some(inc) => train_window_continued(
                                inc,
                                train_data,
                                &trainer_lfo,
                                &retrain,
                                window_frozen.as_deref(),
                            ),
                            None => train_window(train_data, &trainer_lfo),
                        }
                    }));
                    match attempt {
                        Ok(trained) => break Some(trained),
                        Err(_) => {
                            if retries - label_retries >= supervision.max_retries {
                                break None;
                            }
                            retries += 1;
                            std::thread::sleep(supervision.backoff * (retries - label_retries));
                        }
                    }
                };

                let outcome = match trained {
                    None => {
                        let mut skipped = TrainOutcome::skipped(
                            index,
                            RolloutDecision::SkippedFault,
                            retries,
                            label_time,
                            started.elapsed(),
                        );
                        skipped.prediction_error = prediction_error;
                        skipped.false_positive = false_positive;
                        skipped.false_negative = false_negative;
                        skipped.opt_bhr = Some(labeled.opt_bhr);
                        skipped.opt_ohr = Some(labeled.opt_ohr);
                        skipped
                    }
                    Some(trained) => {
                        let cutoff_for = |t: &TrainedWindow| match trainer_lfo.cutoff_mode {
                            crate::CutoffMode::Fixed(c) => c,
                            crate::CutoffMode::EqualizeErrorRates => {
                                equalize_cutoff(&t.train_probs, &t.train_labels)
                            }
                        };

                        // One live-feature sample serves every gate pass on
                        // this window (the drift reference is
                        // model-independent, so the scratch fallback below
                        // reuses it).
                        let live_rows = if gates.drift.is_some() {
                            match deploy {
                                DeployMode::Boundary => {
                                    live_sample_for(&live_rx, index, &mut latest_live)
                                }
                                DeployMode::Async => latest_live_sample(&live_rx, &mut latest_live),
                            }
                        } else {
                            None
                        };

                        // Degradation ladder, strictest first: a stalled
                        // solve deploys nothing (the model is stale by
                        // definition), then distribution shift, then the
                        // head-to-head accuracy check. Factored so the
                        // scratch fallback faces exactly the same gates.
                        let gate_candidate = |model: &Model, cutoff: f64| {
                            let mut rollout = RolloutDecision::Deployed;
                            let mut drift_psi = None;
                            let mut holdout_accuracy = None;
                            let mut incumbent_accuracy = None;
                            if supervision
                                .train_deadline
                                .is_some_and(|deadline| started.elapsed() > deadline)
                            {
                                rollout = RolloutDecision::SkippedDeadline;
                            }
                            if rollout == RolloutDecision::Deployed {
                                if let Some(gate) = gates.drift {
                                    if let Some(score) = live_rows
                                        .as_deref()
                                        .and_then(|rows| drift_score(&labeled.data, rows))
                                    {
                                        drift_psi = Some(score);
                                        if score > gate.max_psi {
                                            rollout = RolloutDecision::RejectedDrift;
                                        }
                                    }
                                }
                            }
                            if rollout == RolloutDecision::Deployed {
                                if let (Some(gate), Some(hold), Some((inc_model, inc_cutoff))) =
                                    (gates.accuracy, holdout, &incumbent)
                                {
                                    let candidate =
                                        1.0 - evaluate(model, hold, cutoff).error_fraction();
                                    let reference = 1.0
                                        - evaluate(inc_model, hold, *inc_cutoff).error_fraction();
                                    holdout_accuracy = Some(candidate);
                                    incumbent_accuracy = Some(reference);
                                    if candidate + gate.margin < reference {
                                        rollout = RolloutDecision::RejectedAccuracy;
                                    }
                                }
                            }
                            (rollout, drift_psi, holdout_accuracy, incumbent_accuracy)
                        };

                        // A candidate exists, so the pending trip (if any)
                        // is consumed by this window's full rebuild.
                        guard_forced_scratch = false;
                        let mut trained = trained;
                        let mut train_kind = if do_incremental {
                            TrainKind::Incremental
                        } else if trip_fallback {
                            TrainKind::ScratchFallback
                        } else {
                            TrainKind::Scratch
                        };
                        let mut deployed_cutoff = cutoff_for(&trained);
                        let (
                            mut rollout,
                            mut drift_psi,
                            mut holdout_accuracy,
                            mut incumbent_accuracy,
                        ) = gate_candidate(&trained.model, deployed_cutoff);

                        // A gate rejecting the *incremental* candidate falls
                        // back to a full scratch retrain on the same window,
                        // re-gated head to head — incrementality must never
                        // be the reason a slot goes stale.
                        if train_kind == TrainKind::Incremental
                            && matches!(
                                rollout,
                                RolloutDecision::RejectedDrift | RolloutDecision::RejectedAccuracy
                            )
                        {
                            let full = catch_unwind(AssertUnwindSafe(|| {
                                train_window(train_data, &trainer_lfo)
                            }));
                            if let Ok(full) = full {
                                deployed_cutoff = cutoff_for(&full);
                                let (r, d, h, i) = gate_candidate(&full.model, deployed_cutoff);
                                trained = full;
                                train_kind = TrainKind::ScratchFallback;
                                rollout = r;
                                drift_psi = d.or(drift_psi);
                                holdout_accuracy = h;
                                incumbent_accuracy = i;
                            }
                        }

                        let model = Arc::new(trained.model);
                        let model_trees = model.trees().len();
                        let deployed = rollout == RolloutDecision::Deployed;
                        let incremental = train_kind == TrainKind::Incremental;
                        let base_window = incumbent_window;
                        let mut lineage: Option<Lineage> = None;
                        let mut artifact_map: Option<Arc<BinMap>> = None;
                        let mut validation: Option<StoredValidation> = None;
                        let mut persisted = false;
                        if deployed {
                            if incremental {
                                windows_since_full += 1;
                            } else if retrain.incremental() {
                                // Full rebuild with incremental mode on:
                                // refit and freeze the quantile grid the
                                // following deltas will bin against.
                                frozen = Some(Arc::new(BinMap::fit(
                                    train_data,
                                    trainer_lfo.gbdt.max_bins,
                                )));
                                windows_since_full = 0;
                            }
                            lineage = Some(Lineage {
                                kind: if incremental {
                                    LineageKind::Delta
                                } else {
                                    LineageKind::Full
                                },
                                base_window: if incremental { base_window } else { None },
                                delta_trees: if incremental { retrain.delta_trees } else { 0 },
                                total_trees: model_trees,
                                bin_map_fingerprint: frozen
                                    .as_ref()
                                    .map(|m| format!("{:016x}", m.fingerprint())),
                            });
                            artifact_map = frozen.clone();
                            if persist_enabled {
                                validation = Some(build_validation(
                                    &labeled.data,
                                    holdout,
                                    &model,
                                    deployed_cutoff,
                                    labeled.restore_sample.clone(),
                                ));
                            }
                            if deploy == DeployMode::Async {
                                // Mid-window rollout: the serving cache picks
                                // this up on its next request via the slot's
                                // version bump.
                                trainer_slot.publish(Arc::clone(&model), deployed_cutoff);
                                if let (Some(persist), Some(store)) =
                                    (&trainer_persist, trainer_store.as_mut())
                                {
                                    persisted = persist_model(
                                        store,
                                        persist,
                                        &trainer_lfo,
                                        &model,
                                        deployed_cutoff,
                                        index,
                                        trainer_slot.version(),
                                        validation.take().unwrap_or_default(),
                                        labeled.tracker.clone(),
                                        lineage.clone(),
                                        artifact_map.as_deref(),
                                        &mut trainer_persist_faults,
                                    );
                                }
                            }
                            incumbent = Some((Arc::clone(&model), deployed_cutoff));
                            incumbent_window = Some(index);
                        }
                        TrainOutcome {
                            index,
                            model: deployed.then_some(model),
                            rollout,
                            retries,
                            deployed_cutoff: deployed.then_some(deployed_cutoff),
                            train_accuracy: Some(trained.train_accuracy),
                            prediction_error,
                            false_positive,
                            false_negative,
                            opt_bhr: Some(labeled.opt_bhr),
                            opt_ohr: Some(labeled.opt_ohr),
                            drift_psi,
                            holdout_accuracy,
                            incumbent_accuracy,
                            validation,
                            tracker: labeled.tracker,
                            persisted,
                            train_kind,
                            model_trees: Some(model_trees),
                            lineage,
                            bin_map: artifact_map,
                            label_time,
                            train_time: started.elapsed(),
                        }
                    }
                };
                if outcome_tx.send(outcome).is_err() {
                    return;
                }
            }
        });

        // Collector/deployer (this thread). The whole trace is already in
        // memory, so every window is handed to the labeler upfront; the
        // labeler works ahead while earlier windows are still being served.
        for (index, window) in windows.iter().enumerate() {
            let _ = window_tx.send((index, window));
        }
        drop(window_tx);

        // Boundary deploy persists on this thread, right after the swap.
        let collector_persist = match config.deploy {
            DeployMode::Boundary => config.persist.clone(),
            DeployMode::Async => None,
        };
        let mut collector_store = collector_persist
            .as_ref()
            .and_then(|p| ArtifactStore::with_retention(&p.dir, p.retain).ok());
        let mut collector_persist_faults = config.faults.clone();

        let sim = SimConfig::default();
        let trip_forces_scratch = config.guardrail.is_some_and(|g| g.trip_forces_scratch);
        for (index, window) in windows.iter().enumerate() {
            let had_model = cache.has_model();
            let slot_version = cache.slot().version();
            let guard_before = cache.guardrail().unwrap_or_default();
            let started = Instant::now();
            let live = simulate(&mut cache, window, &sim).measured;
            let serve_time = started.elapsed();
            let guard_after = cache.guardrail().unwrap_or_default();
            let guardrail_trips = guard_after.trips - guard_before.trips;
            let guardrail_forced_requests =
                guard_after.forced_requests - guard_before.forced_requests;
            if trip_forces_scratch && guardrail_trips > 0 {
                let _ = guard_tx.send(guardrail_trips);
            }
            if gates.drift.is_some() {
                let _ = live_tx.send((index, cache.take_feature_samples()));
            }

            let mut deploy_wait = Duration::ZERO;
            match config.deploy {
                DeployMode::Boundary => {
                    // Deterministic rollout: window t's accepted model must
                    // be live before the first request of window t+1,
                    // exactly as in the serial reference. A skipped or
                    // rejected window installs nothing — the incumbent
                    // keeps serving.
                    let waited = Instant::now();
                    if let Ok(mut outcome) = outcome_rx.recv() {
                        debug_assert_eq!(outcome.index, index);
                        if let (Some(model), Some(cutoff)) =
                            (outcome.model.clone(), outcome.deployed_cutoff)
                        {
                            cache.set_cutoff(cutoff);
                            cache.install_model(Arc::clone(&model));
                            if let (Some(persist), Some(store)) =
                                (&collector_persist, collector_store.as_mut())
                            {
                                outcome.persisted = persist_model(
                                    store,
                                    persist,
                                    &lfo,
                                    &model,
                                    cutoff,
                                    outcome.index,
                                    cache.slot().version(),
                                    outcome.validation.take().unwrap_or_default(),
                                    std::mem::take(&mut outcome.tracker),
                                    outcome.lineage.clone(),
                                    outcome.bin_map.as_deref(),
                                    &mut collector_persist_faults,
                                );
                            }
                        }
                        outcomes.push(outcome);
                    }
                    deploy_wait = waited.elapsed();
                }
                DeployMode::Async => {
                    // Models were already published mid-window; just collect
                    // whatever diagnostics have arrived so far.
                    while let Ok(outcome) = outcome_rx.try_recv() {
                        outcomes.push(outcome);
                    }
                }
            }
            serve_parts.push(ServePart {
                index,
                requests: window.len(),
                live,
                had_model,
                slot_version,
                serve_time,
                deploy_wait,
                guardrail_trips,
                guardrail_forced_requests,
            });
        }
        drop(live_tx);
        drop(guard_tx);

        // Drain the stage threads' tail (async stragglers); ends when the
        // trainer drops its sender.
        for outcome in outcome_rx.iter() {
            outcomes.push(outcome);
        }
    });

    outcomes.sort_by_key(|o| o.index);
    debug_assert_eq!(serve_parts.len(), outcomes.len());
    let mut report = PipelineReport {
        windows: Vec::with_capacity(serve_parts.len()),
        live_total: IntervalMetrics::default(),
        live_trained: IntervalMetrics::default(),
        final_model: outcomes.iter().rev().find_map(|o| o.model.clone()),
        restore: restore_report,
    };
    for (part, outcome) in serve_parts.into_iter().zip(outcomes) {
        debug_assert_eq!(part.index, outcome.index);
        merge(&mut report.live_total, &part.live);
        if part.had_model {
            merge(&mut report.live_trained, &part.live);
        }
        report.windows.push(WindowReport {
            index: part.index,
            requests: part.requests,
            live: part.live,
            had_model: part.had_model,
            slot_version: part.slot_version,
            prediction_error: outcome.prediction_error,
            false_positive: outcome.false_positive,
            false_negative: outcome.false_negative,
            train_accuracy: outcome.train_accuracy,
            opt_bhr: outcome.opt_bhr,
            opt_ohr: outcome.opt_ohr,
            deployed_cutoff: outcome.deployed_cutoff,
            rollout: outcome.rollout,
            retries: outcome.retries,
            drift_psi: outcome.drift_psi,
            holdout_accuracy: outcome.holdout_accuracy,
            incumbent_accuracy: outcome.incumbent_accuracy,
            persisted: outcome.persisted,
            train_kind: outcome.train_kind,
            model_trees: outcome.model_trees,
            guardrail_trips: part.guardrail_trips,
            guardrail_forced_requests: part.guardrail_forced_requests,
            timing: StageTiming {
                serve: part.serve_time,
                label: outcome.label_time,
                train: outcome.train_time,
                deploy_wait: part.deploy_wait,
            },
        });
    }
    Ok(report)
}
