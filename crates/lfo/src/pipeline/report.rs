//! Pipeline outcome types: per-window diagnostics, per-stage wall-clock,
//! and the aggregate report.

use std::sync::Arc;
use std::time::Duration;

use cdn_cache::IntervalMetrics;
use gbdt::Model;

/// Wall-clock spent in each pipeline stage for one window.
///
/// `serve` is measured on the collector (main) thread; `label` and `train`
/// on the background stage threads; `deploy_wait` is how long the collector
/// blocked at the window boundary waiting for the trained model (zero under
/// [`crate::DeployMode::Async`], where rollout happens mid-window).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTiming {
    /// Live cache simulation over the window.
    pub serve: Duration,
    /// OPT decisions + feature/label derivation for the window.
    pub label: Duration,
    /// Model evaluation + training on the window's labels.
    pub train: Duration,
    /// Time the collector blocked at the boundary for the deploy.
    pub deploy_wait: Duration,
}

impl StageTiming {
    /// Accumulates another window's timings into this one.
    pub fn accumulate(&mut self, other: &StageTiming) {
        self.serve += other.serve;
        self.label += other.label;
        self.train += other.train;
        self.deploy_wait += other.deploy_wait;
    }
}

/// Per-window pipeline diagnostics.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Window index (0-based).
    pub index: usize,
    /// Requests in the window.
    pub requests: usize,
    /// LFO's live hit metrics over this window.
    pub live: IntervalMetrics,
    /// Whether a trained model served this window (at its first request).
    pub had_model: bool,
    /// Prediction error of the *previous* window's model against this
    /// window's OPT decisions (the Figure 5 metric); `None` for window 0.
    pub prediction_error: Option<f64>,
    /// False-positive fraction of that evaluation.
    pub false_positive: Option<f64>,
    /// False-negative fraction of that evaluation.
    pub false_negative: Option<f64>,
    /// Training accuracy of the model trained *on* this window.
    pub train_accuracy: f64,
    /// OPT's byte hit ratio on this window (upper reference).
    pub opt_bhr: f64,
    /// OPT's object hit ratio on this window.
    pub opt_ohr: f64,
    /// Admission cutoff deployed for the *next* window (differs from the
    /// configured value under [`crate::CutoffMode::EqualizeErrorRates`]).
    pub deployed_cutoff: f64,
    /// Per-stage wall-clock for this window.
    pub timing: StageTiming,
}

/// The pipeline's overall outcome.
#[derive(Debug)]
pub struct PipelineReport {
    /// Per-window diagnostics.
    pub windows: Vec<WindowReport>,
    /// LFO's live metrics across all windows.
    pub live_total: IntervalMetrics,
    /// LFO's live metrics excluding window 0 (the untrained fallback) —
    /// comparable to the paper's evaluation protocol.
    pub live_trained: IntervalMetrics,
    /// The final trained model.
    pub final_model: Option<Arc<Model>>,
}

impl PipelineReport {
    /// Mean prediction accuracy across evaluated windows (the paper's
    /// "LFO matches OPT's prediction for over 93% of the requests"),
    /// weighted by each window's request count so a short final window
    /// cannot skew the trace-wide figure.
    pub fn mean_prediction_accuracy(&self) -> Option<f64> {
        let mut weight = 0u64;
        let mut weighted_error = 0.0f64;
        for w in &self.windows {
            if let Some(error) = w.prediction_error {
                weight += w.requests as u64;
                weighted_error += error * w.requests as f64;
            }
        }
        if weight == 0 {
            None
        } else {
            Some(1.0 - weighted_error / weight as f64)
        }
    }

    /// Per-stage wall-clock summed over all windows.
    pub fn total_timing(&self) -> StageTiming {
        let mut total = StageTiming::default();
        for w in &self.windows {
            total.accumulate(&w.timing);
        }
        total
    }
}

pub(super) fn merge(into: &mut IntervalMetrics, from: &IntervalMetrics) {
    into.requests += from.requests;
    into.hits += from.hits;
    into.total_bytes += from.total_bytes;
    into.hit_bytes += from.hit_bytes;
}
