//! Pipeline outcome types: per-window diagnostics, per-stage wall-clock,
//! and the aggregate report.

use std::sync::Arc;
use std::time::Duration;

use cdn_cache::IntervalMetrics;
use gbdt::Model;

use crate::persist::{PersistError, Provenance};

/// Wall-clock spent in each pipeline stage for one window.
///
/// `serve` is measured on the collector (main) thread; `label` and `train`
/// on the background stage threads; `deploy_wait` is how long the collector
/// blocked at the window boundary waiting for the trained model (zero under
/// [`crate::DeployMode::Async`], where rollout happens mid-window).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTiming {
    /// Live cache simulation over the window.
    pub serve: Duration,
    /// OPT decisions + feature/label derivation for the window.
    pub label: Duration,
    /// Model evaluation + training on the window's labels.
    pub train: Duration,
    /// Time the collector blocked at the boundary for the deploy.
    pub deploy_wait: Duration,
}

impl StageTiming {
    /// Accumulates another window's timings into this one.
    pub fn accumulate(&mut self, other: &StageTiming) {
        self.serve += other.serve;
        self.label += other.label;
        self.train += other.train;
        self.deploy_wait += other.deploy_wait;
    }
}

/// What the deployer decided to do with the model trained on a window.
///
/// Anything other than [`Deployed`](RolloutDecision::Deployed) means the
/// serving cache kept its incumbent model (or the LRU fallback if none was
/// ever deployed) — the degradation ladder of DESIGN.md §8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RolloutDecision {
    /// The model was installed into the serving [`crate::ModelSlot`].
    #[default]
    Deployed,
    /// The candidate's holdout accuracy fell short of the incumbent's by
    /// more than the configured margin.
    RejectedAccuracy,
    /// The PSI between the training window's features and the live serving
    /// features exceeded the configured threshold.
    RejectedDrift,
    /// Labeling or training failed (error or panic) and exhausted the
    /// retry budget; the window produced no candidate at all.
    SkippedFault,
    /// Training finished after the per-window deadline; the (stale) model
    /// was discarded rather than deployed.
    SkippedDeadline,
}

impl RolloutDecision {
    /// Whether the window degraded (no fresh model reached the cache).
    pub fn is_degraded(&self) -> bool {
        *self != RolloutDecision::Deployed
    }
}

/// How this window's candidate model was trained (see
/// [`crate::RetrainConfig`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TrainKind {
    /// Full from-scratch training (the only kind when incremental
    /// retraining is disabled).
    #[default]
    Scratch,
    /// Warm start: delta trees appended to the incumbent against the
    /// frozen bin map.
    Incremental,
    /// An incremental candidate was rejected by a rollout gate and the
    /// window fell back to a full from-scratch retrain — the safety net
    /// that guarantees rejection never leaves a stale slot by policy.
    ScratchFallback,
}

/// Per-window pipeline diagnostics.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Window index (0-based).
    pub index: usize,
    /// Requests in the window.
    pub requests: usize,
    /// LFO's live hit metrics over this window.
    pub live: IntervalMetrics,
    /// Whether a trained model served this window (at its first request).
    pub had_model: bool,
    /// [`crate::ModelSlot`] publication version visible at the window's
    /// first request — a rejected rollout leaves the next window's version
    /// unchanged, which is how tests prove nothing was installed.
    pub slot_version: u64,
    /// Prediction error of the incumbent model against this window's OPT
    /// decisions (the Figure 5 metric); `None` for window 0 and for
    /// windows whose labeling was skipped.
    pub prediction_error: Option<f64>,
    /// False-positive fraction of that evaluation.
    pub false_positive: Option<f64>,
    /// False-negative fraction of that evaluation.
    pub false_negative: Option<f64>,
    /// Training accuracy of the model trained *on* this window; `None`
    /// when the window was skipped before a model existed.
    pub train_accuracy: Option<f64>,
    /// OPT's byte hit ratio on this window (upper reference); `None` when
    /// the labeler skipped the window.
    pub opt_bhr: Option<f64>,
    /// OPT's object hit ratio on this window.
    pub opt_ohr: Option<f64>,
    /// Admission cutoff deployed for the *next* window (differs from the
    /// configured value under [`crate::CutoffMode::EqualizeErrorRates`]);
    /// `None` when no model was deployed from this window.
    pub deployed_cutoff: Option<f64>,
    /// What happened to this window's candidate model.
    pub rollout: RolloutDecision,
    /// Retries spent by stage supervision on this window (labeler plus
    /// trainer attempts beyond the first).
    pub retries: u32,
    /// Max per-feature PSI between the training window and the live
    /// serving features, when the drift gate evaluated it.
    pub drift_psi: Option<f64>,
    /// Candidate holdout accuracy, when the accuracy gate evaluated it.
    pub holdout_accuracy: Option<f64>,
    /// Incumbent holdout accuracy, when the accuracy gate evaluated it.
    pub incumbent_accuracy: Option<f64>,
    /// Whether this window's accepted model was durably persisted to the
    /// configured [`crate::ArtifactStore`] (always `false` when
    /// persistence is off or the window deployed nothing).
    pub persisted: bool,
    /// How this window's candidate was trained (scratch, incremental, or
    /// the gate-rejection fallback).
    pub train_kind: TrainKind,
    /// Trees in this window's final candidate ensemble; `None` when the
    /// window produced no candidate.
    pub model_trees: Option<usize>,
    /// Guardrail trips fired during this window (learned→LRU switches by
    /// the runtime bound of DESIGN.md §13); always 0 when no guardrail is
    /// configured.
    pub guardrail_trips: u64,
    /// Requests in this window served under guardrail-forced LRU — the
    /// runtime analogue of `!had_model`, counted toward
    /// [`PipelineReport::fallback_time`].
    pub guardrail_forced_requests: u64,
    /// Per-stage wall-clock for this window.
    pub timing: StageTiming,
}

/// Outcome of a warm-start restore attempt
/// ([`crate::PipelineConfig::warm_start`]).
///
/// Reuses [`RolloutDecision`] so restore outcomes read like any other
/// rollout: `Deployed` means the artifact passed integrity checks and the
/// configured gates and was published to the [`crate::ModelSlot`] before
/// window 0; `SkippedFault` means the artifact was missing, damaged, or
/// incompatible; `RejectedDrift` / `RejectedAccuracy` mean a gate vetoed
/// it. Anything but `Deployed` falls back to the cold LRU start — never an
/// abort.
#[derive(Debug)]
pub struct RestoreReport {
    /// What happened to the stored artifact.
    pub decision: RolloutDecision,
    /// The typed persistence error, when the artifact could not be used.
    pub error: Option<PersistError>,
    /// Human-readable explanation of the decision.
    pub detail: String,
    /// Max per-feature PSI of the artifact's training sample against the
    /// new run's probe features, when the drift gate evaluated it.
    pub drift_psi: Option<f64>,
    /// The restored model's accuracy on the artifact's stored holdout,
    /// when the accuracy self-check evaluated it.
    pub holdout_accuracy: Option<f64>,
    /// The holdout accuracy recorded in the artifact at save time.
    pub recorded_accuracy: Option<f64>,
    /// Provenance of the artifact considered (present whenever the
    /// artifact parsed, even if a gate then rejected it).
    pub provenance: Option<Provenance>,
}

impl RestoreReport {
    /// Whether the restore published a model (warm start succeeded).
    pub fn restored(&self) -> bool {
        self.decision == RolloutDecision::Deployed
    }
}

/// The pipeline's overall outcome.
#[derive(Debug)]
pub struct PipelineReport {
    /// Per-window diagnostics.
    pub windows: Vec<WindowReport>,
    /// LFO's live metrics across all windows.
    pub live_total: IntervalMetrics,
    /// LFO's live metrics excluding window 0 (the untrained fallback) —
    /// comparable to the paper's evaluation protocol.
    pub live_trained: IntervalMetrics,
    /// The final trained model.
    pub final_model: Option<Arc<Model>>,
    /// Outcome of the warm-start restore, when one was configured
    /// (`None` for cold starts and the serial reference).
    pub restore: Option<RestoreReport>,
}

impl PipelineReport {
    /// Mean prediction accuracy across evaluated windows (the paper's
    /// "LFO matches OPT's prediction for over 93% of the requests"),
    /// weighted by each window's request count so a short final window
    /// cannot skew the trace-wide figure.
    pub fn mean_prediction_accuracy(&self) -> Option<f64> {
        let mut weight = 0u64;
        let mut weighted_error = 0.0f64;
        for w in &self.windows {
            if let Some(error) = w.prediction_error {
                weight += w.requests as u64;
                weighted_error += error * w.requests as f64;
            }
        }
        if weight == 0 {
            None
        } else {
            Some(1.0 - weighted_error / weight as f64)
        }
    }

    /// Per-stage wall-clock summed over all windows.
    pub fn total_timing(&self) -> StageTiming {
        let mut total = StageTiming::default();
        for w in &self.windows {
            total.accumulate(&w.timing);
        }
        total
    }

    /// Number of windows that did not roll out a fresh model (skipped by
    /// supervision, rejected by a gate, or past the training deadline) or
    /// that spent time under guardrail-forced LRU — either way the window
    /// did not serve purely on a healthy fresh model.
    pub fn degraded_windows(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| w.rollout.is_degraded() || w.guardrail_forced_requests > 0)
            .count()
    }

    /// Wall-clock spent serving without the learned policy — either no
    /// trained model existed (the bottom of the degradation ladder) or the
    /// guardrail forced the window onto LRU (DESIGN.md §13).
    pub fn fallback_time(&self) -> Duration {
        self.windows
            .iter()
            .filter(|w| !w.had_model || w.guardrail_forced_requests > 0)
            .map(|w| w.timing.serve)
            .sum()
    }

    /// Total guardrail trips across all windows.
    pub fn guardrail_trips(&self) -> u64 {
        self.windows.iter().map(|w| w.guardrail_trips).sum()
    }

    /// Total supervision retries across all windows.
    pub fn total_retries(&self) -> u32 {
        self.windows.iter().map(|w| w.retries).sum()
    }

    /// Number of windows whose accepted model was durably persisted.
    pub fn persisted_windows(&self) -> usize {
        self.windows.iter().filter(|w| w.persisted).count()
    }
}

pub(super) fn merge(into: &mut IntervalMetrics, from: &IntervalMetrics) {
    into.requests += from.requests;
    into.hits += from.hits;
    into.total_bytes += from.total_bytes;
    into.hit_bytes += from.hit_bytes;
}
